//! # proof-counters — simulated hardware-counter profiler
//!
//! A stand-in for NVIDIA Nsight Compute (and, by extension, any vendor
//! counter tool): given a compiled plan it reports per-kernel FLOP and DRAM
//! traffic **as the counters see them**, including:
//!
//! - the Tensor-Core FLOP-counting bug the paper reported to NVIDIA
//!   (§4.2): NCU multiplies the HMMA/IMMA instruction count by a fixed 512
//!   FLOP/instruction, which is only correct for Volta's `HMMA.884` — on
//!   Ampere each `HMMA.16816` performs 4096 FLOP, so reported Tensor-Core
//!   FLOP are ~8× too low. The raw instruction counters are also exposed so
//!   PRoof can apply its architecture-aware correction,
//! - kernel-replay profiling overhead: counters are multiplexed, so every
//!   kernel re-executes once per counter set plus a fixed replay setup cost
//!   — the hundreds-to-thousands of seconds in the paper's Table 4
//!   "Prof. time" column,
//! - small measurement noise on DRAM counters (seeded, reproducible).

pub mod ncu;

pub use ncu::{profile_with_counters, KernelMetrics, NcuReport, NCU_ASSUMED_FLOPS_PER_MMA};
