//! The Nsight-Compute-like counter profiler.

use proof_runtime::CompiledModel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The fixed FLOP-per-MMA-instruction NCU assumes — correct only for
/// Volta's `HMMA.884.F32.F32` (paper §4.2 and the NVIDIA forum thread it
/// cites).
pub const NCU_ASSUMED_FLOPS_PER_MMA: u64 = 512;

/// Counter sets that must be multiplexed (one kernel replay per set).
const COUNTER_SETS: u32 = 30;
/// Fixed per-kernel replay setup cost (API capture, cache flush), seconds.
const REPLAY_SETUP_S: f64 = 5.9;

/// What the counter tool reports for one kernel.
#[derive(Debug, Clone)]
pub struct KernelMetrics {
    pub kernel_name: String,
    /// Index of the backend layer this kernel belongs to (from the
    /// Nsight-Systems-like trace correlation).
    pub layer_index: usize,
    /// FLOP as the tool computes them — **buggy on Tensor-Core kernels**
    /// (instruction count × the fixed 512).
    pub reported_flops: u64,
    /// Raw HMMA/IMMA instruction counter (0 for non-TC kernels).
    pub mma_instrs: u64,
    pub tensor_core: bool,
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    pub latency_us: f64,
}

impl KernelMetrics {
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// A full counter-profiling run.
#[derive(Debug, Clone)]
pub struct NcuReport {
    pub kernels: Vec<KernelMetrics>,
    /// Extra wall-clock the profiling run cost (the Table 4 column).
    pub profiling_overhead_s: f64,
}

impl NcuReport {
    /// Total reported (buggy) FLOPs.
    pub fn total_reported_flops(&self) -> u64 {
        self.kernels.iter().map(|k| k.reported_flops).sum()
    }

    /// Total measured DRAM traffic.
    pub fn total_dram_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.dram_bytes()).sum()
    }

    /// Aggregate per backend layer: `(reported_flops, mma_instrs, bytes)`
    /// keyed by layer index.
    pub fn per_layer(&self) -> std::collections::HashMap<usize, (u64, u64, u64)> {
        let mut m: std::collections::HashMap<usize, (u64, u64, u64)> =
            std::collections::HashMap::new();
        for k in &self.kernels {
            let e = m.entry(k.layer_index).or_default();
            e.0 += k.reported_flops;
            e.1 += k.mma_instrs;
            e.2 += k.dram_bytes();
        }
        m
    }
}

/// Run the counter profiler over a compiled plan.
///
/// DRAM counters carry ±2 % seeded noise (cache/replay variance); FLOP
/// counters are exact instruction counts — but Tensor-Core FLOP are
/// *computed* from them with the fixed 512 multiplier, reproducing the NCU
/// bug.
pub fn profile_with_counters(model: &CompiledModel, seed: u64) -> NcuReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9C);
    let trace = model.kernel_trace();
    let mut kernels = Vec::with_capacity(trace.len());
    let mut replayed_time_s = 0.0;
    for rec in &trace {
        let cost = &rec.kernel.cost;
        let reported_flops = if cost.tensor_core {
            cost.mma_instrs * NCU_ASSUMED_FLOPS_PER_MMA
        } else {
            cost.hw_flops
        };
        let noise = |rng: &mut ChaCha8Rng, v: u64| -> u64 {
            let f = 1.0 + 0.02 * (rng.gen::<f64>() - 0.5) * 2.0;
            (v as f64 * f) as u64
        };
        kernels.push(KernelMetrics {
            kernel_name: rec.kernel.name.clone(),
            layer_index: rec.layer_index,
            reported_flops,
            mma_instrs: cost.mma_instrs,
            tensor_core: cost.tensor_core,
            dram_read_bytes: noise(&mut rng, cost.dram_read_bytes),
            dram_write_bytes: noise(&mut rng, cost.dram_write_bytes),
            latency_us: rec.latency_us,
        });
        replayed_time_s += rec.latency_us * 1e-6 * COUNTER_SETS as f64 + REPLAY_SETUP_S;
    }
    NcuReport {
        kernels,
        profiling_overhead_s: replayed_time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{compile, BackendFlavor, SessionConfig};

    fn compiled(batch: u64) -> CompiledModel {
        let g = ModelId::ResNet50.build(batch);
        compile(
            &g,
            BackendFlavor::TrtLike,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16),
        )
        .unwrap()
    }

    #[test]
    fn tensor_core_flops_are_underreported_by_the_bug() {
        let m = compiled(8);
        let (hw_flops, _) = m.hw_totals();
        let report = profile_with_counters(&m, 7);
        // On Ampere the bug divides TC flops by 4096/512 = 8
        let reported = report.total_reported_flops();
        assert!(
            reported < hw_flops / 4,
            "reported {reported} vs hw {hw_flops}"
        );
        // raw instruction counters allow exact reconstruction
        let reconstructed: u64 = report
            .kernels
            .iter()
            .map(|k| {
                if k.tensor_core {
                    k.mma_instrs * 4096
                } else {
                    k.reported_flops
                }
            })
            .sum();
        assert!(reconstructed as f64 > 0.95 * hw_flops as f64);
    }

    #[test]
    fn dram_counters_are_close_to_truth_with_noise() {
        let m = compiled(8);
        let (_, hw_bytes) = m.hw_totals();
        let report = profile_with_counters(&m, 7);
        let measured = report.total_dram_bytes() as f64;
        assert!((measured / hw_bytes as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn profiling_overhead_is_minutes_not_milliseconds() {
        let m = compiled(8);
        let report = profile_with_counters(&m, 7);
        // dozens of kernels × ~6 s replay setup
        assert!(report.profiling_overhead_s > 100.0);
        let exec_s = m.base_latency_us() * 1e-6;
        assert!(report.profiling_overhead_s > 100.0 * exec_s);
    }

    #[test]
    fn per_layer_aggregation_partitions_totals() {
        let m = compiled(2);
        let report = profile_with_counters(&m, 7);
        let per_layer = report.per_layer();
        let sum_flops: u64 = per_layer.values().map(|v| v.0).sum();
        assert_eq!(sum_flops, report.total_reported_flops());
        let sum_bytes: u64 = per_layer.values().map(|v| v.2).sum();
        assert_eq!(sum_bytes, report.total_dram_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let m = compiled(2);
        let a = profile_with_counters(&m, 42);
        let b = profile_with_counters(&m, 42);
        assert_eq!(a.total_dram_bytes(), b.total_dram_bytes());
        let c = profile_with_counters(&m, 43);
        assert_ne!(a.total_dram_bytes(), c.total_dram_bytes());
    }
}
