//! Property tests for the machine models: clock scaling linearity, power
//! monotonicity, and TPC-mask sanity across the whole platform set.

use proof_hw::{ClockConfig, Platform, PlatformId, PowerModel};
use proof_ir::DType;
use proptest::prelude::*;

fn any_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(PlatformId::ALL.to_vec()).prop_map(|id| id.spec())
}

proptest! {
    /// Peak FLOP/s is linear in the GPU clock for every platform and dtype.
    #[test]
    fn peak_scales_linearly_with_gpu_clock(p in any_platform(), f in 100u32..3000) {
        for dtype in [DType::F32, DType::F16, DType::I8] {
            let base = p.peak_flops(dtype, true);
            let scaled = p
                .with_clocks(ClockConfig::new(f, p.clocks.mem_mhz))
                .peak_flops(dtype, true);
            let expect = base * f as f64 / p.clocks.gpu_mhz as f64;
            prop_assert!((scaled - expect).abs() < 1e-3 * expect.max(1.0));
        }
    }

    /// Bandwidth is monotone in the memory clock and respects any bus cap.
    #[test]
    fn bandwidth_monotone_and_capped(p in any_platform(), f1 in 100u32..4000, f2 in 100u32..4000) {
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        let bw_lo = p.with_clocks(ClockConfig::new(p.clocks.gpu_mhz, lo)).theoretical_bw();
        let bw_hi = p.with_clocks(ClockConfig::new(p.clocks.gpu_mhz, hi)).theoretical_bw();
        prop_assert!(bw_lo <= bw_hi + 1e-9);
        if let Some(cap) = p.memory.bus_cap_gbs {
            prop_assert!(bw_hi <= cap * 1e9 + 1e-6);
        }
        prop_assert!(p.achievable_bw() <= p.theoretical_bw());
    }

    /// Power is monotone in clocks and utilization, and always positive.
    #[test]
    fn power_monotonicity(
        g1 in 306u32..=918, g2 in 306u32..=918,
        m1 in 665u32..=3199, m2 in 665u32..=3199,
        ug in 0.0f64..=1.0, um in 0.0f64..=1.0,
    ) {
        let power = PowerModel::orin_nx();
        let (glo, ghi) = (g1.min(g2), g1.max(g2));
        let (mlo, mhi) = (m1.min(m2), m1.max(m2));
        let p_lo = power.power_w(&ClockConfig::new(glo, mlo), ug, um);
        let p_hi = power.power_w(&ClockConfig::new(ghi, mhi), ug, um);
        prop_assert!(p_lo > 0.0);
        prop_assert!(p_lo <= p_hi + 1e-9);
        // more utilization never reduces power
        let busier = power.power_w(&ClockConfig::new(glo, mlo), 1.0, 1.0);
        prop_assert!(p_lo <= busier + 1e-9);
    }

    /// Any 8-bit TPC mask leaves between 1 and `total` units enabled.
    #[test]
    fn tpc_mask_bounds(mask in any::<u8>(), total in 1u32..=8) {
        let c = ClockConfig::new(918, 3199).with_tpc_mask(mask);
        let enabled = c.enabled_tpcs(total);
        prop_assert!(enabled >= 1);
        prop_assert!(enabled <= total);
    }
}
