//! # proof-hw — analytical machine models
//!
//! Stand-ins for the seven physical evaluation platforms of the paper's
//! Table 2. Each [`Platform`] describes:
//!
//! - compute: execution-unit count, matrix-engine (Tensor-Core / NPU MAC
//!   array) and vector (CUDA-core / SIMD) FLOP-per-cycle rates per dtype,
//! - memory: bus bytes-per-cycle, clock, practical caps (e.g. the Raspberry
//!   Pi 4's ~5.5 GB/s AXI limit the paper calls out), streaming efficiency,
//! - overheads: kernel-launch latency and minimum kernel duration,
//! - clocking: configurable GPU/memory clocks (for the Jetson Orin NX
//!   hardware-tuning case study, Tables 6–7) including the undocumented
//!   `TPC_PG_MASK` unit-gating knob,
//! - power: a calibrated utilization-dependent power model
//!   ([`power::PowerModel`]) for the edge-power experiments.
//!
//! The runtime simulator (`proof-runtime`) consumes these descriptors to
//! derive kernel latencies; PRoof itself (`proof-core`) consumes them for
//! roofline ceilings.

pub mod clock;
pub mod jetson;
pub mod platform;
pub mod power;

pub use clock::ClockConfig;
pub use jetson::{JetsonPowerProfile, OrinNx};
pub use platform::{ComputeSpec, GpuArch, HwFamily, MemorySpec, Platform, PlatformId, Scenario};
pub use power::PowerModel;
