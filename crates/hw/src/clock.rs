//! Clock configuration (the `nvpmodel`-style knobs of the Jetson case study).

use serde::{Deserialize, Serialize};

/// Clock settings for one platform.
///
/// `cpu_mhz` models the two Jetson CPU clusters (`None` = cluster off), and
/// `tpc_pg_mask` models the undocumented GPU TPC power-gating mask the paper
/// found in the stock "15W" profile (Table 7): each **set** bit gates one TPC
/// off, scanning from the MSB of an 8-bit mask; `240 = 0b1111_0000` leaves
/// all 4 TPCs of an Orin NX enabled, `252 = 0b1111_1100` leaves only 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockConfig {
    pub gpu_mhz: u32,
    pub mem_mhz: u32,
    /// CPU cluster clocks; `None` = powered off.
    pub cpu_mhz: [Option<u32>; 2],
    /// TPC power-gating mask (0 = platform default, everything on).
    pub tpc_pg_mask: u8,
}

impl ClockConfig {
    /// GPU + memory clocks, CPU clusters at a nominal 729 MHz / off-second.
    pub fn new(gpu_mhz: u32, mem_mhz: u32) -> Self {
        ClockConfig {
            gpu_mhz,
            mem_mhz,
            cpu_mhz: [Some(729), None],
            tpc_pg_mask: 0,
        }
    }

    pub fn with_cpus(mut self, c0: Option<u32>, c1: Option<u32>) -> Self {
        self.cpu_mhz = [c0, c1];
        self
    }

    pub fn with_tpc_mask(mut self, mask: u8) -> Self {
        self.tpc_pg_mask = mask;
        self
    }

    /// Number of TPCs left enabled by the mask, out of `total` (mask 0 means
    /// "no gating configured": all enabled).
    pub fn enabled_tpcs(&self, total: u32) -> u32 {
        if self.tpc_pg_mask == 0 {
            return total;
        }
        let gated = self.tpc_pg_mask.count_ones();
        // The mask is 8 bits wide regardless of the physical TPC count; bits
        // above the physical count gate nothing.
        let baseline = 8u32.saturating_sub(total);
        // Clamp to 1: a fully-gated GPU cannot execute, and the model treats
        // the mask as a throttle, not an off switch.
        total.saturating_sub(gated.saturating_sub(baseline)).max(1)
    }

    /// Number of active CPU clusters.
    pub fn active_cpu_clusters(&self) -> u32 {
        self.cpu_mhz.iter().filter(|c| c.is_some()).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_semantics_match_paper_values() {
        // Orin NX: 4 TPCs. Mask 240 (4 bits set, all in the slack above the
        // physical count) leaves all 4 on; mask 252 (6 bits set) gates 2.
        let full = ClockConfig::new(918, 3199).with_tpc_mask(240);
        assert_eq!(full.enabled_tpcs(4), 4);
        let gated = ClockConfig::new(612, 3199).with_tpc_mask(252);
        assert_eq!(gated.enabled_tpcs(4), 2);
        // mask 0 = unconfigured = everything on
        assert_eq!(ClockConfig::new(918, 3199).enabled_tpcs(4), 4);
        // pathological all-ones mask cannot underflow
        assert_eq!(
            ClockConfig::new(918, 3199)
                .with_tpc_mask(255)
                .enabled_tpcs(4),
            1
        );
    }

    #[test]
    fn cpu_cluster_accounting() {
        let c = ClockConfig::new(918, 3199).with_cpus(Some(729), Some(729));
        assert_eq!(c.active_cpu_clusters(), 2);
        let c = ClockConfig::new(918, 3199).with_cpus(Some(729), None);
        assert_eq!(c.active_cpu_clusters(), 1);
    }
}
