//! Platform descriptors for the seven evaluation platforms (paper Table 2).

use crate::clock::ClockConfig;
use proof_ir::DType;
use serde::{Deserialize, Serialize};

/// Deployment scenario, as categorized by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    DataCenter,
    Desktop,
    Edge,
    Mobile,
}

/// Hardware family; drives which backend flavours apply and which kernel
/// efficiency table the runtime simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwFamily {
    NvidiaGpu,
    NvidiaJetson,
    X86Cpu,
    ArmCpu,
    IntelNpu,
}

/// GPU microarchitecture — used by the simulated Nsight Compute and PRoof's
/// Tensor-Core FLOP correction (paper §4.2: NCU assumes 512 FLOP per HMMA,
/// which is only right for Volta's `HMMA.884.F32.F32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuArch {
    Volta,
    Turing,
    Ampere,
    Ada,
    /// Not an NVIDIA GPU (no HMMA semantics).
    NonNvidia,
}

/// Compute throughput per execution unit (SM / CPU core / NPU tile), in
/// FLOP (or integer OP) per cycle. A rate of 0 means the path is absent and
/// falls back to the vector path (or fp32 for missing vector dtypes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeSpec {
    /// Execution unit count (SMs, cores, NPU neural-compute engines).
    pub units: u32,
    /// Matrix-engine (Tensor Core / AMX / NPU MAC array) FLOP/cycle/unit.
    pub matrix_fp16: f64,
    pub matrix_int8: f64,
    /// Vector/SIMD FLOP/cycle/unit.
    pub vector_fp32: f64,
    pub vector_fp16: f64,
    pub vector_int8: f64,
}

impl ComputeSpec {
    /// FLOP/cycle/unit for `dtype`, on the matrix engine when `matrix` is
    /// set (falling back to the vector path when no matrix engine exists).
    pub fn flops_per_cycle(&self, dtype: DType, matrix: bool) -> f64 {
        let (m, v) = match dtype {
            DType::F16 | DType::BF16 => (self.matrix_fp16, self.vector_fp16),
            DType::I8 | DType::U8 => (self.matrix_int8, self.vector_int8),
            _ => (0.0, self.vector_fp32),
        };
        let v = if v > 0.0 { v } else { self.vector_fp32 };
        if matrix && m > 0.0 {
            m
        } else {
            v
        }
    }

    /// Whether a matrix engine exists for `dtype`.
    pub fn has_matrix_engine(&self, dtype: DType) -> bool {
        match dtype {
            DType::F16 | DType::BF16 => self.matrix_fp16 > 0.0,
            DType::I8 | DType::U8 => self.matrix_int8 > 0.0,
            _ => false,
        }
    }
}

/// DRAM subsystem description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Bus width in bytes transferred per memory-clock cycle.
    pub bytes_per_cycle: f64,
    /// Hard cap below the pin bandwidth, if an internal bus limits it
    /// (Raspberry Pi 4B's BCM2711 AXI: ~5.5 GB/s, per the paper).
    pub bus_cap_gbs: Option<f64>,
    /// Fraction of theoretical bandwidth a well-tuned streaming kernel
    /// reaches (the "achieved" roofline of Table 6).
    pub streaming_efficiency: f64,
}

/// A full platform descriptor with its current clock configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    pub id: PlatformId,
    pub name: String,
    pub scenario: Scenario,
    pub family: HwFamily,
    pub arch: GpuArch,
    pub compute: ComputeSpec,
    pub memory: MemorySpec,
    /// Current clocks (defaults to the platform maximums).
    pub clocks: ClockConfig,
    /// Per-kernel launch/dispatch overhead, microseconds.
    pub kernel_launch_us: f64,
    /// Smallest achievable kernel duration, microseconds.
    pub min_kernel_us: f64,
    /// On-chip SRAM per unit (KiB) — scratch for fusion legality heuristics.
    pub sram_kb_per_unit: u32,
    /// TPC (unit-pair) count for power-gating masks; 0 = not maskable.
    pub tpc_count: u32,
}

impl Platform {
    /// Fraction of units enabled under the current `TPC_PG_MASK`.
    pub fn enabled_unit_fraction(&self) -> f64 {
        if self.tpc_count == 0 {
            return 1.0;
        }
        let enabled = self.clocks.enabled_tpcs(self.tpc_count);
        enabled as f64 / self.tpc_count as f64
    }

    /// Theoretical peak FLOP/s for `dtype` at current clocks.
    /// `matrix` selects the Tensor-Core/MAC-array path where available.
    pub fn peak_flops(&self, dtype: DType, matrix: bool) -> f64 {
        self.compute.flops_per_cycle(dtype, matrix)
            * self.compute.units as f64
            * self.enabled_unit_fraction()
            * self.clocks.gpu_mhz as f64
            * 1e6
    }

    /// Theoretical DRAM bandwidth (bytes/s) at current clocks.
    pub fn theoretical_bw(&self) -> f64 {
        let pin = self.memory.bytes_per_cycle * self.clocks.mem_mhz as f64 * 1e6;
        match self.memory.bus_cap_gbs {
            Some(cap) => pin.min(cap * 1e9),
            None => pin,
        }
    }

    /// Achievable streaming bandwidth (bytes/s) — the memory roofline.
    pub fn achievable_bw(&self) -> f64 {
        self.theoretical_bw() * self.memory.streaming_efficiency
    }

    /// Return a copy reclocked to `clocks`.
    pub fn with_clocks(&self, clocks: ClockConfig) -> Platform {
        let mut p = self.clone();
        p.clocks = clocks;
        p
    }

    /// The dtype the paper's evaluation uses on this platform
    /// ("a batch size and data type that is reasonable and fully utilizes
    /// the hardware").
    pub fn preferred_dtype(&self) -> DType {
        match self.family {
            HwFamily::NvidiaGpu | HwFamily::NvidiaJetson | HwFamily::IntelNpu => DType::F16,
            HwFamily::X86Cpu | HwFamily::ArmCpu => DType::F32,
        }
    }

    /// The batch size the paper's evaluation uses on this platform.
    pub fn preferred_batch(&self) -> u64 {
        match self.scenario {
            Scenario::DataCenter | Scenario::Desktop => 128,
            Scenario::Edge => 16,
            Scenario::Mobile => 1,
        }
    }
}

/// The seven platforms of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    A100,
    Rtx4090,
    Xeon6330,
    XavierNx,
    OrinNx,
    RaspberryPi4,
    Npu3720,
}

impl PlatformId {
    pub const ALL: [PlatformId; 7] = [
        PlatformId::A100,
        PlatformId::Rtx4090,
        PlatformId::Xeon6330,
        PlatformId::XavierNx,
        PlatformId::OrinNx,
        PlatformId::RaspberryPi4,
        PlatformId::Npu3720,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PlatformId::A100 => "NVIDIA A100 PCIE-40GB",
            PlatformId::Rtx4090 => "NVIDIA RTX 4090",
            PlatformId::Xeon6330 => "Intel Xeon Gold 6330",
            PlatformId::XavierNx => "NVIDIA Jetson Xavier NX",
            PlatformId::OrinNx => "NVIDIA Jetson Orin NX 16GB",
            PlatformId::RaspberryPi4 => "Raspberry Pi 4B",
            PlatformId::Npu3720 => "NPU 3720 (Intel Core Ultra 185H)",
        }
    }

    /// Parse a CLI-friendly identifier (`"a100"`, `"orin-nx"`, ...).
    pub fn parse(s: &str) -> Option<PlatformId> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "a100" => Some(PlatformId::A100),
            "rtx4090" | "4090" => Some(PlatformId::Rtx4090),
            "xeon6330" | "xeon" => Some(PlatformId::Xeon6330),
            "xaviernx" | "xavier" => Some(PlatformId::XavierNx),
            "orinnx" | "orin" => Some(PlatformId::OrinNx),
            "raspberrypi4" | "rpi4" | "rpi" => Some(PlatformId::RaspberryPi4),
            "npu3720" | "npu" => Some(PlatformId::Npu3720),
            _ => None,
        }
    }

    /// Build the platform descriptor at stock maximum clocks.
    pub fn spec(self) -> Platform {
        match self {
            // 108 SMs @ 1410 MHz; 312 TFLOP/s fp16 TC, 624 TOPS int8,
            // 19.5 TFLOP/s fp32 CUDA cores; 1555 GB/s HBM2 @ 1215 MHz.
            PlatformId::A100 => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::DataCenter,
                family: HwFamily::NvidiaGpu,
                arch: GpuArch::Ampere,
                compute: ComputeSpec {
                    units: 108,
                    matrix_fp16: 2048.0,
                    matrix_int8: 4096.0,
                    vector_fp32: 128.0,
                    vector_fp16: 256.0,
                    vector_int8: 256.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 1280.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.88,
                },
                clocks: ClockConfig::new(1410, 1215),
                kernel_launch_us: 4.0,
                min_kernel_us: 2.0,
                sram_kb_per_unit: 192,
                tpc_count: 0,
            },
            // 128 SMs @ 2520 MHz; ~330 TFLOP/s fp16 TC, 82.6 TFLOP/s fp32;
            // 1008 GB/s GDDR6X.
            PlatformId::Rtx4090 => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::Desktop,
                family: HwFamily::NvidiaGpu,
                arch: GpuArch::Ada,
                compute: ComputeSpec {
                    units: 128,
                    matrix_fp16: 1024.0,
                    matrix_int8: 2048.0,
                    vector_fp32: 256.0,
                    vector_fp16: 256.0,
                    vector_int8: 256.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 96.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.88,
                },
                clocks: ClockConfig::new(2520, 10500),
                kernel_launch_us: 3.5,
                min_kernel_us: 2.0,
                sram_kb_per_unit: 128,
                tpc_count: 0,
            },
            // 28 cores @ ~2.0 GHz all-core AVX-512 (2×FMA): 3.58 TFLOP/s
            // fp32; VNNI int8; 8-channel DDR4-2933: 188 GB/s.
            PlatformId::Xeon6330 => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::DataCenter,
                family: HwFamily::X86Cpu,
                arch: GpuArch::NonNvidia,
                compute: ComputeSpec {
                    units: 28,
                    matrix_fp16: 0.0,
                    matrix_int8: 0.0,
                    vector_fp32: 64.0,
                    vector_fp16: 0.0,
                    vector_int8: 256.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 64.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.80,
                },
                clocks: ClockConfig::new(2000, 2933),
                kernel_launch_us: 1.5,
                min_kernel_us: 1.0,
                sram_kb_per_unit: 1280,
                tpc_count: 0,
            },
            // Volta iGPU: 6 SMs (48 TCs) @ 1100 MHz: ~6.8 TFLOP/s fp16;
            // LPDDR4x 51.2 GB/s.
            PlatformId::XavierNx => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::Edge,
                family: HwFamily::NvidiaJetson,
                arch: GpuArch::Volta,
                compute: ComputeSpec {
                    units: 6,
                    matrix_fp16: 1024.0,
                    matrix_int8: 2048.0,
                    vector_fp32: 128.0,
                    vector_fp16: 256.0,
                    vector_int8: 256.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 32.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.85,
                },
                clocks: ClockConfig::new(1100, 1600),
                kernel_launch_us: 10.0,
                min_kernel_us: 5.0,
                sram_kb_per_unit: 128,
                tpc_count: 0,
            },
            // Ampere iGPU: 8 SMs @ 918 MHz: 15.0 TFLOP/s fp16 theoretical
            // (Table 6 achieves 13.6); LPDDR5 @ 3199 MHz: 102.4 GB/s
            // theoretical (Table 6 achieves 87.9). 4 TPCs, maskable.
            PlatformId::OrinNx => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::Edge,
                family: HwFamily::NvidiaJetson,
                arch: GpuArch::Ampere,
                compute: ComputeSpec {
                    units: 8,
                    matrix_fp16: 2048.0,
                    matrix_int8: 4096.0,
                    vector_fp32: 128.0,
                    vector_fp16: 256.0,
                    vector_int8: 256.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 32.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.86,
                },
                clocks: ClockConfig::new(918, 3199),
                kernel_launch_us: 8.0,
                min_kernel_us: 4.0,
                sram_kb_per_unit: 192,
                tpc_count: 4,
            },
            // 4× Cortex-A72 @ 1.5 GHz NEON: ~48 GFLOP/s fp32; BCM2711 AXI
            // caps DRAM at ~5.5 GB/s (paper §4.3).
            PlatformId::RaspberryPi4 => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::Edge,
                family: HwFamily::ArmCpu,
                arch: GpuArch::NonNvidia,
                compute: ComputeSpec {
                    units: 4,
                    matrix_fp16: 0.0,
                    matrix_int8: 0.0,
                    vector_fp32: 8.0,
                    vector_fp16: 0.0,
                    vector_int8: 32.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 8.0,
                    bus_cap_gbs: Some(5.5),
                    streaming_efficiency: 0.95,
                },
                clocks: ClockConfig::new(1500, 1600),
                kernel_launch_us: 3.0,
                min_kernel_us: 2.0,
                sram_kb_per_unit: 512,
                tpc_count: 0,
            },
            // Intel AI Boost (NPU 3720): 2048 fp16 MACs/cycle @ 1.4 GHz =
            // 5.7 TFLOP/s fp16 / 11.5 TOPS int8 (paper §4.3); shared
            // LPDDR5 at ~64 GB/s effective for the NPU.
            PlatformId::Npu3720 => Platform {
                id: self,
                name: self.name().into(),
                scenario: Scenario::Mobile,
                family: HwFamily::IntelNpu,
                arch: GpuArch::NonNvidia,
                compute: ComputeSpec {
                    units: 2,
                    matrix_fp16: 2048.0,
                    matrix_int8: 4096.0,
                    vector_fp32: 64.0,
                    vector_fp16: 128.0,
                    vector_int8: 128.0,
                },
                memory: MemorySpec {
                    bytes_per_cycle: 64.0,
                    bus_cap_gbs: None,
                    streaming_efficiency: 0.80,
                },
                clocks: ClockConfig::new(1400, 1000),
                kernel_launch_us: 20.0,
                min_kernel_us: 10.0,
                sram_kb_per_unit: 2048,
                tpc_count: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_peaks_match_datasheet() {
        let p = PlatformId::A100.spec();
        let fp16 = p.peak_flops(DType::F16, true);
        assert!((fp16 / 1e12 - 312.0).abs() < 5.0, "fp16 TC peak {fp16}");
        let int8 = p.peak_flops(DType::I8, true);
        assert!((int8 / 1e12 - 624.0).abs() < 10.0);
        let fp32 = p.peak_flops(DType::F32, false);
        assert!((fp32 / 1e12 - 19.5).abs() < 0.5);
        let bw = p.theoretical_bw();
        assert!((bw / 1e9 - 1555.0).abs() < 5.0, "bw {bw}");
    }

    #[test]
    fn orin_nx_matches_table6_theoreticals() {
        let p = PlatformId::OrinNx.spec();
        // 918 MHz × 8 SMs × 2048 = 15.04 TFLOP/s
        assert!((p.peak_flops(DType::F16, true) / 1e12 - 15.04).abs() < 0.1);
        // 3199 MHz × 32 B = 102.4 GB/s
        assert!((p.theoretical_bw() / 1e9 - 102.4).abs() < 0.5);
        // reclocking scales linearly
        let lo = p.with_clocks(ClockConfig::new(510, 2133));
        assert!(
            (lo.peak_flops(DType::F16, true) / p.peak_flops(DType::F16, true) - 510.0 / 918.0)
                .abs()
                < 1e-9
        );
        assert!((lo.theoretical_bw() / p.theoretical_bw() - 2133.0 / 3199.0).abs() < 1e-9);
    }

    #[test]
    fn npu_matches_paper_quoted_peaks() {
        let p = PlatformId::Npu3720.spec();
        // paper: 5.7 TFLOP/s fp16 or 11.5 TOPS int8 (2048 fp16 MACs @ 1.4 GHz)
        assert!((p.peak_flops(DType::F16, true) / 1e12 - 5.73).abs() < 0.1);
        assert!((p.peak_flops(DType::I8, true) / 1e12 - 11.47).abs() < 0.2);
    }

    #[test]
    fn rpi4_bandwidth_is_axi_capped() {
        let p = PlatformId::RaspberryPi4.spec();
        assert!((p.theoretical_bw() / 1e9 - 5.5).abs() < 1e-9);
        assert!(p.theoretical_bw() < p.memory.bytes_per_cycle * 1600e6);
    }

    #[test]
    fn cpu_has_no_matrix_engine_and_falls_back() {
        let p = PlatformId::Xeon6330.spec();
        assert!(!p.compute.has_matrix_engine(DType::F16));
        // fp16 matrix request falls back to fp32 vector rate
        assert_eq!(
            p.peak_flops(DType::F16, true),
            p.peak_flops(DType::F32, false)
        );
        // int8 VNNI is 4× fp32
        assert_eq!(
            p.peak_flops(DType::I8, true),
            4.0 * p.peak_flops(DType::F32, false)
        );
    }

    #[test]
    fn tpc_mask_scales_units() {
        let p = PlatformId::OrinNx.spec();
        let full = p.peak_flops(DType::F16, true);
        let mut c = p.clocks;
        c.tpc_pg_mask = 252; // 2 of 4 TPCs enabled
        let half = p.with_clocks(c).peak_flops(DType::F16, true);
        assert!((half / full - 0.5).abs() < 1e-9, "{half} vs {full}");
    }

    #[test]
    fn all_platforms_build_and_have_positive_specs() {
        for id in PlatformId::ALL {
            let p = id.spec();
            assert!(p.peak_flops(p.preferred_dtype(), true) > 0.0, "{:?}", id);
            assert!(p.achievable_bw() > 0.0);
            assert!(p.achievable_bw() <= p.theoretical_bw());
            assert!(p.kernel_launch_us > 0.0);
            assert_eq!(PlatformId::parse(&format!("{:?}", id)), Some(id));
        }
    }

    #[test]
    fn preferred_config_varies_by_scenario() {
        assert_eq!(PlatformId::A100.spec().preferred_batch(), 128);
        assert_eq!(PlatformId::Npu3720.spec().preferred_batch(), 1);
        assert_eq!(PlatformId::Xeon6330.spec().preferred_dtype(), DType::F32);
        assert_eq!(PlatformId::A100.spec().preferred_dtype(), DType::F16);
    }
}
