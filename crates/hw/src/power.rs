//! Utilization-dependent SoC power model (Jetson Orin NX).
//!
//! Calibrated against the paper's Table 6 (roofline-peak test at five clock
//! pairs) using the standard `P ∝ f·V² ≈ f²` dynamic-power approximation:
//!
//! | clocks (GPU/EMC MHz) | paper (W) | this model, full util (W) |
//! |---|---|---|
//! | 918 / 3199 | 23.6 | ≈23.7 |
//! | 918 / 2133 | 21.3 | ≈21.2 |
//! | 510 / 3199 | 15.7 | ≈15.8 |
//! | 510 / 2133 | 13.6 | ≈13.3 |
//! | 510 /  665 | 11.5 | ≈11.4 |
//!
//! Workload power (Table 7) additionally depends on the GPU/memory busy
//! fractions, which the runtime simulator reports per profiled run.

use crate::clock::ClockConfig;
use serde::{Deserialize, Serialize};

/// Per-platform power coefficients. Only edge platforms (with a power budget
/// to tune against) carry one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Always-on SoC power (W): rails, IO, idle DRAM refresh.
    pub soc_idle_w: f64,
    /// Per active CPU cluster at 729 MHz (W); scales linearly with clock.
    pub cpu_cluster_w: f64,
    /// GPU dynamic coefficient: `P_gpu_max = k × f_ghz²` (W).
    pub gpu_k: f64,
    /// Memory-controller dynamic coefficient: `P_mem_max = k × f_ghz²` (W).
    pub mem_k: f64,
    /// Fraction of GPU dynamic power burned even when idle but clocked.
    pub gpu_idle_frac: f64,
    /// Fraction of memory dynamic power burned even when idle but clocked.
    pub mem_idle_frac: f64,
    /// Physical TPC count for gating-aware scaling (0 = not gateable).
    pub tpc_count: u32,
}

impl PowerModel {
    /// The Jetson Orin NX model calibrated above.
    pub fn orin_nx() -> Self {
        PowerModel {
            soc_idle_w: 6.7,
            cpu_cluster_w: 1.0,
            gpu_k: 13.56,
            mem_k: 0.45,
            gpu_idle_frac: 0.18,
            mem_idle_frac: 0.10,
            tpc_count: 4,
        }
    }

    /// Maximum (fully-utilized) GPU power at these clocks, accounting for
    /// gated TPCs (gated units burn no dynamic power).
    pub fn gpu_max_w(&self, clocks: &ClockConfig) -> f64 {
        let f = clocks.gpu_mhz as f64 / 1000.0;
        let frac = if self.tpc_count == 0 {
            1.0
        } else {
            clocks.enabled_tpcs(self.tpc_count) as f64 / self.tpc_count as f64
        };
        self.gpu_k * f * f * frac
    }

    /// Maximum memory-subsystem power at these clocks.
    pub fn mem_max_w(&self, clocks: &ClockConfig) -> f64 {
        let f = clocks.mem_mhz as f64 / 1000.0;
        self.mem_k * f * f
    }

    /// Total SoC power for a workload with the given busy fractions
    /// (`util_gpu`, `util_mem` ∈ [0, 1], time-averaged over the run).
    pub fn power_w(&self, clocks: &ClockConfig, util_gpu: f64, util_mem: f64) -> f64 {
        let ug = util_gpu.clamp(0.0, 1.0);
        let um = util_mem.clamp(0.0, 1.0);
        let cpu: f64 = clocks
            .cpu_mhz
            .iter()
            .flatten()
            .map(|&f| self.cpu_cluster_w * f as f64 / 729.0)
            .sum();
        self.soc_idle_w
            + cpu
            + self.gpu_max_w(clocks) * (self.gpu_idle_frac + (1.0 - self.gpu_idle_frac) * ug)
            + self.mem_max_w(clocks) * (self.mem_idle_frac + (1.0 - self.mem_idle_frac) * um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clocks(gpu: u32, mem: u32) -> ClockConfig {
        ClockConfig::new(gpu, mem) // one CPU cluster at 729 MHz
    }

    #[test]
    fn table6_calibration_within_half_watt() {
        let m = PowerModel::orin_nx();
        let rows = [
            (918, 3199, 23.6),
            (918, 2133, 21.3),
            (510, 3199, 15.7),
            (510, 2133, 13.6),
            (510, 665, 11.5),
        ];
        for (g, e, paper) in rows {
            let p = m.power_w(&clocks(g, e), 1.0, 1.0);
            assert!(
                (p - paper).abs() < 0.5,
                "({g},{e}): model {p:.1} vs paper {paper}"
            );
        }
    }

    #[test]
    fn power_is_monotone_in_clocks_and_utilization() {
        let m = PowerModel::orin_nx();
        let lo = m.power_w(&clocks(510, 2133), 0.5, 0.5);
        assert!(m.power_w(&clocks(918, 2133), 0.5, 0.5) > lo);
        assert!(m.power_w(&clocks(510, 3199), 0.5, 0.5) > lo);
        assert!(m.power_w(&clocks(510, 2133), 0.9, 0.5) > lo);
        assert!(m.power_w(&clocks(510, 2133), 0.5, 0.9) > lo);
    }

    #[test]
    fn gating_tpcs_saves_gpu_power() {
        let m = PowerModel::orin_nx();
        let full = m.gpu_max_w(&clocks(612, 3199).with_tpc_mask(240));
        let half = m.gpu_max_w(&clocks(612, 3199).with_tpc_mask(252));
        assert!((half / full - 0.5).abs() < 1e-9);
    }

    #[test]
    fn second_cpu_cluster_costs_about_a_watt() {
        let m = PowerModel::orin_nx();
        let one = m.power_w(&clocks(918, 3199), 1.0, 1.0);
        let two = m.power_w(
            &ClockConfig::new(918, 3199).with_cpus(Some(729), Some(729)),
            1.0,
            1.0,
        );
        assert!((two - one - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::orin_nx();
        assert_eq!(
            m.power_w(&clocks(918, 3199), 2.0, -1.0),
            m.power_w(&clocks(918, 3199), 1.0, 0.0)
        );
    }
}
