//! Jetson Orin NX clock/power management (`nvpmodel` stand-in).
//!
//! Exposes the clock steps and the stock power profiles of the paper's
//! Table 7, so the hardware-tuning case study (§4.6) can sweep and search
//! exactly the same configuration space.

use crate::clock::ClockConfig;
use crate::platform::{Platform, PlatformId};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// Stock and custom Orin NX power profiles (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JetsonPowerProfile {
    /// `MAXN`: both CPU clusters at 729, GPU 918, EMC 3199, mask 240.
    MaxN,
    /// Stock `"15W"`: one cluster, GPU 612, EMC 3199, mask 252 — the
    /// undocumented TPC gating the paper found to be inefficient.
    Stock15W,
    /// Stock `"25W"`: both clusters, GPU 408, EMC 3199, mask 240.
    Stock25W,
    /// Any explicit clock configuration.
    Custom(ClockConfig),
}

impl JetsonPowerProfile {
    pub fn clocks(self) -> ClockConfig {
        match self {
            JetsonPowerProfile::MaxN => ClockConfig::new(918, 3199)
                .with_cpus(Some(729), Some(729))
                .with_tpc_mask(240),
            JetsonPowerProfile::Stock15W => ClockConfig::new(612, 3199)
                .with_cpus(Some(729), None)
                .with_tpc_mask(252),
            JetsonPowerProfile::Stock25W => ClockConfig::new(408, 3199)
                .with_cpus(Some(729), Some(729))
                .with_tpc_mask(240),
            JetsonPowerProfile::Custom(c) => c,
        }
    }

    pub fn label(self) -> String {
        match self {
            JetsonPowerProfile::MaxN => "stock \"MAXN\"".into(),
            JetsonPowerProfile::Stock15W => "stock \"15W\"".into(),
            JetsonPowerProfile::Stock25W => "stock \"25W\"".into(),
            JetsonPowerProfile::Custom(c) => {
                format!("custom GPU {} / EMC {}", c.gpu_mhz, c.mem_mhz)
            }
        }
    }
}

/// The Orin NX with its tunable clocks and power model.
#[derive(Debug, Clone)]
pub struct OrinNx {
    pub power: PowerModel,
}

impl OrinNx {
    /// Selectable GPU clock steps (MHz).
    pub const GPU_CLOCKS_MHZ: [u32; 7] = [306, 408, 510, 612, 714, 816, 918];
    /// Selectable memory (EMC) clock steps (MHz). The paper skips 204 MHz
    /// ("not useful"); it is listed for completeness.
    pub const MEM_CLOCKS_MHZ: [u32; 4] = [204, 665, 2133, 3199];

    pub fn new() -> Self {
        OrinNx {
            power: PowerModel::orin_nx(),
        }
    }

    /// The platform descriptor under a given profile.
    pub fn platform(&self, profile: JetsonPowerProfile) -> Platform {
        PlatformId::OrinNx.spec().with_clocks(profile.clocks())
    }

    /// Snap an arbitrary GPU MHz request to the nearest selectable step at
    /// or below it (as `nvpmodel` clock capping does).
    pub fn floor_gpu_clock(&self, mhz: u32) -> u32 {
        Self::GPU_CLOCKS_MHZ
            .iter()
            .copied()
            .filter(|&c| c <= mhz)
            .max()
            .unwrap_or(Self::GPU_CLOCKS_MHZ[0])
    }

    /// Highest GPU clock whose predicted workload power stays within
    /// `budget_w`, by binary search over the clock steps (the paper's §4.6
    /// procedure: pick a memory clock, then "a simple binary search for the
    /// GPU clock just below the power budget").
    ///
    /// `measure` runs the workload at a candidate clock config and returns
    /// `(util_gpu, util_mem)` so power can be evaluated.
    pub fn search_gpu_clock_under_budget(
        &self,
        mem_mhz: u32,
        budget_w: f64,
        mut measure: impl FnMut(ClockConfig) -> (f64, f64),
    ) -> Option<u32> {
        let steps = Self::GPU_CLOCKS_MHZ;
        let (mut lo, mut hi) = (0usize, steps.len()); // [lo, hi): feasible prefix search
        let mut best = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let clocks = ClockConfig::new(steps[mid], mem_mhz);
            let (ug, um) = measure(clocks);
            if self.power.power_w(&clocks, ug, um) <= budget_w {
                best = Some(steps[mid]);
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        best
    }
}

impl Default for OrinNx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_profiles_match_table7() {
        let maxn = JetsonPowerProfile::MaxN.clocks();
        assert_eq!((maxn.gpu_mhz, maxn.mem_mhz), (918, 3199));
        assert_eq!(maxn.active_cpu_clusters(), 2);
        let s15 = JetsonPowerProfile::Stock15W.clocks();
        assert_eq!(
            (s15.gpu_mhz, s15.mem_mhz, s15.tpc_pg_mask),
            (612, 3199, 252)
        );
        assert_eq!(s15.enabled_tpcs(4), 2);
        let s25 = JetsonPowerProfile::Stock25W.clocks();
        assert_eq!(s25.gpu_mhz, 408);
    }

    #[test]
    fn floor_gpu_clock_snaps_down() {
        let o = OrinNx::new();
        assert_eq!(o.floor_gpu_clock(918), 918);
        assert_eq!(o.floor_gpu_clock(700), 612);
        assert_eq!(o.floor_gpu_clock(100), 306);
    }

    #[test]
    fn budget_search_finds_612_at_15w_2133() {
        // With a near-fully-utilized workload (the paper's EffNetV2-T is
        // compute-heavy), 612 MHz should be the highest step under 15 W at
        // EMC 2133 — the paper's optimum (Table 7 row 10: 14.7 W).
        let o = OrinNx::new();
        let got = o.search_gpu_clock_under_budget(2133, 15.0, |_| (0.92, 0.75));
        assert_eq!(got, Some(612));
    }

    #[test]
    fn budget_search_handles_infeasible_budget() {
        let o = OrinNx::new();
        assert_eq!(
            o.search_gpu_clock_under_budget(3199, 1.0, |_| (1.0, 1.0)),
            None
        );
    }

    #[test]
    fn platform_under_profile_has_reduced_peak() {
        let o = OrinNx::new();
        let maxn = o.platform(JetsonPowerProfile::MaxN);
        let s15 = o.platform(JetsonPowerProfile::Stock15W);
        // 612/918 clock ratio × 2/4 TPCs
        let ratio = s15.peak_flops(proof_ir::DType::F16, true)
            / maxn.peak_flops(proof_ir::DType::F16, true);
        assert!((ratio - (612.0 / 918.0) * 0.5).abs() < 1e-9);
    }
}
