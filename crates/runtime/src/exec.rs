//! Kernel latency simulation: a roofline-governed model with kernel-class
//! efficiency factors and wave-quantization (occupancy) effects.
//!
//! `latency = max(flops / (peak·η_c·occ), bytes / (bw·η_m·occ), t_min) + t_launch`
//!
//! Efficiencies are per kernel class and hardware family, calibrated so the
//! paper's qualitative results hold: dense Tensor-Core convolutions reach
//! 70–85 % of peak, depthwise convolutions crawl on the vector units,
//! transposes reach well under half of streaming bandwidth.

use crate::lower::{Kernel, KernelClass};
use proof_hw::{HwFamily, Platform};
use proof_ir::DType;

/// Time breakdown of one kernel (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    pub latency_us: f64,
    pub compute_us: f64,
    pub memory_us: f64,
}

/// Busy fractions over a whole run (drives the Jetson power model).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilization {
    pub gpu: f64,
    pub mem: f64,
}

/// Peak fraction the class reaches on the compute units.
fn compute_eff(class: KernelClass, family: HwFamily) -> f64 {
    use KernelClass::*;
    let gpu_like = matches!(family, HwFamily::NvidiaGpu | HwFamily::NvidiaJetson);
    match (class, family) {
        (DenseConv, HwFamily::IntelNpu) | (Gemm, HwFamily::IntelNpu) => 0.32,
        (AttentionFused, HwFamily::IntelNpu) => 0.2,
        // Jetson iGPU conv kernels are much further from peak than the
        // datacenter library builds (the paper's Orin EffNetV2-T run is
        // GPU-clock-bound at ~40 % of peak); big GEMMs still do well,
        // which is why Table 6's pseudo-model peak test reaches ~90 %
        (DenseConv, HwFamily::NvidiaJetson) => 0.40,
        (DepthwiseConv, HwFamily::NvidiaJetson) => 0.26,
        (AttentionFused, HwFamily::NvidiaJetson) => 0.50,
        (DenseConv, _) if gpu_like => 0.72,
        (Gemm, _) if gpu_like => 0.84,
        (AttentionFused, _) => 0.60,
        (DenseConv, _) => 0.62,
        (Gemm, _) => 0.78,
        (DepthwiseConv, _) => 0.45,
        (Pooling, _) | (Reduction, _) => 0.30,
        _ => 0.50,
    }
}

/// Fraction of achievable streaming bandwidth the class reaches.
fn mem_eff(class: KernelClass, family: HwFamily) -> f64 {
    use KernelClass::*;
    let base = match class {
        DenseConv | DepthwiseConv | Gemm => 0.85,
        AttentionFused => 0.80,
        Normalization => 0.70,
        Elementwise => 0.90,
        Reduction => 0.62,
        Pooling => 0.72,
        Transpose => 0.40,
        DataCopy => 0.76,
        Reorder => 0.72,
    };
    match family {
        HwFamily::IntelNpu => base * 0.7,
        _ => base,
    }
}

/// Wave-quantization/occupancy factor: small kernels cannot fill the chip.
/// Parallelism comes from whichever is larger: output elements or the
/// streamed bytes (reductions write few elements but read a lot).
fn occupancy(k: &Kernel, platform: &Platform) -> f64 {
    let work = (k.out_elems).max(k.cost.dram_bytes() / 4) as f64;
    // one "wave" ≈ units × a few thousand elements in flight
    let wave = platform.compute.units as f64 * 8192.0;
    let waves = work / wave;
    (waves / (waves + 0.35)).clamp(0.02, 1.0)
}

/// Deterministic base timing of one kernel at `precision` on `platform`.
pub fn kernel_timing(k: &Kernel, platform: &Platform, precision: DType) -> KernelTiming {
    let occ = occupancy(k, platform);
    let matrix = k.cost.tensor_core && k.class.uses_matrix_engine();
    let peak = platform.peak_flops(precision, matrix) * compute_eff(k.class, platform.family) * occ;
    let bw = platform.achievable_bw() * mem_eff(k.class, platform.family) * occ;
    let compute_us = if k.cost.hw_flops == 0 || peak <= 0.0 {
        0.0
    } else {
        k.cost.hw_flops as f64 / peak * 1e6
    };
    let memory_us = if bw <= 0.0 {
        0.0
    } else {
        k.cost.dram_bytes() as f64 / bw * 1e6
    };
    let latency_us =
        compute_us.max(memory_us).max(platform.min_kernel_us) + platform.kernel_launch_us;
    KernelTiming {
        latency_us,
        compute_us,
        memory_us,
    }
}

/// Aggregate utilization over kernels (time-weighted busy fractions).
pub fn aggregate_utilization(timings: &[KernelTiming]) -> Utilization {
    let total: f64 = timings.iter().map(|t| t.latency_us).sum();
    if total <= 0.0 {
        return Utilization::default();
    }
    Utilization {
        gpu: timings
            .iter()
            .map(|t| t.compute_us.min(t.latency_us))
            .sum::<f64>()
            / total,
        mem: timings
            .iter()
            .map(|t| t.memory_us.min(t.latency_us))
            .sum::<f64>()
            / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::KernelCost;
    use proof_hw::PlatformId;

    fn kernel(class: KernelClass, flops: u64, bytes: u64, out_elems: u64, tc: bool) -> Kernel {
        Kernel {
            name: "k".into(),
            class,
            cost: KernelCost {
                hw_flops: flops,
                dram_read_bytes: bytes / 2,
                dram_write_bytes: bytes - bytes / 2,
                tensor_core: tc,
                mma_instrs: 0,
            },
            out_elems,
        }
    }

    #[test]
    fn big_gemm_approaches_peak() {
        let p = PlatformId::A100.spec();
        // 1 TFLOP of gemm work, tiny traffic, chip-filling
        let k = kernel(KernelClass::Gemm, 1_000_000_000_000, 1 << 20, 1 << 26, true);
        let t = kernel_timing(&k, &p, DType::F16);
        let achieved = 1e12 / (t.latency_us / 1e6);
        let peak = p.peak_flops(DType::F16, true);
        assert!(
            achieved / peak > 0.7,
            "achieved {:.1}% of peak",
            100.0 * achieved / peak
        );
        assert!(achieved / peak < 1.0);
    }

    #[test]
    fn memory_bound_copy_is_limited_by_bandwidth() {
        let p = PlatformId::A100.spec();
        let bytes = 1u64 << 30;
        let k = kernel(KernelClass::DataCopy, 0, bytes, 1 << 27, false);
        let t = kernel_timing(&k, &p, DType::F16);
        assert!(t.compute_us == 0.0);
        let achieved_bw = bytes as f64 / (t.latency_us / 1e6);
        assert!(achieved_bw < p.achievable_bw());
        assert!(achieved_bw > 0.5 * p.achievable_bw());
    }

    #[test]
    fn transpose_achieves_less_bandwidth_than_copy() {
        let p = PlatformId::A100.spec();
        let co = kernel(KernelClass::DataCopy, 0, 1 << 28, 1 << 26, false);
        let tr = kernel(KernelClass::Transpose, 0, 1 << 28, 1 << 26, false);
        assert!(
            kernel_timing(&tr, &p, DType::F16).latency_us
                > kernel_timing(&co, &p, DType::F16).latency_us
        );
    }

    #[test]
    fn tiny_kernels_hit_the_floor_plus_launch() {
        let p = PlatformId::A100.spec();
        let k = kernel(KernelClass::Elementwise, 100, 128, 32, false);
        let t = kernel_timing(&k, &p, DType::F16);
        assert!((t.latency_us - (p.min_kernel_us + p.kernel_launch_us)).abs() < 1e-6);
    }

    #[test]
    fn depthwise_conv_runs_far_from_tensor_core_peak() {
        let p = PlatformId::A100.spec();
        let flops = 10_000_000_000u64;
        let dense = kernel(KernelClass::DenseConv, flops, 1 << 20, 1 << 26, true);
        let dw = kernel(KernelClass::DepthwiseConv, flops, 1 << 20, 1 << 26, false);
        let td = kernel_timing(&dense, &p, DType::F16);
        let tw = kernel_timing(&dw, &p, DType::F16);
        assert!(
            tw.latency_us > 5.0 * td.latency_us,
            "{} vs {}",
            tw.latency_us,
            td.latency_us
        );
    }

    #[test]
    fn occupancy_penalizes_small_work() {
        let p = PlatformId::A100.spec();
        let big = kernel(KernelClass::Gemm, 1 << 34, 1 << 22, 1 << 26, true);
        let small = kernel(KernelClass::Gemm, 1 << 34, 1 << 22, 1 << 12, true);
        assert!(
            kernel_timing(&small, &p, DType::F16).latency_us
                > kernel_timing(&big, &p, DType::F16).latency_us
        );
    }

    #[test]
    fn utilization_is_time_weighted_and_bounded() {
        let t = vec![
            KernelTiming {
                latency_us: 10.0,
                compute_us: 10.0,
                memory_us: 2.0,
            },
            KernelTiming {
                latency_us: 10.0,
                compute_us: 1.0,
                memory_us: 10.0,
            },
        ];
        let u = aggregate_utilization(&t);
        assert!((u.gpu - 0.55).abs() < 1e-9);
        assert!((u.mem - 0.6).abs() < 1e-9);
        assert!(u.gpu <= 1.0 && u.mem <= 1.0);
    }
}
