//! Kernel lowering: backend layers → executable kernels with an
//! implementation-aware cost (*Hardware FLOP* and DRAM traffic).
//!
//! The cost rules here intentionally differ from PRoof's analytical model
//! the way real hardware differs from Model FLOP (paper §4.2): Tensor-Core
//! tile padding, depthwise-convolution predication/halo overhead, fused
//! pointwise kernels whose transcendentals execute as single SFU
//! instructions, and transpose kernels whose uncoalesced accesses move more
//! DRAM traffic than the tensor size.

use crate::fusion::{GroupKind, RtGroup};
use proof_hw::{HwFamily, Platform};
use proof_ir::{DType, Graph, NodeId, OpCategory, OpKind, TensorId, TensorKind};
use std::collections::HashMap;

/// Kernel classes, driving both cost inflation and execution efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    DenseConv,
    DepthwiseConv,
    Gemm,
    AttentionFused,
    Normalization,
    Elementwise,
    Reduction,
    Pooling,
    Transpose,
    DataCopy,
    Reorder,
}

impl KernelClass {
    /// Whether this class runs on the matrix engine when one exists.
    pub fn uses_matrix_engine(self) -> bool {
        matches!(
            self,
            KernelClass::DenseConv | KernelClass::Gemm | KernelClass::AttentionFused
        )
    }
}

/// Hardware-truth cost of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// FLOPs the hardware actually executes (padding etc. included).
    pub hw_flops: u64,
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    /// Executed on Tensor Cores / MAC array.
    pub tensor_core: bool,
    /// HMMA/IMMA instruction count (for the simulated NCU's FLOP counter).
    pub mma_instrs: u64,
}

impl KernelCost {
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// One lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    pub class: KernelClass,
    pub cost: KernelCost,
    /// Output element count (occupancy/wave-quantization input).
    pub out_elems: u64,
}

/// FLOPs one MMA instruction performs, per architecture (HMMA fp16 path).
/// NCU's bug is to assume 512 everywhere (only right on Volta) — paper §4.2.
pub fn mma_flops_per_instr(arch: proof_hw::GpuArch, dtype: DType) -> u64 {
    use proof_hw::GpuArch::*;
    let fp16 = match arch {
        Volta => 512,         // HMMA.884.F32
        Turing => 2048,       // HMMA.16816 (half rate)
        Ampere | Ada => 4096, // HMMA.16816
        NonNvidia => 0,
    };
    if fp16 == 0 {
        return 0;
    }
    match dtype {
        DType::I8 | DType::U8 => fp16 * 2, // IMMA double rate
        _ => fp16,
    }
}

fn pad_to(v: u64, m: u64) -> u64 {
    v.div_ceil(m) * m
}

/// Lowers fused groups to kernels for one platform/precision.
pub struct Lowerer<'g> {
    g: &'g Graph,
    platform: &'g Platform,
    precision: DType,
    producers: HashMap<TensorId, NodeId>,
    consumers: HashMap<TensorId, Vec<NodeId>>,
}

impl<'g> Lowerer<'g> {
    pub fn new(g: &'g Graph, platform: &'g Platform, precision: DType) -> Self {
        Lowerer {
            producers: g.producers(),
            consumers: g.consumers(),
            g,
            platform,
            precision,
        }
    }

    fn bytes(&self, t: TensorId) -> u64 {
        self.g.tensor(t).size_bytes_at(self.precision)
    }

    /// The dtype a kernel class actually runs at: int8 engines quantize
    /// contractions but keep normalization/softmax/data-movement layers in
    /// fp16 (mixed-precision engine building, as TensorRT does).
    fn class_precision(&self, class: KernelClass) -> DType {
        if self.precision == DType::I8 || self.precision == DType::U8 {
            match class {
                KernelClass::DenseConv
                | KernelClass::DepthwiseConv
                | KernelClass::Gemm
                | KernelClass::AttentionFused => self.precision,
                _ => DType::F16,
            }
        } else {
            self.precision
        }
    }

    /// Boundary activation tensors of a group (inputs consumed from outside,
    /// outputs visible outside) — what the runtime reports as layer io.
    pub fn group_io(&self, grp: &RtGroup) -> (Vec<TensorId>, Vec<TensorId>) {
        let members: std::collections::HashSet<NodeId> = grp.members.iter().copied().collect();
        let (mut ins, mut outs) = (Vec::new(), Vec::new());
        for &m in &grp.members {
            let node = self.g.node(m);
            for &t in &node.inputs {
                if self.g.tensor(t).kind == TensorKind::Weight {
                    continue;
                }
                let inside = self.producers.get(&t).is_some_and(|p| members.contains(p));
                if !inside && !ins.contains(&t) {
                    ins.push(t);
                }
            }
            for &t in &node.outputs {
                let all_inside = self
                    .consumers
                    .get(&t)
                    .is_some_and(|cs| !cs.is_empty() && cs.iter().all(|c| members.contains(c)));
                if (!all_inside || self.g.outputs.contains(&t)) && !outs.contains(&t) {
                    outs.push(t);
                }
            }
        }
        (ins, outs)
    }

    /// Boundary activations in/out + member weight bytes for a group.
    fn group_traffic(&self, grp: &RtGroup) -> (u64, u64, u64) {
        let members: std::collections::HashSet<NodeId> = grp.members.iter().copied().collect();
        let (mut inb, mut wb, mut outb) = (0u64, 0u64, 0u64);
        let mut seen_in: Vec<TensorId> = Vec::new();
        for &m in &grp.members {
            let node = self.g.node(m);
            if node.op.is_noop_at_inference() && node.op != OpKind::Dropout {
                // views move nothing even at hardware level
                if node.op != OpKind::Reshape && node.op != OpKind::Flatten {
                    continue;
                }
            }
            for &t in &node.inputs {
                if self.g.tensor(t).kind == TensorKind::Weight {
                    wb += self.bytes(t);
                    continue;
                }
                let inside = self.producers.get(&t).is_some_and(|p| members.contains(p));
                if !inside && !seen_in.contains(&t) {
                    seen_in.push(t);
                    inb += self.bytes(t);
                }
            }
            for &t in &node.outputs {
                let all_inside = self
                    .consumers
                    .get(&t)
                    .is_some_and(|cs| !cs.is_empty() && cs.iter().all(|c| members.contains(c)));
                if !all_inside || self.g.outputs.contains(&t) {
                    outb += self.bytes(t);
                }
            }
        }
        (inb, wb, outb)
    }

    /// Classify a group.
    pub fn classify(&self, grp: &RtGroup) -> Option<KernelClass> {
        Some(match grp.kind {
            GroupKind::Eliminated => return None,
            GroupKind::ConvBlock => {
                let conv = self.g.node(grp.primary(self.g));
                if conv.attrs.int_or("group", 1) > 4 {
                    KernelClass::DepthwiseConv
                } else {
                    KernelClass::DenseConv
                }
            }
            GroupKind::GemmBlock => KernelClass::Gemm,
            GroupKind::AttentionRegion => KernelClass::AttentionFused,
            GroupKind::LayerNormFused => KernelClass::Normalization,
            GroupKind::ElementwiseChain => KernelClass::Elementwise,
            GroupKind::Single => {
                let node = self.g.node(grp.members[0]);
                match node.op {
                    OpKind::Conv if node.attrs.int_or("group", 1) > 4 => KernelClass::DepthwiseConv,
                    OpKind::Conv => KernelClass::DenseConv,
                    OpKind::Gemm | OpKind::MatMul => KernelClass::Gemm,
                    OpKind::Transpose => KernelClass::Transpose,
                    op if op.is_noop_at_inference() => return None,
                    op => match op.category() {
                        OpCategory::Normalization => KernelClass::Normalization,
                        OpCategory::Reduction => KernelClass::Reduction,
                        OpCategory::Pooling => KernelClass::Pooling,
                        OpCategory::DataMovement => KernelClass::DataCopy,
                        _ => KernelClass::Elementwise,
                    },
                }
            }
        })
    }

    /// Hardware FLOPs of the contraction members, tile-padding included.
    fn contraction_hw_flops(&self, grp: &RtGroup) -> u64 {
        let chan_align: u64 = match self.precision {
            DType::I8 | DType::U8 => 16,
            _ => 8,
        };
        let mut total = 0u64;
        for &m in &grp.members {
            let node = self.g.node(m);
            match node.op {
                OpKind::Conv => {
                    let out = &self.g.tensor(node.output()).shape;
                    let w = &self.g.tensor(node.inputs[1]).shape;
                    let groups = node.attrs.int_or("group", 1) as u64;
                    let (cout, cin_g) = (w.dims()[0], w.dims()[1]);
                    let k: u64 = w.dims()[2..].iter().product();
                    let spatial: u64 = out.numel() / cout.max(1);
                    if groups > 4 {
                        // depthwise: vector-unit path with halo/predication
                        // redundancy — the big Hardware-FLOP inflation the
                        // paper observed on MobileNet (−24 % model vs NCU)
                        total += out.numel() * cin_g * k * 2 * 5;
                    } else {
                        // implicit-gemm tiles pad both channel extents;
                        // first-layer kernels (RGB input) pad only to 4.
                        // On matrix engines the output-channel extent is
                        // tiled at 32 — narrow mobile-CNN layers execute a
                        // large share of padded MMAs, the dominant cause of
                        // the Hardware-vs-Model FLOP gap the paper measured
                        // on MobileNetV2 (−24 %) and EfficientNetV2-S (−20 %)
                        let cin_pad = if cin_g < chan_align {
                            pad_to(cin_g, 4)
                        } else {
                            pad_to(cin_g, chan_align)
                        };
                        let cout_tile = if self.platform.compute.has_matrix_engine(self.precision) {
                            32
                        } else {
                            chan_align
                        };
                        let base = (spatial * pad_to(cout, cout_tile) * cin_pad * k * 2) as f64;
                        total += (base * 1.02) as u64;
                    }
                }
                OpKind::MatMul | OpKind::Gemm => {
                    let out = &self.g.tensor(node.output()).shape;
                    let r = out.rank();
                    let n = out.dims()[r - 1];
                    let m_ = out.dims()[r - 2];
                    let batch: u64 = out.dims()[..r - 2].iter().product();
                    let a = &self.g.tensor(node.inputs[0]).shape;
                    let k = if node.op == OpKind::Gemm && node.attrs.int_or("transA", 0) != 0 {
                        a.dims()[0]
                    } else {
                        *a.dims().last().unwrap()
                    };
                    total += 2 * batch * pad_to(m_, 8) * pad_to(n, 8) * pad_to(k, 8);
                }
                _ => {}
            }
        }
        total
    }

    /// Lower one group to (usually) a single kernel.
    pub fn lower_group(&self, grp: &RtGroup, index: usize) -> Option<Kernel> {
        let class = self.classify(grp)?;
        let (mut inb, mut wb, mut outb) = self.group_traffic(grp);
        // mixed precision: rescale traffic when this class stays in fp16
        let eff = self.class_precision(class);
        if eff != self.precision {
            let scale = eff.size_bytes() as f64 / self.precision.size_bytes() as f64;
            inb = (inb as f64 * scale) as u64;
            wb = (wb as f64 * scale) as u64;
            outb = (outb as f64 * scale) as u64;
        }
        // strided convolutions genuinely skip untouched input pixels
        if matches!(class, KernelClass::DenseConv | KernelClass::DepthwiseConv) {
            let conv = self.g.node(grp.primary(self.g));
            let kernel = conv.attrs.ints("kernel_shape").unwrap_or(&[1, 1]).to_vec();
            let strides = conv.attrs.ints("strides").unwrap_or(&[1, 1]).to_vec();
            let mut frac = 1.0f64;
            for (k, st) in kernel.iter().zip(&strides) {
                frac *= (*k as f64 / *st as f64).min(1.0);
            }
            if frac < 1.0 {
                inb = (inb as f64 * frac) as u64;
            }
        }
        let out_elems: u64 = grp
            .members
            .iter()
            .flat_map(|&m| self.g.node(m).outputs.iter())
            .map(|&t| self.g.tensor(t).numel())
            .max()
            .unwrap_or(1);
        let total_elems = out_elems.max(1);

        let hw_flops = match class {
            KernelClass::DenseConv | KernelClass::DepthwiseConv | KernelClass::Gemm => {
                // contraction + a couple of pointwise ops per output element
                self.contraction_hw_flops(grp) + total_elems * (grp.members.len() as u64).min(4)
            }
            KernelClass::AttentionFused => {
                // HMMA-visible flops only: the fused softmax/scale pointwise
                // work is not counted as FLOP by the counter path
                self.contraction_hw_flops(grp)
            }
            KernelClass::Normalization => total_elems * 3,
            KernelClass::Elementwise => total_elems * (grp.members.len() as u64).max(1),
            KernelClass::Reduction => total_elems * 2,
            KernelClass::Pooling => {
                let node = self.g.node(grp.primary(self.g));
                let k: u64 = node
                    .attrs
                    .ints("kernel_shape")
                    .map(|ks| ks.iter().map(|&x| x as u64).product())
                    .unwrap_or(1);
                total_elems * k
            }
            KernelClass::Transpose | KernelClass::DataCopy | KernelClass::Reorder => 0,
        };

        // DRAM traffic: boundary + class-dependent coalescing factor
        let (read_f, write_f) = match class {
            KernelClass::Transpose => (1.25, 1.25),
            KernelClass::DenseConv | KernelClass::DepthwiseConv => (1.03, 1.0),
            KernelClass::Gemm | KernelClass::AttentionFused => (1.02, 1.0),
            _ => (1.0, 1.0),
        };
        let tensor_core = class.uses_matrix_engine()
            && self.platform.compute.has_matrix_engine(self.precision)
            && class != KernelClass::DepthwiseConv;
        let mma = mma_flops_per_instr(self.platform.arch, self.precision);
        let cost = KernelCost {
            hw_flops,
            dram_read_bytes: ((inb + wb) as f64 * read_f) as u64,
            dram_write_bytes: (outb as f64 * write_f) as u64,
            tensor_core,
            mma_instrs: if tensor_core && mma > 0 {
                hw_flops / mma
            } else {
                0
            },
        };
        Some(Kernel {
            name: self.kernel_name(grp, class, index),
            class,
            cost,
            out_elems,
        })
    }

    /// A plausible vendor-style kernel name.
    fn kernel_name(&self, grp: &RtGroup, class: KernelClass, index: usize) -> String {
        let primary = self.g.node(grp.primary(self.g)).name.clone();
        match (self.platform.family, class) {
            (HwFamily::NvidiaGpu | HwFamily::NvidiaJetson, KernelClass::DenseConv) => {
                format!("sm80_xmma_fprop_implicit_gemm_f16f16_tn_n{index}_{primary}")
            }
            (HwFamily::NvidiaGpu | HwFamily::NvidiaJetson, KernelClass::Gemm) => {
                format!("ampere_fp16_s16816gemm_fp16_128x128_ldg8_n{index}_{primary}")
            }
            (HwFamily::NvidiaGpu | HwFamily::NvidiaJetson, KernelClass::DepthwiseConv) => {
                format!("xmma_dw_fprop_f16_n{index}_{primary}")
            }
            (HwFamily::NvidiaGpu | HwFamily::NvidiaJetson, KernelClass::AttentionFused) => {
                format!("__myelin_fused_attention_n{index}")
            }
            (HwFamily::X86Cpu, _) => format!("jit_avx512_core_{class:?}_n{index}_{primary}"),
            (HwFamily::ArmCpu, _) => format!("neon_{class:?}_n{index}_{primary}"),
            (HwFamily::IntelNpu, _) => format!("npu_dpu_{class:?}_n{index}_{primary}"),
            _ => format!("generic_{class:?}_n{index}_{primary}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::{fuse, FusionPolicy};
    use proof_hw::PlatformId;
    use proof_ir::{DType, GraphBuilder};

    fn lower_all(g: &Graph, precision: DType) -> Vec<Kernel> {
        let p = PlatformId::A100.spec();
        let lw = Lowerer::new(g, &p, precision);
        fuse(g, &FusionPolicy::trt())
            .iter()
            .enumerate()
            .filter_map(|(i, grp)| lw.lower_group(grp, i))
            .collect()
    }

    #[test]
    fn dense_conv_uses_tensor_cores_at_fp16_only() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 64, 56, 56], DType::F32);
        let c = b.conv("conv", x, 64, 3, 1, 1, 1, true);
        b.output(c);
        let g = b.finish();
        let k16 = lower_all(&g, DType::F16);
        assert!(k16[0].cost.tensor_core);
        assert!(k16[0].cost.mma_instrs > 0);
        let k32 = lower_all(&g, DType::F32);
        assert!(!k32[0].cost.tensor_core);
        assert_eq!(k32[0].cost.mma_instrs, 0);
    }

    #[test]
    fn depthwise_conv_is_inflated_and_off_tensor_cores() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 96, 56, 56], DType::F32);
        let c = b.conv("dw", x, 96, 3, 1, 1, 96, true);
        b.output(c);
        let g = b.finish();
        let k = &lower_all(&g, DType::F16)[0];
        assert_eq!(k.class, KernelClass::DepthwiseConv);
        assert!(!k.cost.tensor_core);
        let model_flops = 2 * 96 * 56 * 56 * 9;
        assert!(
            k.cost.hw_flops > model_flops * 2,
            "hw {} vs model {}",
            k.cost.hw_flops,
            model_flops
        );
    }

    #[test]
    fn fused_group_traffic_excludes_interior_tensors() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, false);
        let r = b.relu("relu", c);
        b.output(r);
        let g = b.finish();
        let k = &lower_all(&g, DType::F16)[0];
        // read x (+3% coalescing) + weights; write relu out only
        let x_bytes = (8 * 16 * 16 * 2) as f64;
        assert!((k.cost.dram_write_bytes as f64 - x_bytes).abs() < 8.0);
        assert!(k.cost.dram_read_bytes < 2 * (x_bytes as u64 + 8 * 8 * 9 * 2));
    }

    #[test]
    fn transpose_kernel_moves_extra_traffic_without_flops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 58, 2, 784], DType::F32);
        let t = b.transpose("tr", x, &[0, 2, 1, 3]);
        b.output(t);
        let g = b.finish();
        let k = &lower_all(&g, DType::F16)[0];
        assert_eq!(k.class, KernelClass::Transpose);
        assert_eq!(k.cost.hw_flops, 0);
        let tensor = 58 * 2 * 784 * 2u64;
        assert!(k.cost.dram_read_bytes > tensor, "uncoalesced reads");
    }

    #[test]
    fn mma_table_reproduces_the_ncu_bug_ratio() {
        use proof_hw::GpuArch::*;
        assert_eq!(mma_flops_per_instr(Volta, DType::F16), 512);
        assert_eq!(mma_flops_per_instr(Ampere, DType::F16), 4096);
        assert_eq!(mma_flops_per_instr(Ampere, DType::I8), 8192);
        assert_eq!(mma_flops_per_instr(NonNvidia, DType::F16), 0);
    }

    #[test]
    fn eliminated_groups_produce_no_kernels() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 64], DType::F32);
        let r = b.reshape("rs", x, &[8, 32]);
        b.output(r);
        let g = b.finish();
        // reshape alone: eliminated, zero kernels
        assert!(lower_all(&g, DType::F16).is_empty());
    }

    #[test]
    fn attention_region_counts_only_matmul_flops() {
        let g = proof_models::vit::vit(1, proof_models::vit::ViTSize::Tiny);
        let p = PlatformId::A100.spec();
        let lw = Lowerer::new(&g, &p, DType::F16);
        let groups = fuse(&g, &FusionPolicy::trt());
        let region = groups
            .iter()
            .find(|grp| grp.kind == GroupKind::AttentionRegion)
            .unwrap();
        let k = lw.lower_group(region, 0).unwrap();
        assert_eq!(k.class, KernelClass::AttentionFused);
        // two 197×64×197-ish matmuls per head at fp16: order 10⁷–10⁸ flops
        assert!(k.cost.hw_flops > 10_000_000, "{}", k.cost.hw_flops);
        assert!(k.cost.tensor_core);
    }
}

#[cfg(test)]
mod mixed_precision_tests {
    use super::*;
    use crate::fusion::{fuse, FusionPolicy};
    use proof_hw::PlatformId;
    use proof_ir::{DType, GraphBuilder};

    #[test]
    fn int8_engines_keep_transposes_in_fp16() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 64, 2, 784], DType::F32);
        let tr = b.transpose("tr", x, &[0, 2, 1, 3]);
        let c = b.conv("conv", tr, 64, 1, 1, 0, 1, true);
        b.output(c);
        let g = b.finish();
        let p = PlatformId::A100.spec();
        let lw = Lowerer::new(&g, &p, DType::I8);
        let groups = fuse(&g, &FusionPolicy::trt());
        let kernels: Vec<Kernel> = groups
            .iter()
            .enumerate()
            .filter_map(|(i, grp)| lw.lower_group(grp, i))
            .collect();
        let transpose = kernels
            .iter()
            .find(|k| k.class == KernelClass::Transpose)
            .unwrap();
        let conv = kernels
            .iter()
            .find(|k| k.class == KernelClass::DenseConv)
            .unwrap();
        // transpose moves fp16 bytes even in an int8 engine: tensor is
        // 64·2·784 elements, written at 2 B/elem × 1.25 coalescing
        let elems = 64 * 2 * 784u64;
        assert_eq!(transpose.cost.dram_write_bytes, elems * 2 * 5 / 4);
        // the conv writes its (much larger) output at 1 B/elem
        let conv_out = 64 * 64 * 784u64;
        assert_eq!(conv.cost.dram_write_bytes, conv_out);
        assert!(conv.cost.tensor_core);
    }
}
