//! Chrome-trace export: serialize the simulated kernel timeline in the
//! `chrome://tracing` / Perfetto JSON format — the timeline view a real
//! deployment would get from Nsight Systems.
//!
//! The timeline is produced as [`proof_obs::TraceEvent`]s so callers can
//! merge it with pipeline-stage spans on one clock
//! (`proof_core::merged_chrome_trace`) before rendering; [`chrome_trace`]
//! keeps the standalone kernel-only document.

use crate::backend::CompiledModel;
use proof_obs::export::chrome_trace_json;
use proof_obs::{FieldValue, TraceEvent};

/// The execution timeline as trace events starting at `t0_us`. Two rows:
/// backend layers (tid 1) and the kernels inside them (tid 2); durations
/// come from the deterministic base latencies.
pub fn kernel_events(model: &CompiledModel, t0_us: f64) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut t_us = t0_us;
    for layer in &model.layers {
        if layer.kernels.is_empty() {
            continue;
        }
        events.push(TraceEvent {
            name: layer.name.clone(),
            cat: "backend_layer",
            pid: 1,
            tid: 1,
            ts_us: t_us,
            dur_us: layer.base_latency_us,
            args: vec![
                (
                    "compute_us".to_string(),
                    FieldValue::F64(layer.timing.compute_us),
                ),
                (
                    "memory_us".to_string(),
                    FieldValue::F64(layer.timing.memory_us),
                ),
                ("reorder".to_string(), FieldValue::Bool(layer.is_reorder)),
            ],
        });
        let per_kernel = layer.base_latency_us / layer.kernels.len() as f64;
        let mut kt = t_us;
        for k in &layer.kernels {
            events.push(TraceEvent {
                name: k.name.clone(),
                cat: "kernel",
                pid: 1,
                tid: 2,
                ts_us: kt,
                dur_us: per_kernel,
                args: vec![
                    (
                        "class".to_string(),
                        FieldValue::Str(format!("{:?}", k.class)),
                    ),
                    ("hw_flops".to_string(), FieldValue::U64(k.cost.hw_flops)),
                    (
                        "dram_bytes".to_string(),
                        FieldValue::U64(k.cost.dram_bytes()),
                    ),
                    (
                        "tensor_core".to_string(),
                        FieldValue::Bool(k.cost.tensor_core),
                    ),
                ],
            });
            kt += per_kernel;
        }
        t_us += layer.base_latency_us;
    }
    events
}

/// Serialize the execution timeline as a standalone Chrome-trace JSON
/// document.
pub fn chrome_trace(model: &CompiledModel) -> String {
    chrome_trace_json(&kernel_events(model, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, BackendFlavor, SessionConfig};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn compiled() -> CompiledModel {
        compile(
            &ModelId::MobileNetV2x05.build(2),
            BackendFlavor::TrtLike,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16),
        )
        .unwrap()
    }

    #[test]
    fn trace_is_valid_json_with_all_events() {
        let m = compiled();
        let trace = chrome_trace(&m);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        let layers = m.layers.iter().filter(|l| !l.kernels.is_empty()).count();
        let kernels: usize = m.layers.iter().map(|l| l.kernels.len()).sum();
        assert_eq!(events.len(), layers + kernels);
        // events are complete ("X") slices with increasing timestamps per tid
        let mut last_ts = -1.0;
        for e in events.iter().filter(|e| e["tid"] == 1) {
            let ts = e["ts"].as_f64().unwrap();
            assert!(ts >= last_ts);
            last_ts = ts;
            assert_eq!(e["ph"], "X");
        }
    }

    #[test]
    fn total_layer_duration_matches_base_latency() {
        let m = compiled();
        let trace = chrome_trace(&m);
        let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let sum: f64 = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["tid"] == 1)
            .map(|e| e["dur"].as_f64().unwrap())
            .sum();
        // durations are serialized at 3 decimals; allow the rounding budget
        assert!((sum - m.base_latency_us()).abs() < 0.001 * m.layers.len() as f64);
    }

    #[test]
    fn kernel_names_are_escaped() {
        let m = compiled();
        let trace = chrome_trace(&m);
        serde_json::from_str::<serde_json::Value>(&trace).unwrap();
        assert!(trace.contains("tensor_core"));
    }

    #[test]
    fn control_characters_in_names_still_emit_valid_json() {
        // regression: the old escaper handled only '\' and '"', so newlines,
        // tabs, or raw control bytes in a layer/kernel name broke the JSON
        let mut m = compiled();
        m.layers[0].name = "conv\n\t \"0\"\\ \u{1}\u{1f}".to_string();
        if let Some(k) = m.layers[0].kernels.first_mut() {
            k.name = "kern\rnel \u{7}".to_string();
        }
        let trace = chrome_trace(&m);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("escaped JSON parses");
        let events = v["traceEvents"].as_array().unwrap();
        // the names round-trip exactly through escape + parse
        assert!(events
            .iter()
            .any(|e| e["name"] == "conv\n\t \"0\"\\ \u{1}\u{1f}"));
        assert!(events.iter().any(|e| e["name"] == "kern\rnel \u{7}"));
    }

    #[test]
    fn kernel_events_offset_by_t0() {
        let m = compiled();
        let at_zero = kernel_events(&m, 0.0);
        let shifted = kernel_events(&m, 100.0);
        assert_eq!(at_zero.len(), shifted.len());
        for (a, b) in at_zero.iter().zip(&shifted) {
            assert!((b.ts_us - a.ts_us - 100.0).abs() < 1e-9);
            assert_eq!(a.name, b.name);
            assert_eq!(a.dur_us, b.dur_us);
        }
    }
}
