//! Chrome-trace export: serialize the simulated kernel timeline in the
//! `chrome://tracing` / Perfetto JSON format — the timeline view a real
//! deployment would get from Nsight Systems.

use crate::backend::CompiledModel;
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize the execution timeline as Chrome-trace JSON. Two rows: backend
/// layers (tid 1) and the kernels inside them (tid 2); durations come from
/// the deterministic base latencies.
pub fn chrome_trace(model: &CompiledModel) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let pid = 1;
    let mut t_us = 0.0f64;
    let mut first = true;
    for layer in &model.layers {
        if layer.kernels.is_empty() {
            continue;
        }
        let mut push = |s: &mut String,
                        name: &str,
                        cat: &str,
                        tid: u32,
                        ts: f64,
                        dur: f64,
                        args: String| {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{{args}}}}}",
                esc(name)
            );
        };
        push(
            &mut out,
            &layer.name,
            "backend_layer",
            1,
            t_us,
            layer.base_latency_us,
            format!(
                "\"compute_us\":{:.3},\"memory_us\":{:.3},\"reorder\":{}",
                layer.timing.compute_us, layer.timing.memory_us, layer.is_reorder
            ),
        );
        let per_kernel = layer.base_latency_us / layer.kernels.len() as f64;
        let mut kt = t_us;
        for k in &layer.kernels {
            push(
                &mut out,
                &k.name,
                "kernel",
                2,
                kt,
                per_kernel,
                format!(
                    "\"class\":\"{:?}\",\"hw_flops\":{},\"dram_bytes\":{},\"tensor_core\":{}",
                    k.class,
                    k.cost.hw_flops,
                    k.cost.dram_bytes(),
                    k.cost.tensor_core
                ),
            );
            kt += per_kernel;
        }
        t_us += layer.base_latency_us;
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, BackendFlavor, SessionConfig};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn compiled() -> CompiledModel {
        compile(
            &ModelId::MobileNetV2x05.build(2),
            BackendFlavor::TrtLike,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16),
        )
        .unwrap()
    }

    #[test]
    fn trace_is_valid_json_with_all_events() {
        let m = compiled();
        let trace = chrome_trace(&m);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        let layers = m.layers.iter().filter(|l| !l.kernels.is_empty()).count();
        let kernels: usize = m.layers.iter().map(|l| l.kernels.len()).sum();
        assert_eq!(events.len(), layers + kernels);
        // events are complete ("X") slices with increasing timestamps per tid
        let mut last_ts = -1.0;
        for e in events.iter().filter(|e| e["tid"] == 1) {
            let ts = e["ts"].as_f64().unwrap();
            assert!(ts >= last_ts);
            last_ts = ts;
            assert_eq!(e["ph"], "X");
        }
    }

    #[test]
    fn total_layer_duration_matches_base_latency() {
        let m = compiled();
        let trace = chrome_trace(&m);
        let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let sum: f64 = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["tid"] == 1)
            .map(|e| e["dur"].as_f64().unwrap())
            .sum();
        // durations are serialized at 3 decimals; allow the rounding budget
        assert!((sum - m.base_latency_us()).abs() < 0.001 * m.layers.len() as f64);
    }

    #[test]
    fn kernel_names_are_escaped() {
        let m = compiled();
        let trace = chrome_trace(&m);
        serde_json::from_str::<serde_json::Value>(&trace).unwrap();
        assert!(trace.contains("tensor_core"));
    }
}
