//! # proof-runtime — DNN inference runtime simulator
//!
//! A from-scratch substrate standing in for TensorRT / ONNX Runtime /
//! OpenVINO. Given a model graph, a [`proof_hw::Platform`] and a
//! [`SessionConfig`], a backend:
//!
//! 1. optimizes the graph — no-op elimination, Conv/Gemm epilogue fusion,
//!    LayerNorm/GELU pattern fusion, opaque Myelin-style attention regions
//!    ([`fusion`]),
//! 2. inserts reorder/reformat layers at precision/layout boundaries,
//! 3. lowers each backend layer to kernels with an implementation-aware
//!    *Hardware FLOP* / DRAM-traffic cost ([`lower`]) — deliberately
//!    different from PRoof's analytical *Model FLOP*, reproducing the
//!    semantic gap of the paper's Table 4,
//! 4. simulates kernel latencies with a roofline-plus-efficiency model and
//!    seeded noise ([`exec`]),
//! 5. exposes exactly the (partial) information real runtimes expose:
//!    per-backend-layer latencies with flavour-specific fusion hints
//!    ([`backend::LayerHint`]) and a kernel trace for counter profilers.
//!
//! Ground-truth fusion membership is available via
//! [`backend::BackendLayer::truth_members`] for tests only — the PRoof side
//! (`proof-core`) never reads it.

pub mod backend;
pub mod config;
pub mod exec;
pub mod fusion;
pub mod lower;
pub mod trace;

pub use backend::{
    compile, BackendError, BackendFlavor, BackendLayer, CompiledModel, LayerHint, LayerProfile,
    LayerStats,
};
pub use config::SessionConfig;
pub use exec::Utilization;
pub use fusion::{FusionPolicy, GroupKind, RtGroup};
pub use lower::{Kernel, KernelClass, KernelCost};
pub use trace::{chrome_trace, kernel_events};
