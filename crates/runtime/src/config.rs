//! Session configuration (the `trtexec`/session-options equivalent).

use proof_ir::DType;

/// How a backend session is built and run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Execution precision (fp32/fp16/int8). Weights and activations are
    /// converted at build time, as real runtimes do.
    pub precision: DType,
    /// RNG seed for latency noise — fixed seed ⇒ bit-reproducible profiles.
    pub seed: u64,
    /// Profiling iterations to average over.
    pub iterations: u32,
}

impl SessionConfig {
    pub fn new(precision: DType) -> Self {
        SessionConfig {
            precision,
            seed: 0xC0FFEE,
            iterations: 20,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new(DType::F16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fp16_and_deterministic() {
        let c = SessionConfig::default();
        assert_eq!(c.precision, DType::F16);
        assert_eq!(c.seed, SessionConfig::new(DType::F16).seed);
    }

    #[test]
    fn iterations_floor_at_one() {
        assert_eq!(SessionConfig::default().with_iterations(0).iterations, 1);
    }
}
