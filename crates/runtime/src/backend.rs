//! Backend abstraction: compile a model for a platform, profile it, and
//! expose exactly the information real runtimes expose.
//!
//! Three flavours mirror the paper's evaluation runtimes:
//!
//! | flavour | stands in for | fusion | what its profiler reveals |
//! |---|---|---|---|
//! | `TrtLike` | TensorRT | aggressive + opaque Myelin regions | `"a + b + c"` name strings; opaque regions show **io tensor names only** |
//! | `OrtLike` | ONNX Runtime | epilogues + patterns | fused node-name lists (the best case) |
//! | `OvLike` | OpenVINO | conv/gemm epilogues | primary-op name + executor type only |
//!
//! The `truth_members` accessor exists **for tests**: PRoof's mapping is
//! validated against it but never reads it.

use crate::config::SessionConfig;
use crate::exec::{aggregate_utilization, kernel_timing, KernelTiming, Utilization};
use crate::fusion::{fuse, FusionPolicy, GroupKind, RtGroup};
use crate::lower::{Kernel, KernelClass, KernelCost, Lowerer};
use proof_hw::{HwFamily, Platform};
use proof_ir::{DType, Graph, NodeId, OpKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which runtime a backend imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendFlavor {
    TrtLike,
    OrtLike,
    OvLike,
}

impl BackendFlavor {
    pub fn name(self) -> &'static str {
        match self {
            BackendFlavor::TrtLike => "trt-like",
            BackendFlavor::OrtLike => "ort-like",
            BackendFlavor::OvLike => "ov-like",
        }
    }

    pub fn policy(self) -> FusionPolicy {
        match self {
            BackendFlavor::TrtLike => FusionPolicy::trt(),
            BackendFlavor::OrtLike => FusionPolicy::ort(),
            BackendFlavor::OvLike => FusionPolicy::ov(),
        }
    }

    /// The runtime the paper pairs with each platform (Table 2).
    pub fn for_platform(p: &Platform) -> BackendFlavor {
        match p.family {
            HwFamily::NvidiaGpu | HwFamily::NvidiaJetson => BackendFlavor::TrtLike,
            HwFamily::X86Cpu | HwFamily::ArmCpu => BackendFlavor::OrtLike,
            HwFamily::IntelNpu => BackendFlavor::OvLike,
        }
    }

    pub fn parse(s: &str) -> Option<BackendFlavor> {
        match s.to_ascii_lowercase().as_str() {
            "trt" | "trt-like" | "tensorrt" => Some(BackendFlavor::TrtLike),
            "ort" | "ort-like" | "onnxruntime" => Some(BackendFlavor::OrtLike),
            "ov" | "ov-like" | "openvino" => Some(BackendFlavor::OvLike),
            _ => None,
        }
    }
}

/// What a backend's built-in profiler reveals about a layer's origin.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerHint {
    /// ORT-style: the fused original node names, verbatim.
    NodeNames(Vec<String>),
    /// TRT-style: `"conv1 + relu1 + add_3"`.
    FusedNameString(String),
    /// Myelin-style opaque region: only its io tensor names.
    OpaqueIo {
        inputs: Vec<String>,
        outputs: Vec<String>,
    },
    /// OpenVINO-style: primary node name + executor type.
    PrimaryOp {
        node_name: String,
        exec_type: String,
    },
    /// Runtime-inserted conversion layer (no model counterpart).
    Reorder {
        input_tensor: String,
        output_tensor: String,
    },
}

/// One backend layer of the compiled plan.
#[derive(Debug, Clone)]
pub struct BackendLayer {
    pub name: String,
    pub hint: LayerHint,
    pub kernels: Vec<Kernel>,
    /// Deterministic base latency (noise is added per profiling iteration).
    pub base_latency_us: f64,
    pub timing: KernelTiming,
    /// True for runtime-inserted reorder/reformat layers.
    pub is_reorder: bool,
    truth: Vec<NodeId>,
}

impl BackendLayer {
    /// Ground-truth member nodes — **test oracle only**.
    #[doc(hidden)]
    pub fn truth_members(&self) -> &[NodeId] {
        &self.truth
    }
}

/// What the built-in profiler reports per layer.
#[derive(Debug, Clone)]
pub struct LayerProfile {
    pub name: String,
    pub avg_latency_us: f64,
    pub hint: LayerHint,
}

/// Full per-layer latency statistics (warmup-discarded).
#[derive(Debug, Clone)]
pub struct LayerStats {
    pub name: String,
    pub hint: LayerHint,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub min_us: f64,
    pub max_us: f64,
    pub samples: u32,
}

/// A kernel-trace record (the Nsight-Systems-like correlation channel).
#[derive(Debug, Clone)]
pub struct KernelRecord {
    pub kernel: Kernel,
    pub layer_index: usize,
    pub latency_us: f64,
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    UnsupportedOp { op: String, node: String },
    ConversionFailure(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnsupportedOp { op, node } => {
                write!(f, "unsupported operator {op} at node {node}")
            }
            BackendError::ConversionFailure(m) => write!(f, "model conversion failed: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A compiled, executable plan.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    pub model_name: String,
    pub flavor: BackendFlavor,
    pub platform: Platform,
    pub config: SessionConfig,
    pub layers: Vec<BackendLayer>,
}

fn check_support(g: &Graph, platform: &Platform, cfg: &SessionConfig) -> Result<(), BackendError> {
    if platform.family == HwFamily::IntelNpu {
        // the paper: "only a small portion of models were able to
        // successfully perform inference" on the NPU
        for n in &g.nodes {
            let bad = matches!(
                n.op,
                OpKind::Erf
                    | OpKind::Gather
                    | OpKind::Range
                    | OpKind::GroupNormalization
                    | OpKind::Softmax
                    | OpKind::LayerNormalization
            ) || (n.op == OpKind::Transpose && g.tensor(n.inputs[0]).shape.rank() > 4);
            if bad {
                return Err(BackendError::UnsupportedOp {
                    op: n.op.to_string(),
                    node: n.name.clone(),
                });
            }
        }
    }
    // paper footnote 5: TensorRT fails converting the SD UNet to int8
    if cfg.precision == DType::I8 && g.name.contains("sd-unet") {
        return Err(BackendError::ConversionFailure(
            "int8 calibration of sd-unet fails (paper footnote 5)".into(),
        ));
    }
    Ok(())
}

/// TRT-style display name for a group: member names joined with " + ".
fn trt_group_name(g: &Graph, grp: &RtGroup) -> String {
    let names: Vec<&str> = grp
        .members
        .iter()
        .filter(|&&m| !g.node(m).op.is_noop_at_inference())
        .map(|&m| g.node(m).name.as_str())
        .collect();
    match names.len() {
        0 => g.node(grp.members[0]).name.clone(),
        1..=4 => names.join(" + "),
        _ => format!("{} + ... + {}", names[0], names[names.len() - 1]),
    }
}

/// Compile `g` for `platform` under `flavor`.
pub fn compile(
    g: &Graph,
    flavor: BackendFlavor,
    platform: &Platform,
    cfg: &SessionConfig,
) -> Result<CompiledModel, BackendError> {
    check_support(g, platform, cfg)?;
    let groups = fuse(g, &flavor.policy());
    let lowerer = Lowerer::new(g, platform, cfg.precision);
    let mut layers: Vec<BackendLayer> = Vec::with_capacity(groups.len() + 2);
    let mut myelin_count = 0usize;

    // runtime-inserted input conversion layers (reformat / layout reorder)
    let reorder_tag = match flavor {
        BackendFlavor::TrtLike => "Reformatting CopyNode for Input Tensor",
        BackendFlavor::OrtLike => "reorder",
        BackendFlavor::OvLike => "Convert",
    };
    let needs_input_reorder = match flavor {
        BackendFlavor::TrtLike => cfg.precision != DType::F32,
        BackendFlavor::OrtLike => g.nodes.iter().any(|n| n.op == OpKind::Conv),
        BackendFlavor::OvLike => true,
    };
    if needs_input_reorder {
        for (i, &inp) in g.inputs.iter().enumerate() {
            let t = g.tensor(inp);
            if t.dtype.is_int() {
                continue; // index inputs are not reformatted
            }
            let bytes = t.size_bytes_at(cfg.precision);
            let kernel = Kernel {
                name: format!("{}_{i}", reorder_tag.replace(' ', "_")),
                class: KernelClass::Reorder,
                cost: KernelCost {
                    hw_flops: 0,
                    dram_read_bytes: bytes,
                    dram_write_bytes: bytes,
                    tensor_core: false,
                    mma_instrs: 0,
                },
                out_elems: t.numel(),
            };
            let timing = kernel_timing(&kernel, platform, cfg.precision);
            layers.push(BackendLayer {
                name: format!("{reorder_tag} {i} to {}", t.name),
                hint: LayerHint::Reorder {
                    input_tensor: t.name.clone(),
                    output_tensor: format!("{}_r", t.name),
                },
                kernels: vec![kernel],
                base_latency_us: timing.latency_us,
                timing,
                is_reorder: true,
                truth: Vec::new(),
            });
        }
    }

    for grp in &groups {
        let Some(kernel) = lowerer.lower_group(grp, layers.len()) else {
            // eliminated: still carried as a zero-latency layer so the truth
            // partition stays total, but the profiler will not report it
            layers.push(BackendLayer {
                name: format!("(removed) {}", g.node(grp.members[0]).name),
                hint: LayerHint::FusedNameString(String::new()),
                kernels: Vec::new(),
                base_latency_us: 0.0,
                timing: KernelTiming {
                    latency_us: 0.0,
                    compute_us: 0.0,
                    memory_us: 0.0,
                },
                is_reorder: false,
                truth: grp.members.clone(),
            });
            continue;
        };
        let timing = kernel_timing(&kernel, platform, cfg.precision);
        let (name, hint) = match flavor {
            BackendFlavor::TrtLike => {
                if grp.kind == GroupKind::AttentionRegion {
                    let (ins, outs) = lowerer.group_io(grp);
                    let name = format!("{{ForeignNode[myelin_subgraph_{myelin_count}]}}");
                    myelin_count += 1;
                    (
                        name,
                        LayerHint::OpaqueIo {
                            inputs: ins.iter().map(|&t| g.tensor(t).name.clone()).collect(),
                            outputs: outs.iter().map(|&t| g.tensor(t).name.clone()).collect(),
                        },
                    )
                } else {
                    let n = trt_group_name(g, grp);
                    (n.clone(), LayerHint::FusedNameString(n))
                }
            }
            BackendFlavor::OrtLike => {
                let primary = g.node(grp.primary(g));
                (
                    format!("Fused{}_{}", primary.op, primary.name),
                    LayerHint::NodeNames(
                        grp.members
                            .iter()
                            .map(|&m| g.node(m).name.clone())
                            .collect(),
                    ),
                )
            }
            BackendFlavor::OvLike => {
                let primary = g.node(grp.primary(g));
                (
                    primary.name.clone(),
                    LayerHint::PrimaryOp {
                        node_name: primary.name.clone(),
                        exec_type: kernel.name.clone(),
                    },
                )
            }
        };
        layers.push(BackendLayer {
            name,
            hint,
            kernels: vec![kernel],
            base_latency_us: timing.latency_us,
            timing,
            is_reorder: false,
            truth: grp.members.clone(),
        });
    }

    Ok(CompiledModel {
        model_name: g.name.clone(),
        flavor,
        platform: platform.clone(),
        config: *cfg,
        layers,
    })
}

impl CompiledModel {
    /// Deterministic end-to-end base latency (µs, no noise).
    pub fn base_latency_us(&self) -> f64 {
        self.layers.iter().map(|l| l.base_latency_us).sum()
    }

    /// What the runtime's built-in profiler reports: per-layer average
    /// latency over `config.iterations` noisy runs, plus the fusion hint.
    /// Eliminated layers are invisible, exactly like in real runtimes.
    pub fn builtin_profile(&self) -> Vec<LayerProfile> {
        self.profile_stats()
            .into_iter()
            .map(|s| LayerProfile {
                name: s.name,
                avg_latency_us: s.mean_us,
                hint: s.hint,
            })
            .collect()
    }

    /// Full per-layer latency statistics over `config.iterations` runs,
    /// with the first `warmup` iterations (JIT/caches heating up — the
    /// simulator charges them 1.5× noise-free latency) discarded. Real
    /// profiling methodology: report p50/p99 alongside the mean.
    pub fn profile_stats(&self) -> Vec<LayerStats> {
        let warmup = (self.config.iterations / 10).min(3);
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        self.layers
            .iter()
            .filter(|l| !l.kernels.is_empty())
            .map(|l| {
                let mut samples = Vec::with_capacity(self.config.iterations as usize);
                for i in 0..self.config.iterations {
                    let noise: f64 = 1.0 + 0.01 * (rng.gen::<f64>() - 0.5) * 2.0;
                    let cold = if i < warmup { 1.5 } else { 1.0 };
                    samples.push(l.base_latency_us * noise * cold);
                }
                let hot = &mut samples[warmup as usize..];
                hot.sort_by(|a, b| a.total_cmp(b));
                let n = hot.len().max(1);
                let pct = |q: f64| hot[((n - 1) as f64 * q).round() as usize];
                LayerStats {
                    name: l.name.clone(),
                    hint: l.hint.clone(),
                    mean_us: hot.iter().sum::<f64>() / n as f64,
                    p50_us: pct(0.50),
                    p99_us: pct(0.99),
                    min_us: hot.first().copied().unwrap_or(0.0),
                    max_us: hot.last().copied().unwrap_or(0.0),
                    samples: n as u32,
                }
            })
            .collect()
    }

    /// Average end-to-end latency in milliseconds (profiled).
    pub fn end_to_end_latency_ms(&self) -> f64 {
        self.builtin_profile()
            .iter()
            .map(|l| l.avg_latency_us)
            .sum::<f64>()
            / 1e3
    }

    /// Busy fractions (drives the Jetson power model).
    pub fn utilization(&self) -> Utilization {
        let timings: Vec<KernelTiming> = self
            .layers
            .iter()
            .filter(|l| !l.kernels.is_empty())
            .map(|l| l.timing)
            .collect();
        aggregate_utilization(&timings)
    }

    /// The kernel trace a Nsight-Systems-like tool would show: kernels in
    /// execution order, correlated to backend layers.
    pub fn kernel_trace(&self) -> Vec<KernelRecord> {
        let mut out = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            for k in &l.kernels {
                out.push(KernelRecord {
                    kernel: k.clone(),
                    layer_index: i,
                    latency_us: l.base_latency_us / l.kernels.len() as f64,
                });
            }
        }
        out
    }

    /// Total Hardware FLOPs / DRAM bytes over the plan (counter-side truth).
    pub fn hw_totals(&self) -> (u64, u64) {
        let mut flops = 0u64;
        let mut bytes = 0u64;
        for l in &self.layers {
            for k in &l.kernels {
                flops += k.cost.hw_flops;
                bytes += k.cost.dram_bytes();
            }
        }
        (flops, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_models::ModelId;

    fn a100() -> Platform {
        PlatformId::A100.spec()
    }

    #[test]
    fn resnet_compiles_and_profiles_deterministically() {
        let g = ModelId::ResNet50.build(8);
        let cfg = SessionConfig::new(DType::F16);
        let m = compile(&g, BackendFlavor::TrtLike, &a100(), &cfg).unwrap();
        let p1 = m.builtin_profile();
        let p2 = m.builtin_profile();
        assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.avg_latency_us, b.avg_latency_us, "determinism");
        }
        assert!(m.end_to_end_latency_ms() > 0.0);
    }

    #[test]
    fn truth_partition_covers_every_node_once() {
        let g = ModelId::MobileNetV2x10.build(1);
        let m = compile(
            &g,
            BackendFlavor::OrtLike,
            &a100(),
            &SessionConfig::default(),
        )
        .unwrap();
        let mut seen = vec![false; g.nodes.len()];
        for l in &m.layers {
            for &n in l.truth_members() {
                assert!(!seen[n as usize]);
                seen[n as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn trt_names_join_members_and_myelin_is_opaque() {
        let g = ModelId::ViTTiny.build(1);
        let m = compile(
            &g,
            BackendFlavor::TrtLike,
            &a100(),
            &SessionConfig::default(),
        )
        .unwrap();
        let profile = m.builtin_profile();
        assert!(profile.iter().any(|l| l.name.contains(" + ")));
        let myelin: Vec<_> = profile
            .iter()
            .filter(|l| l.name.contains("myelin_subgraph"))
            .collect();
        assert_eq!(myelin.len(), 12);
        for l in &myelin {
            assert!(matches!(l.hint, LayerHint::OpaqueIo { .. }));
        }
    }

    #[test]
    fn ort_reveals_node_names_and_inserts_reorders() {
        let g = ModelId::ResNet50.build(1);
        let m = compile(
            &g,
            BackendFlavor::OrtLike,
            &a100(),
            &SessionConfig::default(),
        )
        .unwrap();
        let profile = m.builtin_profile();
        assert!(profile
            .iter()
            .any(|l| matches!(&l.hint, LayerHint::Reorder { .. })));
        assert!(profile
            .iter()
            .any(|l| matches!(&l.hint, LayerHint::NodeNames(ns) if ns.len() > 1)));
    }

    #[test]
    fn npu_rejects_transformers_but_accepts_cnns() {
        let npu = PlatformId::Npu3720.spec();
        let cfg = SessionConfig::new(DType::F16);
        let vit = ModelId::ViTTiny.build(1);
        assert!(compile(&vit, BackendFlavor::OvLike, &npu, &cfg).is_err());
        let shuffle = ModelId::ShuffleNetV2x10.build(1); // 5-D transpose
        assert!(compile(&shuffle, BackendFlavor::OvLike, &npu, &cfg).is_err());
        let resnet = ModelId::ResNet50.build(1);
        assert!(compile(&resnet, BackendFlavor::OvLike, &npu, &cfg).is_ok());
    }

    #[test]
    fn sd_unet_int8_conversion_fails_like_the_paper_footnote() {
        let g = ModelId::StableDiffusionUnet.build(1);
        let cfg = SessionConfig::new(DType::I8);
        let err = compile(&g, BackendFlavor::TrtLike, &a100(), &cfg).unwrap_err();
        assert!(matches!(err, BackendError::ConversionFailure(_)));
    }

    #[test]
    fn batch_scaling_increases_throughput() {
        let cfg = SessionConfig::new(DType::F16);
        let m1 = compile(
            &ModelId::ResNet50.build(1),
            BackendFlavor::TrtLike,
            &a100(),
            &cfg,
        )
        .unwrap();
        let m128 = compile(
            &ModelId::ResNet50.build(128),
            BackendFlavor::TrtLike,
            &a100(),
            &cfg,
        )
        .unwrap();
        let thr1 = 1.0 / m1.end_to_end_latency_ms();
        let thr128 = 128.0 / m128.end_to_end_latency_ms();
        assert!(thr128 > 5.0 * thr1, "batch should amortize overheads");
    }

    #[test]
    fn utilization_is_sane() {
        let g = ModelId::ResNet50.build(64);
        let m = compile(
            &g,
            BackendFlavor::TrtLike,
            &a100(),
            &SessionConfig::default(),
        )
        .unwrap();
        let u = m.utilization();
        assert!(u.gpu > 0.0 && u.gpu <= 1.0);
        assert!(u.mem > 0.0 && u.mem <= 1.0);
    }

    #[test]
    fn reclocking_slows_execution() {
        let orin = PlatformId::OrinNx.spec();
        let slow = orin.with_clocks(proof_hw::ClockConfig::new(510, 665));
        let g = ModelId::EfficientNetV2T.build(16);
        let cfg = SessionConfig::new(DType::F16);
        let fast_ms = compile(&g, BackendFlavor::TrtLike, &orin, &cfg)
            .unwrap()
            .end_to_end_latency_ms();
        let slow_ms = compile(&g, BackendFlavor::TrtLike, &slow, &cfg)
            .unwrap()
            .end_to_end_latency_ms();
        assert!(slow_ms > 1.5 * fast_ms, "{slow_ms} vs {fast_ms}");
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    #[test]
    fn stats_have_ordered_percentiles_and_discard_warmup() {
        let g = ModelId::MobileNetV2x05.build(2);
        let m = compile(
            &g,
            BackendFlavor::TrtLike,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16).with_iterations(50),
        )
        .unwrap();
        for s in m.profile_stats() {
            assert!(s.min_us <= s.p50_us);
            assert!(s.p50_us <= s.p99_us);
            assert!(s.p99_us <= s.max_us);
            assert!(s.samples >= 47, "warmup discarded but most samples kept");
            // cold 1.5x iterations were discarded: max stays within noise
            assert!(s.max_us < s.p50_us * 1.05);
        }
    }

    #[test]
    fn builtin_profile_mean_matches_stats_mean() {
        let g = ModelId::MobileNetV2x05.build(2);
        let m = compile(
            &g,
            BackendFlavor::TrtLike,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16),
        )
        .unwrap();
        let a = m.builtin_profile();
        let b = m.profile_stats();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.avg_latency_us, y.mean_us);
        }
    }
}
