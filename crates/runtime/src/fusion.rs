//! Graph optimization: operator fusion as DNN runtimes perform it.
//!
//! Backends differ in aggressiveness ([`FusionPolicy`] presets): the
//! TensorRT-like backend fuses conv/gemm epilogues, LayerNorm and GELU
//! decompositions, elementwise chains, and whole attention regions (its
//! *Myelin* analogue); the ONNX-Runtime-like backend fuses epilogues and
//! norm/GELU patterns; the OpenVINO-like backend fuses conv epilogues only.

use proof_ir::{Graph, NodeId, OpKind, TensorId, TensorKind};
use std::collections::HashMap;

/// What a fused group lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// Convolution plus fused epilogue.
    ConvBlock,
    /// Gemm/MatMul plus fused epilogue.
    GemmBlock,
    /// Opaque fused attention region (the Myelin analogue).
    AttentionRegion,
    /// A recognized LayerNorm decomposition collapsed to one kernel.
    LayerNormFused,
    /// A chain of pointwise ops executed as one kernel.
    ElementwiseChain,
    /// A single un-fused operator.
    Single,
    /// View/metadata nodes that produce no kernel at all.
    Eliminated,
}

/// One backend layer before lowering: the original nodes it executes.
#[derive(Debug, Clone, PartialEq)]
pub struct RtGroup {
    pub members: Vec<NodeId>,
    pub kind: GroupKind,
}

impl RtGroup {
    /// The "primary" node: the contraction if present, else the first
    /// non-metadata member, else the first member. Backends name layers
    /// after it.
    pub fn primary(&self, g: &Graph) -> NodeId {
        self.members
            .iter()
            .copied()
            .find(|&m| matches!(g.node(m).op, OpKind::Conv | OpKind::Gemm | OpKind::MatMul))
            .or_else(|| {
                self.members
                    .iter()
                    .copied()
                    .find(|&m| !g.node(m).op.is_noop_at_inference())
            })
            .unwrap_or(self.members[0])
    }
}

/// Which fusions a backend performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionPolicy {
    pub fuse_conv_epilogue: bool,
    /// Absorb a single-consumer pointwise *producer* into a following conv
    /// (TensorRT's pointwise-prologue fusion — catches the SE-block `Mul`).
    pub fuse_conv_prologue: bool,
    pub fuse_gemm_epilogue: bool,
    pub fuse_layernorm: bool,
    pub fuse_gelu: bool,
    pub fuse_attention_region: bool,
    pub fuse_elementwise_chains: bool,
    pub eliminate_noops: bool,
}

impl FusionPolicy {
    /// TensorRT-like: everything on.
    pub fn trt() -> Self {
        FusionPolicy {
            fuse_conv_epilogue: true,
            fuse_conv_prologue: true,
            fuse_gemm_epilogue: true,
            fuse_layernorm: true,
            fuse_gelu: true,
            fuse_attention_region: true,
            fuse_elementwise_chains: true,
            eliminate_noops: true,
        }
    }

    /// ONNX-Runtime-like: epilogues + patterns, no opaque regions.
    pub fn ort() -> Self {
        FusionPolicy {
            fuse_conv_prologue: false,
            fuse_conv_epilogue: true,
            fuse_gemm_epilogue: true,
            fuse_layernorm: true,
            fuse_gelu: true,
            fuse_attention_region: false,
            fuse_elementwise_chains: false,
            eliminate_noops: true,
        }
    }

    /// OpenVINO-like: conv epilogues only.
    pub fn ov() -> Self {
        FusionPolicy {
            fuse_conv_prologue: false,
            fuse_conv_epilogue: true,
            fuse_gemm_epilogue: true,
            fuse_layernorm: false,
            fuse_gelu: false,
            fuse_attention_region: false,
            fuse_elementwise_chains: false,
            eliminate_noops: true,
        }
    }

    /// No fusion at all (the ablation baseline).
    pub fn none() -> Self {
        FusionPolicy {
            fuse_conv_prologue: false,
            fuse_conv_epilogue: false,
            fuse_gemm_epilogue: false,
            fuse_layernorm: false,
            fuse_gelu: false,
            fuse_attention_region: false,
            fuse_elementwise_chains: false,
            eliminate_noops: true,
        }
    }
}

struct Fuser<'g> {
    g: &'g Graph,
    producers: HashMap<TensorId, NodeId>,
    consumers: HashMap<TensorId, Vec<NodeId>>,
    assigned: Vec<bool>,
}

impl<'g> Fuser<'g> {
    fn new(g: &'g Graph) -> Self {
        Fuser {
            producers: g.producers(),
            consumers: g.consumers(),
            assigned: vec![false; g.nodes.len()],
            g,
        }
    }

    fn free(&self, n: NodeId) -> bool {
        !self.assigned[n as usize]
    }

    fn claim(&mut self, members: &[NodeId]) {
        for &m in members {
            debug_assert!(!self.assigned[m as usize]);
            self.assigned[m as usize] = true;
        }
    }

    fn sole_consumer(&self, t: TensorId) -> Option<NodeId> {
        match self.consumers.get(&t) {
            Some(cs) if cs.len() == 1 => Some(cs[0]),
            _ => None,
        }
    }

    fn is_weight(&self, t: TensorId) -> bool {
        self.g.tensor(t).kind == TensorKind::Weight
    }

    /// Match the 5-node exported-GELU chain starting at `div`:
    /// `Div(x, c) → Erf → Add(·, c) → Mul(x, ·) → Mul(·, c)`.
    fn match_gelu(&self, div: NodeId) -> Option<[NodeId; 5]> {
        let g = self.g;
        let dn = g.node(div);
        if dn.op != OpKind::Div || !self.is_weight(*dn.inputs.get(1)?) {
            return None;
        }
        let x = dn.inputs[0];
        let erf = self.sole_consumer(dn.output())?;
        if g.node(erf).op != OpKind::Erf {
            return None;
        }
        let add = self.sole_consumer(g.node(erf).output())?;
        if g.node(add).op != OpKind::Add {
            return None;
        }
        let mul1 = self.sole_consumer(g.node(add).output())?;
        let m1 = g.node(mul1);
        if m1.op != OpKind::Mul || !m1.inputs.contains(&x) {
            return None;
        }
        let mul2 = self.sole_consumer(m1.output())?;
        if g.node(mul2).op != OpKind::Mul {
            return None;
        }
        let all = [div, erf, add, mul1, mul2];
        all.iter().all(|&n| self.free(n)).then_some(all)
    }

    /// Match the 9-node exported-LayerNorm chain rooted at `rm`
    /// (`ReduceMean` of the input).
    fn match_layernorm(&self, rm: NodeId) -> Option<[NodeId; 9]> {
        let g = self.g;
        if g.node(rm).op != OpKind::ReduceMean {
            return None;
        }
        let x = g.node(rm).inputs[0];
        let sub = self.consumers.get(&x)?.iter().copied().find(|&n| {
            let nd = g.node(n);
            nd.op == OpKind::Sub && nd.inputs == vec![x, g.node(rm).output()]
        })?;
        // sub feeds Pow and (later) Div
        let subout = g.node(sub).output();
        let pow = self
            .consumers
            .get(&subout)?
            .iter()
            .copied()
            .find(|&n| g.node(n).op == OpKind::Pow)?;
        let rm2 = self.sole_consumer(g.node(pow).output())?;
        if g.node(rm2).op != OpKind::ReduceMean {
            return None;
        }
        let add_eps = self.sole_consumer(g.node(rm2).output())?;
        if g.node(add_eps).op != OpKind::Add {
            return None;
        }
        let sqrt = self.sole_consumer(g.node(add_eps).output())?;
        if g.node(sqrt).op != OpKind::Sqrt {
            return None;
        }
        let div = self.sole_consumer(g.node(sqrt).output())?;
        let dn = g.node(div);
        if dn.op != OpKind::Div || dn.inputs[0] != subout {
            return None;
        }
        let mul = self.sole_consumer(dn.output())?;
        if g.node(mul).op != OpKind::Mul {
            return None;
        }
        let add_b = self.sole_consumer(g.node(mul).output())?;
        if g.node(add_b).op != OpKind::Add {
            return None;
        }
        let all = [rm, sub, pow, rm2, add_eps, sqrt, div, mul, add_b];
        all.iter().all(|&n| self.free(n)).then_some(all)
    }

    /// Collect the Myelin-style attention region around a `Softmax`:
    /// q/k/v head-split views, QKᵀ, scale/bias, softmax, AV, head-merge.
    fn match_attention_region(&self, softmax: NodeId) -> Option<Vec<NodeId>> {
        let g = self.g;
        if g.node(softmax).op != OpKind::Softmax {
            return None;
        }
        let mut members = vec![softmax];
        // upstream: Mul/Add chain down to the scores MatMul
        let mut cur = g.node(softmax).inputs[0];
        let scores = loop {
            let p = *self.producers.get(&cur)?;
            match g.node(p).op {
                OpKind::Mul | OpKind::Add => {
                    members.push(p);
                    // continue along the non-weight operand
                    let nd = g.node(p);
                    cur = if self.is_weight(nd.inputs[0]) {
                        nd.inputs[1]
                    } else {
                        nd.inputs[0]
                    };
                }
                OpKind::MatMul => {
                    members.push(p);
                    break p;
                }
                _ => return None,
            }
        };
        // view chains feeding the scores MatMul (q, k head splits)
        for &inp in &g.node(scores).inputs {
            self.collect_view_chain_up(inp, &mut members);
        }
        // downstream: softmax → AV MatMul
        let av = self.sole_consumer(g.node(softmax).output())?;
        if g.node(av).op != OpKind::MatMul {
            return None;
        }
        members.push(av);
        for &inp in &g.node(av).inputs {
            if *self.producers.get(&inp)? == softmax {
                continue;
            }
            self.collect_view_chain_up(inp, &mut members);
        }
        // head merge: forward Transpose/Reshape chain
        let mut out = g.node(av).output();
        while let Some(next) = self.sole_consumer(out) {
            match g.node(next).op {
                OpKind::Transpose | OpKind::Reshape => {
                    members.push(next);
                    out = g.node(next).output();
                }
                _ => break,
            }
        }
        members.sort_unstable();
        members.dedup();
        members.iter().all(|&n| self.free(n)).then_some(members)
    }

    /// Walk producers upward through Transpose/Reshape views, collecting.
    fn collect_view_chain_up(&self, mut t: TensorId, members: &mut Vec<NodeId>) {
        while let Some(&p) = self.producers.get(&t) {
            match self.g.node(p).op {
                OpKind::Transpose | OpKind::Reshape => {
                    members.push(p);
                    t = self.g.node(p).inputs[0];
                }
                _ => break,
            }
        }
    }

    /// Greedy epilogue expansion from a contraction node. Absorbs no-op
    /// views, unary activations, SiLU pairs, GELU patterns, and binary
    /// pointwise ops (bias/residual adds), following sole consumers.
    fn expand_epilogue(&self, root: NodeId, fuse_gelu: bool, limit: usize) -> Vec<NodeId> {
        let g = self.g;
        let mut members = vec![root];
        let mut cur = g.node(root).output();
        while members.len() < limit {
            let Some(next) = self.sole_consumer(cur) else {
                // SiLU and GELU fork from `cur` (e.g. Mul(x, σ(x))): handle
                // the exact two-consumer diamonds before giving up
                let Some(cs) = self.consumers.get(&cur) else {
                    break;
                };
                if cs.len() == 2 && cs.iter().all(|&c| self.free(c)) {
                    // SiLU diamond: {Sigmoid s, Mul m} with m = Mul(cur, s)
                    let silu = cs.iter().copied().find_map(|s| {
                        let sn = g.node(s);
                        if sn.op != OpKind::Sigmoid {
                            return None;
                        }
                        let m = self.sole_consumer(sn.output())?;
                        (cs.contains(&m)
                            && g.node(m).op == OpKind::Mul
                            && g.node(m).inputs.contains(&cur))
                        .then_some((s, m))
                    });
                    if let Some((s, m)) = silu {
                        members.push(s);
                        members.push(m);
                        cur = g.node(m).output();
                        continue;
                    }
                    // GELU diamond: {Div d, Mul m} where d roots the pattern
                    // and the pattern's Mul(x, ·) is m
                    if fuse_gelu {
                        let gelu = cs
                            .iter()
                            .copied()
                            .find_map(|d| self.match_gelu(d).filter(|p| cs.contains(&p[3])));
                        if let Some(p) = gelu {
                            members.extend_from_slice(&p);
                            cur = g.node(p[4]).output();
                            continue;
                        }
                    }
                }
                break;
            };
            if !self.free(next) {
                break;
            }
            let nd = g.node(next);
            let absorbed = match nd.op {
                _ if nd.op.is_noop_at_inference() => {
                    members.push(next);
                    true
                }
                OpKind::Sigmoid => {
                    // SiLU: Sigmoid + Mul(x, σ(x))
                    match self.sole_consumer(nd.output()) {
                        Some(mul)
                            if self.free(mul)
                                && g.node(mul).op == OpKind::Mul
                                && g.node(mul).inputs.contains(&cur) =>
                        {
                            members.push(next);
                            members.push(mul);
                            cur = g.node(mul).output();
                            continue;
                        }
                        _ => false,
                    }
                }
                OpKind::Div if fuse_gelu => match self.match_gelu(next) {
                    Some(gelu) => {
                        members.extend_from_slice(&gelu);
                        cur = g.node(gelu[4]).output();
                        continue;
                    }
                    None => false,
                },
                _ if nd.op.is_unary_elementwise() => {
                    members.push(next);
                    true
                }
                OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
                    // bias or residual: the other operand must already exist
                    // (always true in topo order) and not itself be fused away
                    members.push(next);
                    true
                }
                _ => false,
            };
            if !absorbed {
                break;
            }
            cur = g.node(*members.last().unwrap()).output();
        }
        members
    }
}

/// Run fusion under a policy. Returns groups covering **every** node exactly
/// once, ordered topologically by first member.
pub fn fuse(g: &Graph, policy: &FusionPolicy) -> Vec<RtGroup> {
    let mut f = Fuser::new(g);
    let mut groups: Vec<RtGroup> = Vec::new();

    // 1. opaque attention regions (most specific first)
    if policy.fuse_attention_region {
        for (id, n) in g.iter_nodes() {
            if n.op == OpKind::Softmax && f.free(id) {
                if let Some(members) = f.match_attention_region(id) {
                    f.claim(&members);
                    groups.push(RtGroup {
                        members,
                        kind: GroupKind::AttentionRegion,
                    });
                }
            }
        }
    }

    // 2. LayerNorm decompositions
    if policy.fuse_layernorm {
        for (id, n) in g.iter_nodes() {
            if n.op == OpKind::ReduceMean && f.free(id) {
                if let Some(members) = f.match_layernorm(id) {
                    f.claim(&members);
                    groups.push(RtGroup {
                        members: members.to_vec(),
                        kind: GroupKind::LayerNormFused,
                    });
                }
            }
        }
    }

    // 3. conv / gemm epilogues
    for (id, n) in g.iter_nodes() {
        if !f.free(id) {
            continue;
        }
        let (is_conv, is_gemm) = (
            n.op == OpKind::Conv,
            matches!(n.op, OpKind::Gemm | OpKind::MatMul),
        );
        if (is_conv && policy.fuse_conv_epilogue) || (is_gemm && policy.fuse_gemm_epilogue) {
            let mut members = f.expand_epilogue(id, policy.fuse_gelu, 12);
            if is_conv && policy.fuse_conv_prologue {
                // absorb a chain of free, single-consumer elementwise
                // producers feeding the conv's data input
                let mut cur = g.node(id).inputs[0];
                for _ in 0..3 {
                    let Some(&p) = f.producers.get(&cur) else {
                        break;
                    };
                    let pn = g.node(p);
                    // the producer must be free, pointwise, and feed only us
                    if !f.free(p)
                        || !pn.op.is_elementwise()
                        || f.sole_consumer(pn.output()).is_none()
                    {
                        break;
                    }
                    members.push(p);
                    cur = pn.inputs[0];
                }
                members.sort_unstable();
            }
            f.claim(&members);
            groups.push(RtGroup {
                members,
                kind: if is_conv {
                    GroupKind::ConvBlock
                } else {
                    GroupKind::GemmBlock
                },
            });
        } else if is_conv || is_gemm {
            f.claim(&[id]);
            groups.push(RtGroup {
                members: vec![id],
                kind: GroupKind::Single,
            });
        }
    }

    // 4. standalone GELU patterns (transformers without gemm fusion)
    if policy.fuse_gelu {
        for (id, n) in g.iter_nodes() {
            if n.op == OpKind::Div && f.free(id) {
                if let Some(members) = f.match_gelu(id) {
                    f.claim(&members);
                    groups.push(RtGroup {
                        members: members.to_vec(),
                        kind: GroupKind::ElementwiseChain,
                    });
                }
            }
        }
    }

    // 5. elementwise chains
    if policy.fuse_elementwise_chains {
        for (id, n) in g.iter_nodes() {
            if !f.free(id) || !n.op.is_elementwise() {
                continue;
            }
            let mut members = vec![id];
            let mut cur = n.output();
            while let Some(next) = f.sole_consumer(cur) {
                if !f.free(next) || !g.node(next).op.is_elementwise() || members.len() >= 8 {
                    break;
                }
                members.push(next);
                cur = g.node(next).output();
            }
            f.claim(&members);
            let kind = if members.len() > 1 {
                GroupKind::ElementwiseChain
            } else {
                GroupKind::Single
            };
            groups.push(RtGroup { members, kind });
        }
    }

    // 6. leftovers: no-ops become zero-kernel groups, others singletons
    for (id, n) in g.iter_nodes() {
        if !f.free(id) {
            continue;
        }
        f.claim(&[id]);
        let kind = if policy.eliminate_noops && n.op.is_noop_at_inference() {
            GroupKind::Eliminated
        } else {
            GroupKind::Single
        };
        groups.push(RtGroup {
            members: vec![id],
            kind,
        });
    }

    groups.sort_by_key(|grp| grp.members[0]);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::{DType, GraphBuilder};

    fn coverage_ok(g: &Graph, groups: &[RtGroup]) {
        let mut seen = vec![false; g.nodes.len()];
        for grp in groups {
            for &m in &grp.members {
                assert!(!seen[m as usize], "node {m} in two groups");
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "uncovered nodes");
    }

    #[test]
    fn conv_bn_relu_add_fuses_into_one_block() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, true);
        let r = b.relu("relu", c);
        let a = b.add("res", r, x);
        let r2 = b.relu("relu2", a);
        b.output(r2);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::trt());
        coverage_ok(&g, &groups);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].kind, GroupKind::ConvBlock);
        assert_eq!(groups[0].members.len(), 4);
    }

    #[test]
    fn silu_pair_is_absorbed_into_conv() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, true);
        let s = b.silu("act", c);
        b.output(s);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::trt());
        coverage_ok(&g, &groups);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 3);
    }

    #[test]
    fn layernorm_pattern_collapses_to_one_group() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 16, 64], DType::F32);
        let y = b.layer_norm_decomposed("ln", x);
        b.output(y);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::trt());
        coverage_ok(&g, &groups);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].kind, GroupKind::LayerNormFused);
        assert_eq!(groups[0].members.len(), 9);
    }

    #[test]
    fn gelu_fuses_into_preceding_linear() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 16, 64], DType::F32);
        let h = b.linear("fc", x, 256, true);
        let a = b.gelu("gelu", h);
        b.output(a);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::ort());
        coverage_ok(&g, &groups);
        // MatMul + Add(bias) + 5-node gelu = 7 members, one group
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 7);
        assert_eq!(groups[0].kind, GroupKind::GemmBlock);
    }

    #[test]
    fn attention_region_is_detected_in_vit_block() {
        let g = proof_models::vit::vit(1, proof_models::vit::ViTSize::Tiny);
        let groups = fuse(&g, &FusionPolicy::trt());
        coverage_ok(&g, &groups);
        let regions: Vec<_> = groups
            .iter()
            .filter(|grp| grp.kind == GroupKind::AttentionRegion)
            .collect();
        assert_eq!(regions.len(), 12, "one region per transformer block");
        // each region holds both attention matmuls + softmax + views
        for r in regions {
            assert!(r.members.len() >= 10, "{} members", r.members.len());
        }
    }

    #[test]
    fn ov_policy_keeps_patterns_unfused() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 16, 64], DType::F32);
        let y = b.layer_norm_decomposed("ln", x);
        b.output(y);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::ov());
        coverage_ok(&g, &groups);
        assert_eq!(groups.len(), 9);
    }

    #[test]
    fn noops_are_eliminated_not_lost() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 64], DType::F32);
        let r = b.reshape("rs", x, &[8, 32]);
        let y = b.relu("relu", r);
        b.output(y);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::none());
        coverage_ok(&g, &groups);
        let kinds: Vec<_> = groups.iter().map(|grp| grp.kind).collect();
        assert!(kinds.contains(&GroupKind::Eliminated));
    }

    #[test]
    fn every_zoo_cnn_is_fully_covered_under_all_policies() {
        for model in [
            proof_models::resnet::resnet50(1),
            proof_models::mobilenet::v2(1, 1.0),
            proof_models::shufflenet::v2(1, proof_models::shufflenet::Width::X10),
        ] {
            for policy in [
                FusionPolicy::trt(),
                FusionPolicy::ort(),
                FusionPolicy::ov(),
                FusionPolicy::none(),
            ] {
                coverage_ok(&model, &fuse(&model, &policy));
            }
        }
    }

    #[test]
    fn primary_prefers_contraction() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, true);
        let r = b.relu("relu", c);
        b.output(r);
        let g = b.finish();
        let groups = fuse(&g, &FusionPolicy::trt());
        assert_eq!(g.node(groups[0].primary(&g)).name, "conv");
    }
}
