//! Operator attributes (the ONNX `AttributeProto` equivalent).

use crate::dtype::DType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    Int(i64),
    Ints(Vec<i64>),
    Float(f64),
    Floats(Vec<f64>),
    Str(String),
    DType(DType),
}

/// An ordered attribute map. `BTreeMap` keeps serialization deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Attributes(pub BTreeMap<String, AttrValue>);

impl Attributes {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert, builder-style.
    pub fn with(mut self, key: &str, value: AttrValue) -> Self {
        self.0.insert(key.to_string(), value);
        self
    }

    pub fn with_int(self, key: &str, v: i64) -> Self {
        self.with(key, AttrValue::Int(v))
    }

    pub fn with_ints(self, key: &str, v: &[i64]) -> Self {
        self.with(key, AttrValue::Ints(v.to_vec()))
    }

    pub fn with_float(self, key: &str, v: f64) -> Self {
        self.with(key, AttrValue::Float(v))
    }

    pub fn with_str(self, key: &str, v: &str) -> Self {
        self.with(key, AttrValue::Str(v.to_string()))
    }

    pub fn with_dtype(self, key: &str, v: DType) -> Self {
        self.with(key, AttrValue::DType(v))
    }

    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.0.get(key)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Integer attribute; also accepts a float that is integral.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.0.get(key)? {
            AttrValue::Int(v) => Some(*v),
            AttrValue::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        self.int(key).unwrap_or(default)
    }

    pub fn ints(&self, key: &str) -> Option<&[i64]> {
        match self.0.get(key)? {
            AttrValue::Ints(v) => Some(v),
            _ => None,
        }
    }

    pub fn float(&self, key: &str) -> Option<f64> {
        match self.0.get(key)? {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn float_or(&self, key: &str, default: f64) -> f64 {
        self.float(key).unwrap_or(default)
    }

    pub fn floats(&self, key: &str) -> Option<&[f64]> {
        match self.0.get(key)? {
            AttrValue::Floats(v) => Some(v),
            _ => None,
        }
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        match self.0.get(key)? {
            AttrValue::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn dtype(&self, key: &str) -> Option<DType> {
        match self.0.get(key)? {
            AttrValue::DType(v) => Some(*v),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }
}

/// Shorthand to build an [`Attributes`] map:
/// `attrs! { "kernel_shape" => ints[3, 3], "group" => int 32 }`.
#[macro_export]
macro_rules! attrs {
    () => { $crate::attr::Attributes::new() };
    ($($key:literal => $kind:ident $v:tt),+ $(,)?) => {{
        let a = $crate::attr::Attributes::new();
        $(let a = $crate::attrs!(@one a, $key, $kind $v);)+
        a
    }};
    (@one $a:expr, $key:literal, int $v:expr) => { $a.with_int($key, $v) };
    (@one $a:expr, $key:literal, ints $v:expr) => { $a.with_ints($key, &$v) };
    (@one $a:expr, $key:literal, float $v:expr) => { $a.with_float($key, $v) };
    (@one $a:expr, $key:literal, str $v:expr) => { $a.with_str($key, $v) };
    (@one $a:expr, $key:literal, dtype $v:expr) => { $a.with_dtype($key, $v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_getters() {
        let a = Attributes::new()
            .with_int("axis", -1)
            .with_ints("pads", &[1, 1, 1, 1])
            .with_float("epsilon", 1e-5)
            .with_str("mode", "nearest")
            .with_dtype("to", DType::F16);
        assert_eq!(a.int("axis"), Some(-1));
        assert_eq!(a.ints("pads"), Some(&[1i64, 1, 1, 1][..]));
        assert_eq!(a.float("epsilon"), Some(1e-5));
        assert_eq!(a.str("mode"), Some("nearest"));
        assert_eq!(a.dtype("to"), Some(DType::F16));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn defaults_and_missing_keys() {
        let a = Attributes::new();
        assert_eq!(a.int("missing"), None);
        assert_eq!(a.int_or("group", 1), 1);
        assert_eq!(a.float_or("alpha", 0.2), 0.2);
        assert!(a.is_empty());
    }

    #[test]
    fn wrong_type_returns_none() {
        let a = Attributes::new().with_str("axis", "nope");
        assert_eq!(a.int("axis"), None);
        assert_eq!(a.ints("axis"), None);
    }

    #[test]
    fn int_accepts_integral_float() {
        let a = Attributes::new().with_float("k", 3.0);
        assert_eq!(a.int("k"), Some(3));
        let b = Attributes::new().with_float("k", 3.5);
        assert_eq!(b.int("k"), None);
    }

    #[test]
    fn attrs_macro() {
        let a = attrs! {
            "kernel_shape" => ints[3, 3],
            "group" => int 32,
            "mode" => str "linear",
        };
        assert_eq!(a.ints("kernel_shape"), Some(&[3i64, 3][..]));
        assert_eq!(a.int("group"), Some(32));
        assert_eq!(a.str("mode"), Some("linear"));
    }
}
