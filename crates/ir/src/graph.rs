//! The compute graph.

use crate::{DType, Node, OpKind, Shape, TensorInfo, TensorKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a tensor in [`Graph::tensors`].
pub type TensorId = u32;
/// Index of a node in [`Graph::nodes`].
pub type NodeId = u32;

/// Structural validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    DanglingTensor { node: String, tensor: TensorId },
    MultipleProducers { tensor: String },
    MissingProducer { tensor: String },
    NotTopologicallyOrdered { node: String, tensor: String },
    DuplicateNodeName { name: String },
    DuplicateTensorName { name: String },
    EmptyGraph,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DanglingTensor { node, tensor } => {
                write!(f, "node {node} references out-of-range tensor id {tensor}")
            }
            GraphError::MultipleProducers { tensor } => {
                write!(f, "tensor {tensor} has multiple producers")
            }
            GraphError::MissingProducer { tensor } => {
                write!(
                    f,
                    "activation {tensor} has no producer and is not a graph input"
                )
            }
            GraphError::NotTopologicallyOrdered { node, tensor } => {
                write!(f, "node {node} consumes {tensor} before it is produced")
            }
            GraphError::DuplicateNodeName { name } => write!(f, "duplicate node name {name}"),
            GraphError::DuplicateTensorName { name } => write!(f, "duplicate tensor name {name}"),
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DNN model: a flat list of tensors plus a topologically-ordered node list.
///
/// Graphs are immutable after construction ([`crate::GraphBuilder`] enforces
/// topological order and shape inference); analyses build side tables rather
/// than mutating the graph, mirroring how PRoof keeps the original model and
/// the *Optimized Analyze Representation* separate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub name: String,
    pub tensors: Vec<TensorInfo>,
    pub nodes: Vec<Node>,
    /// Graph input tensor ids (activations fed per inference).
    pub inputs: Vec<TensorId>,
    /// Graph output tensor ids.
    pub outputs: Vec<TensorId>,
}

impl Graph {
    /// Tensor metadata by id.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id as usize]
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total trained parameter count (sum over weight tensors).
    pub fn param_count(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(|t| t.numel())
            .sum()
    }

    /// Total weight bytes at the stored dtype.
    pub fn param_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(|t| t.size_bytes())
            .sum()
    }

    /// The batch size, read from the first graph input's leading dim.
    pub fn batch_size(&self) -> u64 {
        self.inputs
            .first()
            .and_then(|&id| self.tensor(id).shape.dims().first().copied())
            .unwrap_or(1)
    }

    /// Map: tensor id → producing node id (activations only).
    pub fn producers(&self) -> HashMap<TensorId, NodeId> {
        let mut map = HashMap::with_capacity(self.tensors.len());
        for (nid, node) in self.nodes.iter().enumerate() {
            for &out in &node.outputs {
                map.insert(out, nid as NodeId);
            }
        }
        map
    }

    /// Map: tensor id → consuming node ids, in node order.
    pub fn consumers(&self) -> HashMap<TensorId, Vec<NodeId>> {
        let mut map: HashMap<TensorId, Vec<NodeId>> = HashMap::with_capacity(self.tensors.len());
        for (nid, node) in self.nodes.iter().enumerate() {
            for &inp in &node.inputs {
                map.entry(inp).or_default().push(nid as NodeId);
            }
        }
        map
    }

    /// Find a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| i as NodeId)
    }

    /// Find a tensor id by name.
    pub fn tensor_by_name(&self, name: &str) -> Option<TensorId> {
        self.tensors
            .iter()
            .position(|t| t.name == name)
            .map(|i| i as TensorId)
    }

    /// Count nodes per [`OpKind`], for model inventory reports.
    pub fn op_histogram(&self) -> HashMap<OpKind, usize> {
        let mut h = HashMap::new();
        for n in &self.nodes {
            *h.entry(n.op).or_insert(0) += 1;
        }
        h
    }

    /// Structural validation: id ranges, unique names, single producers,
    /// topological order of the node list.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let ntensors = self.tensors.len() as u32;
        let mut names = std::collections::HashSet::with_capacity(self.nodes.len());
        for n in &self.nodes {
            if !names.insert(n.name.as_str()) {
                return Err(GraphError::DuplicateNodeName {
                    name: n.name.clone(),
                });
            }
            for &t in n.inputs.iter().chain(&n.outputs) {
                if t >= ntensors {
                    return Err(GraphError::DanglingTensor {
                        node: n.name.clone(),
                        tensor: t,
                    });
                }
            }
        }
        let mut tnames = std::collections::HashSet::with_capacity(self.tensors.len());
        for t in &self.tensors {
            if !tnames.insert(t.name.as_str()) {
                return Err(GraphError::DuplicateTensorName {
                    name: t.name.clone(),
                });
            }
        }
        // single producer + topological order in one pass
        let mut produced = vec![false; self.tensors.len()];
        for (i, t) in self.tensors.iter().enumerate() {
            if t.kind == TensorKind::Weight || self.inputs.contains(&(i as TensorId)) {
                produced[i] = true;
            }
        }
        for n in &self.nodes {
            for &inp in &n.inputs {
                if !produced[inp as usize] {
                    // distinguish "never produced" from "produced later"
                    let ever = self.nodes.iter().any(|m| m.outputs.contains(&inp));
                    let tname = self.tensor(inp).name.clone();
                    return Err(if ever {
                        GraphError::NotTopologicallyOrdered {
                            node: n.name.clone(),
                            tensor: tname,
                        }
                    } else {
                        GraphError::MissingProducer { tensor: tname }
                    });
                }
            }
            for &out in &n.outputs {
                if produced[out as usize] && !self.inputs.contains(&out) {
                    return Err(GraphError::MultipleProducers {
                        tensor: self.tensor(out).name.clone(),
                    });
                }
                produced[out as usize] = true;
            }
        }
        Ok(())
    }

    /// Serialize to the PRoof JSON model format (the repo's stand-in for
    /// ONNX protobuf).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("graph serialization cannot fail")
    }

    /// Deserialize from the PRoof JSON model format and validate.
    pub fn from_json(s: &str) -> Result<Graph, String> {
        let g: Graph = serde_json::from_str(s).map_err(|e| e.to_string())?;
        g.validate().map_err(|e| e.to_string())?;
        Ok(g)
    }

    /// Sum of all activation tensor bytes (useful for memory planning checks).
    pub fn activation_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .filter(|t| t.kind != TensorKind::Weight)
            .map(|t| t.size_bytes())
            .sum()
    }

    /// Iterate `(NodeId, &Node)` in topological (list) order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as NodeId, n))
    }
}

/// A lightweight summary row, as printed by the model-inventory report
/// (paper Table 3).
#[derive(Debug, Clone, Serialize)]
pub struct GraphSummary {
    pub name: String,
    pub nodes: usize,
    pub params_m: f64,
    pub input_shape: Shape,
    pub input_dtype: DType,
}

impl Graph {
    pub fn summary(&self) -> GraphSummary {
        let first = self.inputs.first().map(|&i| self.tensor(i));
        GraphSummary {
            name: self.name.clone(),
            nodes: self.nodes.len(),
            params_m: self.param_count() as f64 / 1e6,
            input_shape: first.map(|t| t.shape.clone()).unwrap_or_default(),
            input_dtype: first.map(|t| t.dtype).unwrap_or(DType::F32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attrs, GraphBuilder};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("x", &[1, 3, 8, 8], DType::F32);
        let y = b.conv("conv1", x, 16, 3, 1, 1, 1, true);
        let y = b.relu("relu1", y);
        b.output(y);
        b.finish()
    }

    #[test]
    fn validate_accepts_builder_output() {
        let g = tiny_graph();
        g.validate().unwrap();
        assert_eq!(g.node_count(), 2);
        // conv weight 16*3*3*3 + bias 16
        assert_eq!(g.param_count(), 16 * 3 * 3 * 3 + 16);
    }

    #[test]
    fn producers_and_consumers() {
        let g = tiny_graph();
        let p = g.producers();
        let c = g.consumers();
        let conv_out = g.nodes[0].output();
        assert_eq!(p[&conv_out], 0);
        assert_eq!(c[&conv_out], vec![1]);
    }

    #[test]
    fn json_roundtrip() {
        let g = tiny_graph();
        let s = g.to_json();
        let g2 = Graph::from_json(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn validate_rejects_duplicate_node_names() {
        let mut g = tiny_graph();
        let second = g.nodes[1].name.clone();
        g.nodes[0].name = second;
        assert!(matches!(
            g.validate(),
            Err(GraphError::DuplicateNodeName { .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_order_nodes() {
        let mut g = tiny_graph();
        g.nodes.swap(0, 1);
        assert!(matches!(
            g.validate(),
            Err(GraphError::NotTopologicallyOrdered { .. })
        ));
    }

    #[test]
    fn validate_rejects_dangling_ids() {
        let mut g = tiny_graph();
        g.nodes[1].inputs[0] = 999;
        assert!(matches!(
            g.validate(),
            Err(GraphError::DanglingTensor { .. })
        ));
    }

    #[test]
    fn batch_size_reads_leading_dim() {
        let mut b = GraphBuilder::new("b4");
        let x = b.input("x", &[4, 3, 8, 8], DType::F32);
        let y = b.relu("r", x);
        b.output(y);
        assert_eq!(b.finish().batch_size(), 4);
    }

    #[test]
    fn op_histogram_counts() {
        let g = tiny_graph();
        let h = g.op_histogram();
        assert_eq!(h[&OpKind::Conv], 1);
        assert_eq!(h[&OpKind::Relu], 1);
    }

    #[test]
    fn summary_fields() {
        let s = tiny_graph().summary();
        assert_eq!(s.nodes, 2);
        assert!(s.params_m > 0.0);
        assert_eq!(s.input_shape, Shape::new(&[1, 3, 8, 8]));
    }

    #[test]
    fn multi_output_split_graph_validates() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("x", &[1, 4, 2, 2], DType::F32);
        let parts = b.push_multi(
            "split0",
            OpKind::Split,
            attrs! {"axis" => int 1, "num_outputs" => int 2},
            &[x],
        );
        let y = b.push("add0", OpKind::Add, attrs!(), &[parts[0], parts[1]]);
        b.output(y);
        b.finish().validate().unwrap();
    }
}
