//! Concrete tensor shapes.

use serde::{Deserialize, Serialize};

/// A concrete tensor shape (row-major, dims in ONNX order, e.g. `NCHW`).
///
/// Rank-0 (scalar) shapes are allowed and have `numel() == 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// Build a shape from a dim slice.
    pub fn new(dims: &[u64]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dims as a slice.
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Total element count (1 for scalars, 0 if any dim is 0).
    pub fn numel(&self) -> u64 {
        self.0.iter().product()
    }

    /// Dimension at `axis`, supporting negative (from-the-end) indices.
    pub fn dim(&self, axis: i64) -> Option<u64> {
        let idx = self.normalize_axis(axis)?;
        self.0.get(idx).copied()
    }

    /// Resolve a possibly-negative axis into a `0..rank` index.
    pub fn normalize_axis(&self, axis: i64) -> Option<usize> {
        let r = self.rank() as i64;
        let a = if axis < 0 { axis + r } else { axis };
        if (0..r).contains(&a) {
            Some(a as usize)
        } else {
            None
        }
    }

    /// NumPy-style broadcast of two shapes; `None` when incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let r = self.rank().max(other.rank());
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let a = dim_from_end(&self.0, r - 1 - i);
            let b = dim_from_end(&other.0, r - 1 - i);
            out.push(match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => return None,
            });
        }
        Some(Shape(out))
    }

    /// Whether `self` can broadcast *to* `target` (no dim of target shrinks).
    pub fn broadcastable_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Some(b) => b == *target,
            None => false,
        }
    }
}

fn dim_from_end(dims: &[u64], back: usize) -> u64 {
    if back < dims.len() {
        dims[dims.len() - 1 - back]
    } else {
        1
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<u64>> for Shape {
    fn from(v: Vec<u64>) -> Self {
        Shape(v)
    }
}

impl From<&[u64]> for Shape {
    fn from(v: &[u64]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::new(&[5, 0, 2]).numel(), 0);
        assert_eq!(Shape::new(&[2, 3]).rank(), 2);
    }

    #[test]
    fn negative_axis_normalization() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.normalize_axis(-1), Some(2));
        assert_eq!(s.normalize_axis(-3), Some(0));
        assert_eq!(s.normalize_axis(3), None);
        assert_eq!(s.normalize_axis(-4), None);
        assert_eq!(s.dim(-1), Some(4));
    }

    #[test]
    fn broadcasting_rules() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&b), Some(Shape::new(&[4, 2, 3])));
        // scalar broadcasts with anything
        assert_eq!(Shape::scalar().broadcast(&a), Some(a.clone()));
        // incompatible
        assert_eq!(Shape::new(&[2, 3]).broadcast(&Shape::new(&[4, 3])), None);
    }

    #[test]
    fn broadcastable_to_is_directional() {
        let small = Shape::new(&[1, 3]);
        let big = Shape::new(&[5, 3]);
        assert!(small.broadcastable_to(&big));
        assert!(!big.broadcastable_to(&small));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[1, 3, 224, 224]).to_string(), "[1x3x224x224]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
