//! # proof-ir — ONNX-compatible graph IR
//!
//! The intermediate representation PRoof analyses. It mirrors the subset of
//! ONNX that the paper's 20 evaluation models exercise:
//!
//! - [`DType`] / [`Shape`] / [`TensorInfo`] — typed, concretely-shaped tensors
//!   (batch dimensions are concrete; models are rebuilt per batch size, which
//!   matches how PRoof runs one configuration at a time),
//! - [`OpKind`] + [`Attributes`] — ~60 operator kinds with ONNX attribute
//!   semantics,
//! - [`Node`] / [`Graph`] — a flat, topologically-ordered compute graph with
//!   producer/consumer indices and validation,
//! - [`GraphBuilder`] — an eager builder that runs [shape
//!   inference](infer::infer_shapes) as nodes are appended, so every tensor in
//!   a constructed graph has a known shape (the equivalent of running ONNX
//!   shape inference, which PRoof requires),
//! - JSON serialization (standing in for ONNX protobuf) and DOT export.
//!
//! Deviations from ONNX, chosen for a self-contained reproduction, are
//! documented on each operator: notably `Reshape`/`Expand`/`Slice` take their
//! shape arguments as *attributes* rather than dynamic tensor inputs (DNN
//! inference graphs have static control flow — the paper's own observation —
//! so nothing is lost).

pub mod attr;
pub mod builder;
pub mod dot;
pub mod dtype;
pub mod graph;
pub mod infer;
pub mod node;
pub mod op;
pub mod pass;
pub mod shape;
pub mod subgraph;
pub mod tensor;

pub use attr::{AttrValue, Attributes};
pub use builder::GraphBuilder;
pub use dtype::DType;
pub use graph::{Graph, GraphError, NodeId, TensorId};
pub use infer::{infer_shapes, ShapeError};
pub use node::Node;
pub use op::{OpCategory, OpKind};
pub use shape::Shape;
pub use tensor::{TensorInfo, TensorKind};
