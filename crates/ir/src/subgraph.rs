//! Subgraph extraction: cut a contiguous (or any closed) node set out of a
//! graph as a standalone model whose inputs are the cut's boundary
//! activations. Used by pipeline-parallel partitioning and by per-layer
//! micro-benchmark generation.

use crate::{Graph, GraphError, Node, NodeId, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};

/// Extract `members` (must be topologically closed: no member may consume a
/// tensor produced by a later non-member that... i.e. any activation input
/// either comes from inside, from a weight, or becomes a new graph input).
///
/// Returns a standalone validated graph named `name`.
pub fn extract_subgraph(g: &Graph, members: &[NodeId], name: &str) -> Result<Graph, GraphError> {
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let producers = g.producers();
    let consumers = g.consumers();

    let produced_inside = |t: TensorId| producers.get(&t).is_some_and(|p| member_set.contains(p));

    let mut tensors = Vec::new();
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let add_tensor = |remap: &mut HashMap<TensorId, TensorId>,
                      tensors: &mut Vec<crate::TensorInfo>,
                      t: TensorId,
                      kind: TensorKind|
     -> TensorId {
        if let Some(&id) = remap.get(&t) {
            return id;
        }
        let mut info = g.tensor(t).clone();
        info.kind = kind;
        let id = tensors.len() as TensorId;
        tensors.push(info);
        remap.insert(t, id);
        id
    };

    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    let mut nodes = Vec::with_capacity(sorted.len());
    for &m in &sorted {
        let n = g.node(m);
        let mut new_inputs = Vec::with_capacity(n.inputs.len());
        for &t in &n.inputs {
            let kind = g.tensor(t).kind;
            let id = if kind == TensorKind::Weight {
                add_tensor(&mut remap, &mut tensors, t, TensorKind::Weight)
            } else if produced_inside(t) {
                add_tensor(&mut remap, &mut tensors, t, TensorKind::Activation)
            } else {
                let id = add_tensor(&mut remap, &mut tensors, t, TensorKind::Input);
                if !inputs.contains(&id) {
                    inputs.push(id);
                }
                id
            };
            new_inputs.push(id);
        }
        let mut new_outputs = Vec::with_capacity(n.outputs.len());
        for &t in &n.outputs {
            let escapes = g.outputs.contains(&t)
                || consumers
                    .get(&t)
                    .is_some_and(|cs| cs.iter().any(|c| !member_set.contains(c)));
            let id = add_tensor(&mut remap, &mut tensors, t, TensorKind::Activation);
            if escapes {
                outputs.push(id);
            }
            new_outputs.push(id);
        }
        nodes.push(Node {
            name: n.name.clone(),
            op: n.op,
            attrs: n.attrs.clone(),
            inputs: new_inputs,
            outputs: new_outputs,
        });
    }
    // a stage with no escaping tensor still needs an output: use the last
    // node's first output
    if outputs.is_empty() {
        if let Some(last) = nodes.last() {
            outputs.push(last.outputs[0]);
        }
    }
    let mut out = Graph {
        name: name.to_string(),
        tensors,
        nodes,
        inputs,
        outputs: {
            let mut o = outputs;
            o.dedup();
            o
        },
    };
    for &t in &out.outputs.clone() {
        if out.tensors[t as usize].kind == TensorKind::Activation {
            out.tensors[t as usize].kind = TensorKind::Output;
        }
    }
    out.validate()?;
    Ok(out)
}

/// Bytes crossing the cut between `members` and the rest of the graph
/// (activations produced inside and consumed outside), at `precision`.
pub fn boundary_out_bytes(g: &Graph, members: &[NodeId], precision: crate::DType) -> u64 {
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let consumers = g.consumers();
    let mut total = 0;
    let mut seen = HashSet::new();
    for &m in members {
        for &t in &g.node(m).outputs {
            let escapes = consumers
                .get(&t)
                .is_some_and(|cs| cs.iter().any(|c| !member_set.contains(c)));
            if escapes && seen.insert(t) {
                total += g.tensor(t).size_bytes_at(precision);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, GraphBuilder};

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[1, 8, 8, 8], DType::F32);
        let c1 = b.conv("c1", x, 8, 3, 1, 1, 1, true);
        let r1 = b.relu("r1", c1);
        let c2 = b.conv("c2", r1, 8, 3, 1, 1, 1, true);
        let r2 = b.relu("r2", c2);
        b.output(r2);
        b.finish()
    }

    #[test]
    fn split_chain_into_two_stages() {
        let g = chain();
        let s1 = extract_subgraph(&g, &[0, 1], "stage0").unwrap();
        let s2 = extract_subgraph(&g, &[2, 3], "stage1").unwrap();
        assert_eq!(s1.node_count(), 2);
        assert_eq!(s2.node_count(), 2);
        // stage boundary: relu output becomes stage1's input
        assert_eq!(s2.inputs.len(), 1);
        assert_eq!(s2.tensor(s2.inputs[0]).shape.dims(), &[1, 8, 8, 8]);
        // weights travel with their stage
        assert_eq!(s1.param_count() + s2.param_count(), g.param_count());
    }

    #[test]
    fn boundary_bytes_match_the_cut_tensor() {
        let g = chain();
        let bytes = boundary_out_bytes(&g, &[0, 1], DType::F16);
        assert_eq!(bytes, 8 * 8 * 8 * 2);
        // the full graph has no escaping tensors except its output
        assert_eq!(boundary_out_bytes(&g, &[0, 1, 2, 3], DType::F16), 0);
    }

    #[test]
    fn residual_crossing_the_cut_becomes_two_inputs() {
        let mut b = GraphBuilder::new("res");
        let x = b.input("x", &[1, 4], DType::F32);
        let a = b.relu("a", x);
        let c = b.sigmoid("b", a);
        let s = b.add("add", a, c); // consumes both a and b's output
        b.output(s);
        let g = b.finish();
        // cut after `a`: stage 2 = {b, add}; `a`'s output crosses once but
        // feeds two consumers inside
        let s2 = extract_subgraph(&g, &[1, 2], "s2").unwrap();
        assert_eq!(s2.inputs.len(), 1);
        assert_eq!(s2.node_count(), 2);
    }

    #[test]
    fn rejects_nothing_but_validates_output() {
        let g = chain();
        // arbitrary closed set (single middle node) also works
        let s = extract_subgraph(&g, &[2], "mid").unwrap();
        assert_eq!(s.node_count(), 1);
        s.validate().unwrap();
    }
}
