//! Graph nodes (ONNX `NodeProto` equivalent).

use crate::{Attributes, OpKind, TensorId};
use serde::{Deserialize, Serialize};

/// One operator instance in a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique, human-readable node name (e.g. `"layer1.0.conv1"`). Backend
    /// profilers key fusion hints off these names, so uniqueness matters.
    pub name: String,
    pub op: OpKind,
    pub attrs: Attributes,
    /// Ordered input tensors (data inputs first, then weights, per ONNX).
    pub inputs: Vec<TensorId>,
    /// Ordered output tensors.
    pub outputs: Vec<TensorId>,
}

impl Node {
    pub fn new(
        name: impl Into<String>,
        op: OpKind,
        attrs: Attributes,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> Self {
        Node {
            name: name.into(),
            op,
            attrs,
            inputs,
            outputs,
        }
    }

    /// The single output of a single-output node.
    ///
    /// # Panics
    /// If the node has more than one output.
    pub fn output(&self) -> TensorId {
        assert_eq!(
            self.outputs.len(),
            1,
            "node {} ({}) has {} outputs",
            self.name,
            self.op,
            self.outputs.len()
        );
        self.outputs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_output_accessor() {
        let n = Node::new("relu0", OpKind::Relu, Attributes::new(), vec![0], vec![1]);
        assert_eq!(n.output(), 1);
    }

    #[test]
    #[should_panic(expected = "2 outputs")]
    fn output_panics_on_multi_output() {
        let n = Node::new(
            "split0",
            OpKind::Split,
            Attributes::new(),
            vec![0],
            vec![1, 2],
        );
        let _ = n.output();
    }
}
