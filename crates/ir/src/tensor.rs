//! Tensor metadata.

use crate::{DType, Shape};
use serde::{Deserialize, Serialize};

/// What role a tensor plays in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// A graph input (fed per inference, scales with batch).
    Input,
    /// A graph output.
    Output,
    /// An intermediate activation produced by a node.
    Activation,
    /// A trained parameter (ONNX initializer), resident in DRAM once.
    Weight,
}

/// Metadata for one tensor: PRoof never materializes payloads — all analysis
/// is shape/type-driven, per the paper's analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorInfo {
    pub name: String,
    pub shape: Shape,
    pub dtype: DType,
    pub kind: TensorKind,
}

impl TensorInfo {
    pub fn new(name: impl Into<String>, shape: Shape, dtype: DType, kind: TensorKind) -> Self {
        TensorInfo {
            name: name.into(),
            shape,
            dtype,
            kind,
        }
    }

    /// Element count.
    pub fn numel(&self) -> u64 {
        self.shape.numel()
    }

    /// Size in bytes at the tensor's stored dtype.
    pub fn size_bytes(&self) -> u64 {
        self.numel() * self.dtype.size_bytes()
    }

    /// Size in bytes if floats are stored at `precision` instead (integer
    /// tensors keep their native width — index tensors do not shrink when a
    /// runtime converts the model to fp16/int8).
    pub fn size_bytes_at(&self, precision: DType) -> u64 {
        let elem = if self.dtype.is_float() {
            precision.size_bytes()
        } else {
            self.dtype.size_bytes()
        };
        self.numel() * elem
    }

    pub fn is_weight(&self) -> bool {
        self.kind == TensorKind::Weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(kind: TensorKind) -> TensorInfo {
        TensorInfo::new("t", Shape::new(&[2, 3]), DType::F32, kind)
    }

    #[test]
    fn sizes() {
        let x = t(TensorKind::Activation);
        assert_eq!(x.numel(), 6);
        assert_eq!(x.size_bytes(), 24);
        assert_eq!(x.size_bytes_at(DType::F16), 12);
        assert_eq!(x.size_bytes_at(DType::I8), 6);
    }

    #[test]
    fn int_tensors_keep_native_width_under_precision_override() {
        let idx = TensorInfo::new("idx", Shape::new(&[10]), DType::I64, TensorKind::Weight);
        assert_eq!(idx.size_bytes_at(DType::F16), 80);
    }

    #[test]
    fn weight_flag() {
        assert!(t(TensorKind::Weight).is_weight());
        assert!(!t(TensorKind::Activation).is_weight());
    }
}
