//! Graphviz DOT export for model graphs (debugging aid / data-viewer input).

use crate::{Graph, OpCategory};

pub use crate::op::OpCategory as Category;

fn color(cat: OpCategory) -> &'static str {
    match cat {
        OpCategory::Contraction => "#d62728",
        OpCategory::Normalization => "#9467bd",
        OpCategory::Elementwise => "#2ca02c",
        OpCategory::Reduction => "#8c564b",
        OpCategory::Pooling => "#e377c2",
        OpCategory::DataMovement => "#1f77b4",
        OpCategory::Metadata => "#7f7f7f",
    }
}

/// Render the graph as Graphviz DOT. Nodes are coloured by
/// [`OpCategory`]; edges are labelled with tensor shapes.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::with_capacity(g.nodes.len() * 96);
    out.push_str(&format!("digraph \"{}\" {{\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n", g.name));
    for (i, n) in g.nodes.iter().enumerate() {
        out.push_str(&format!(
            "  n{i} [label=\"{}\\n{}\", fillcolor=\"{}\", fontcolor=white];\n",
            n.name,
            n.op,
            color(n.op.category())
        ));
    }
    let producers = g.producers();
    for (i, n) in g.nodes.iter().enumerate() {
        for &inp in &n.inputs {
            if let Some(&src) = producers.get(&inp) {
                out.push_str(&format!(
                    "  n{src} -> n{i} [label=\"{}\"];\n",
                    g.tensor(inp).shape
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, GraphBuilder};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", &[1, 3, 8, 8], DType::F32);
        let c = b.conv("conv", x, 4, 3, 1, 1, 1, false);
        let r = b.relu("relu", c);
        b.output(r);
        let dot = to_dot(&b.finish());
        assert!(dot.contains("digraph \"g\""));
        assert!(dot.contains("conv"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("[1x4x8x8]"));
    }
}
