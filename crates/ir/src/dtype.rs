//! Element data types.

use serde::{Deserialize, Serialize};

/// Tensor element type.
///
/// `F32` is the export default (models are built in f32, like PyTorch→ONNX
/// export); the execution precision (fp16/int8) is a property of the runtime
/// session, mirroring how TensorRT/OpenVINO convert precision at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    F32,
    F16,
    BF16,
    I8,
    U8,
    I32,
    I64,
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::I8 | DType::U8 | DType::Bool => 1,
            DType::I64 => 8,
        }
    }

    /// True for floating-point types.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16 | DType::BF16)
    }

    /// True for integer types (including bool).
    pub const fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Short lower-case name (`"fp16"`, `"int8"`, ...), as used in reports.
    pub const fn short_name(self) -> &'static str {
        match self {
            DType::F32 => "fp32",
            DType::F16 => "fp16",
            DType::BF16 => "bf16",
            DType::I8 => "int8",
            DType::U8 => "uint8",
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::Bool => "bool",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_ieee_widths() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I64.size_bytes(), 8);
    }

    #[test]
    fn float_int_partition() {
        for d in [
            DType::F32,
            DType::F16,
            DType::BF16,
            DType::I8,
            DType::U8,
            DType::I32,
            DType::I64,
            DType::Bool,
        ] {
            assert_ne!(d.is_float(), d.is_int(), "{d} must be exactly one");
        }
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(DType::F16.to_string(), "fp16");
        assert_eq!(DType::I8.to_string(), "int8");
    }
}
