//! Operator kinds and coarse operator categories.

use serde::{Deserialize, Serialize};

/// The operator set. Names and semantics follow ONNX opset 13–17 unless noted.
///
/// Deviations from ONNX (all motivated by the static-control-flow observation
/// the paper relies on): `Reshape`, `Expand`, `Slice`, `Pad` and `Resize`
/// carry their shape arguments as attributes instead of tensor inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    // ---- convolution / linear algebra ----
    Conv,
    Gemm,
    MatMul,
    // ---- normalization ----
    BatchNormalization,
    LayerNormalization,
    GroupNormalization,
    // ---- activations / unary elementwise ----
    Relu,
    LeakyRelu,
    Clip,
    Sigmoid,
    HardSigmoid,
    HardSwish,
    Tanh,
    Erf,
    Exp,
    Log,
    Sqrt,
    Reciprocal,
    Neg,
    Abs,
    Gelu,
    Softplus,
    // ---- binary / ternary elementwise ----
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Equal,
    Greater,
    Less,
    Where,
    // ---- reductions / softmax ----
    Softmax,
    ReduceMean,
    ReduceSum,
    ReduceMax,
    ArgMax,
    // ---- pooling ----
    MaxPool,
    AveragePool,
    GlobalAveragePool,
    // ---- data movement / shape manipulation ----
    Transpose,
    Reshape,
    Flatten,
    Squeeze,
    Unsqueeze,
    Concat,
    Split,
    Slice,
    Gather,
    Expand,
    Tile,
    Pad,
    Resize,
    Cast,
    Identity,
    Dropout,
    // ---- metadata / constants ----
    Shape,
    Constant,
    ConstantOfShape,
    Range,
}

/// Coarse operator categories used by cost models, fusion rules and the
/// layer-wise roofline colour coding of the paper's Figures 5, 6 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// Dense tensor contraction: Conv/Gemm/MatMul.
    Contraction,
    /// Normalization layers.
    Normalization,
    /// Pointwise math (activations, binary arithmetic, comparisons).
    Elementwise,
    /// Reductions and softmax.
    Reduction,
    /// Pooling.
    Pooling,
    /// Physical data movement (transpose, concat, pad, resize, ...).
    DataMovement,
    /// Pure metadata: never touches tensor payloads (Shape, Reshape, ...).
    Metadata,
}

impl OpKind {
    /// The coarse category of this op.
    pub fn category(self) -> OpCategory {
        use OpKind::*;
        match self {
            Conv | Gemm | MatMul => OpCategory::Contraction,
            BatchNormalization | LayerNormalization | GroupNormalization => {
                OpCategory::Normalization
            }
            Relu | LeakyRelu | Clip | Sigmoid | HardSigmoid | HardSwish | Tanh | Erf | Exp
            | Log | Sqrt | Reciprocal | Neg | Abs | Gelu | Softplus | Add | Sub | Mul | Div
            | Pow | Min | Max | Equal | Greater | Less | Where => OpCategory::Elementwise,
            Softmax | ReduceMean | ReduceSum | ReduceMax | ArgMax => OpCategory::Reduction,
            MaxPool | AveragePool | GlobalAveragePool => OpCategory::Pooling,
            Transpose | Concat | Split | Slice | Gather | Expand | Tile | Pad | Resize | Cast => {
                OpCategory::DataMovement
            }
            Reshape | Flatten | Squeeze | Unsqueeze | Identity | Dropout | Shape | Constant
            | ConstantOfShape | Range => OpCategory::Metadata,
        }
    }

    /// Ops that perform no work at inference time and are eliminated by every
    /// real runtime (views, aliases, inference-mode no-ops).
    pub fn is_noop_at_inference(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Reshape
                | Flatten
                | Squeeze
                | Unsqueeze
                | Identity
                | Dropout
                | Shape
                | Constant
                | ConstantOfShape
                | Range
        )
    }

    /// Unary elementwise ops (one data input), the classic activation-fusion
    /// candidates.
    pub fn is_unary_elementwise(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Relu | LeakyRelu
                | Clip
                | Sigmoid
                | HardSigmoid
                | HardSwish
                | Tanh
                | Erf
                | Exp
                | Log
                | Sqrt
                | Reciprocal
                | Neg
                | Abs
                | Gelu
                | Softplus
                | Cast
        )
    }

    /// Binary/ternary elementwise ops.
    pub fn is_binary_elementwise(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Add | Sub | Mul | Div | Pow | Min | Max | Equal | Greater | Less | Where
        )
    }

    /// Any elementwise op (unary or binary/ternary).
    pub fn is_elementwise(self) -> bool {
        self.is_unary_elementwise() || self.is_binary_elementwise()
    }

    /// Number of outputs this op produces (`Split` is the only variadic one;
    /// its count comes from node wiring).
    pub fn fixed_output_count(self) -> Option<usize> {
        match self {
            OpKind::Split => None,
            _ => Some(1),
        }
    }

    /// Canonical ONNX-style name.
    pub fn name(self) -> &'static str {
        use OpKind::*;
        match self {
            Conv => "Conv",
            Gemm => "Gemm",
            MatMul => "MatMul",
            BatchNormalization => "BatchNormalization",
            LayerNormalization => "LayerNormalization",
            GroupNormalization => "GroupNormalization",
            Relu => "Relu",
            LeakyRelu => "LeakyRelu",
            Clip => "Clip",
            Sigmoid => "Sigmoid",
            HardSigmoid => "HardSigmoid",
            HardSwish => "HardSwish",
            Tanh => "Tanh",
            Erf => "Erf",
            Exp => "Exp",
            Log => "Log",
            Sqrt => "Sqrt",
            Reciprocal => "Reciprocal",
            Neg => "Neg",
            Abs => "Abs",
            Gelu => "Gelu",
            Softplus => "Softplus",
            Add => "Add",
            Sub => "Sub",
            Mul => "Mul",
            Div => "Div",
            Pow => "Pow",
            Min => "Min",
            Max => "Max",
            Equal => "Equal",
            Greater => "Greater",
            Less => "Less",
            Where => "Where",
            Softmax => "Softmax",
            ReduceMean => "ReduceMean",
            ReduceSum => "ReduceSum",
            ReduceMax => "ReduceMax",
            ArgMax => "ArgMax",
            MaxPool => "MaxPool",
            AveragePool => "AveragePool",
            GlobalAveragePool => "GlobalAveragePool",
            Transpose => "Transpose",
            Reshape => "Reshape",
            Flatten => "Flatten",
            Squeeze => "Squeeze",
            Unsqueeze => "Unsqueeze",
            Concat => "Concat",
            Split => "Split",
            Slice => "Slice",
            Gather => "Gather",
            Expand => "Expand",
            Tile => "Tile",
            Pad => "Pad",
            Resize => "Resize",
            Cast => "Cast",
            Identity => "Identity",
            Dropout => "Dropout",
            Shape => "Shape",
            Constant => "Constant",
            ConstantOfShape => "ConstantOfShape",
            Range => "Range",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_consistent() {
        assert_eq!(OpKind::Conv.category(), OpCategory::Contraction);
        assert_eq!(OpKind::Transpose.category(), OpCategory::DataMovement);
        assert_eq!(OpKind::Reshape.category(), OpCategory::Metadata);
        assert_eq!(OpKind::Softmax.category(), OpCategory::Reduction);
    }

    #[test]
    fn noops_are_metadata() {
        for op in [
            OpKind::Reshape,
            OpKind::Flatten,
            OpKind::Squeeze,
            OpKind::Unsqueeze,
            OpKind::Identity,
            OpKind::Dropout,
            OpKind::Shape,
            OpKind::Constant,
        ] {
            assert!(op.is_noop_at_inference(), "{op}");
            assert_eq!(op.category(), OpCategory::Metadata, "{op}");
        }
        assert!(!OpKind::Transpose.is_noop_at_inference());
        assert!(!OpKind::Conv.is_noop_at_inference());
    }

    #[test]
    fn elementwise_partitions() {
        assert!(OpKind::Relu.is_unary_elementwise());
        assert!(OpKind::Add.is_binary_elementwise());
        assert!(!OpKind::Add.is_unary_elementwise());
        assert!(OpKind::Where.is_elementwise());
        assert!(!OpKind::MatMul.is_elementwise());
    }

    #[test]
    fn split_is_the_only_variadic_output() {
        assert_eq!(OpKind::Split.fixed_output_count(), None);
        assert_eq!(OpKind::Conv.fixed_output_count(), Some(1));
    }

    #[test]
    fn names_roundtrip_display() {
        assert_eq!(OpKind::GlobalAveragePool.to_string(), "GlobalAveragePool");
    }
}
