//! Eager graph builder with inline shape inference.
//!
//! Mid-level helpers (`conv`, `linear`, `layer_norm_decomposed`, `gelu`, ...)
//! emit exactly the node patterns PyTorch's ONNX exporter emits, so that the
//! model zoo's node counts are comparable to the paper's Table 3.

use crate::{
    infer_shapes, AttrValue, Attributes, DType, Graph, Node, OpKind, Shape, TensorId, TensorInfo,
    TensorKind,
};
use std::collections::HashSet;

/// Builds a [`Graph`] node by node, running shape inference eagerly so every
/// tensor has a concrete shape, and enforcing unique node/tensor names.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    tensors: Vec<TensorInfo>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
    used_names: HashSet<String>,
}

impl GraphBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            tensors: Vec::new(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            used_names: HashSet::new(),
        }
    }

    fn unique(&mut self, base: &str) -> String {
        if self.used_names.insert(base.to_string()) {
            return base.to_string();
        }
        for i in 1.. {
            let cand = format!("{base}_{i}");
            if self.used_names.insert(cand.clone()) {
                return cand;
            }
        }
        unreachable!()
    }

    fn add_tensor(&mut self, name: &str, shape: Shape, dtype: DType, kind: TensorKind) -> TensorId {
        let name = self.unique(name);
        let id = self.tensors.len() as TensorId;
        self.tensors.push(TensorInfo::new(name, shape, dtype, kind));
        id
    }

    /// Declare a graph input.
    pub fn input(&mut self, name: &str, dims: &[u64], dtype: DType) -> TensorId {
        let id = self.add_tensor(name, Shape::new(dims), dtype, TensorKind::Input);
        self.inputs.push(id);
        id
    }

    /// Declare an f32 weight (ONNX initializer).
    pub fn weight(&mut self, name: &str, dims: &[u64]) -> TensorId {
        self.add_tensor(name, Shape::new(dims), DType::F32, TensorKind::Weight)
    }

    /// Declare a weight with an explicit dtype (e.g. `I64` index tables).
    pub fn weight_typed(&mut self, name: &str, dims: &[u64], dtype: DType) -> TensorId {
        self.add_tensor(name, Shape::new(dims), dtype, TensorKind::Weight)
    }

    /// A scalar f32 initializer (for broadcast constants like `sqrt(2)`).
    pub fn scalar(&mut self, name: &str) -> TensorId {
        self.add_tensor(name, Shape::scalar(), DType::F32, TensorKind::Weight)
    }

    /// Mark a tensor as a graph output.
    pub fn output(&mut self, id: TensorId) {
        self.tensors[id as usize].kind = TensorKind::Output;
        self.outputs.push(id);
    }

    /// Append a node, inferring its single output shape.
    ///
    /// # Panics
    /// On shape-inference failure (model construction is programmer error).
    pub fn push(
        &mut self,
        name: &str,
        op: OpKind,
        attrs: Attributes,
        inputs: &[TensorId],
    ) -> TensorId {
        self.push_multi(name, op, attrs, inputs)[0]
    }

    /// Append a (possibly multi-output) node, returning all output ids.
    pub fn push_multi(
        &mut self,
        name: &str,
        op: OpKind,
        attrs: Attributes,
        inputs: &[TensorId],
    ) -> Vec<TensorId> {
        match self.try_push(name, op, attrs, inputs) {
            Ok(outs) => outs,
            Err(e) => panic!(
                "while building node {name} ({op}) in graph {}: {e}",
                self.name
            ),
        }
    }

    /// Fallible node append.
    pub fn try_push(
        &mut self,
        name: &str,
        op: OpKind,
        attrs: Attributes,
        inputs: &[TensorId],
    ) -> Result<Vec<TensorId>, crate::ShapeError> {
        let in_meta: Vec<(Shape, DType)> = inputs
            .iter()
            .map(|&id| {
                let t = &self.tensors[id as usize];
                (t.shape.clone(), t.dtype)
            })
            .collect();
        let outs = infer_shapes(op, &attrs, &in_meta)?;
        let node_name = self.unique(name);
        let mut out_ids = Vec::with_capacity(outs.len());
        for (i, (shape, dtype)) in outs.into_iter().enumerate() {
            let tname = if i == 0 {
                format!("{node_name}:0")
            } else {
                format!("{node_name}:{i}")
            };
            out_ids.push(self.add_tensor(&tname, shape, dtype, TensorKind::Activation));
        }
        self.nodes.push(Node::new(
            node_name,
            op,
            attrs,
            inputs.to_vec(),
            out_ids.clone(),
        ));
        Ok(out_ids)
    }

    /// Shape of a tensor built so far.
    pub fn shape(&self, id: TensorId) -> &Shape {
        &self.tensors[id as usize].shape
    }

    /// Channel dim (axis 1) of a tensor built so far.
    pub fn channels(&self, id: TensorId) -> u64 {
        self.shape(id).0[1]
    }

    /// Finish: returns the validated graph.
    ///
    /// # Panics
    /// If validation fails (builder invariants should make this impossible).
    pub fn finish(self) -> Graph {
        let g = Graph {
            name: self.name,
            tensors: self.tensors,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
        };
        if let Err(e) = g.validate() {
            panic!("builder produced invalid graph {}: {e}", g.name);
        }
        g
    }

    // ------------------------------------------------------------------
    // Mid-level helpers (PyTorch-ONNX-export-shaped patterns)
    // ------------------------------------------------------------------

    /// 2-D convolution with square kernel; creates weight (and bias) tensors.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        name: &str,
        x: TensorId,
        out_channels: u64,
        kernel: u64,
        stride: u64,
        pad: u64,
        groups: u64,
        bias: bool,
    ) -> TensorId {
        self.conv2(
            name,
            x,
            out_channels,
            (kernel, kernel),
            (stride, stride),
            [pad; 4],
            groups,
            bias,
        )
    }

    /// 2-D convolution, rectangular form. `pads` is `[top, left, bottom, right]`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2(
        &mut self,
        name: &str,
        x: TensorId,
        out_channels: u64,
        kernel: (u64, u64),
        stride: (u64, u64),
        pads: [u64; 4],
        groups: u64,
        bias: bool,
    ) -> TensorId {
        let cin = self.channels(x);
        assert_eq!(cin % groups, 0, "conv {name}: cin {cin} % groups {groups}");
        let w = self.weight(
            &format!("{name}.weight"),
            &[out_channels, cin / groups, kernel.0, kernel.1],
        );
        let mut ins = vec![x, w];
        if bias {
            ins.push(self.weight(&format!("{name}.bias"), &[out_channels]));
        }
        let attrs = Attributes::new()
            .with_ints("kernel_shape", &[kernel.0 as i64, kernel.1 as i64])
            .with_ints("strides", &[stride.0 as i64, stride.1 as i64])
            .with_ints(
                "pads",
                &[
                    pads[0] as i64,
                    pads[1] as i64,
                    pads[2] as i64,
                    pads[3] as i64,
                ],
            )
            .with_int("group", groups as i64);
        self.push(name, OpKind::Conv, attrs, &ins)
    }

    /// Inference-mode BatchNorm; creates scale/bias/mean/var weights.
    pub fn bn(&mut self, name: &str, x: TensorId) -> TensorId {
        let c = self.channels(x);
        let scale = self.weight(&format!("{name}.weight"), &[c]);
        let bias = self.weight(&format!("{name}.bias"), &[c]);
        let mean = self.weight(&format!("{name}.running_mean"), &[c]);
        let var = self.weight(&format!("{name}.running_var"), &[c]);
        self.push(
            name,
            OpKind::BatchNormalization,
            Attributes::new().with_float("epsilon", 1e-5),
            &[x, scale, bias, mean, var],
        )
    }

    pub fn relu(&mut self, name: &str, x: TensorId) -> TensorId {
        self.push(name, OpKind::Relu, Attributes::new(), &[x])
    }

    /// ReLU6 as exported: a Clip node.
    pub fn relu6(&mut self, name: &str, x: TensorId) -> TensorId {
        self.push(
            name,
            OpKind::Clip,
            Attributes::new()
                .with_float("min", 0.0)
                .with_float("max", 6.0),
            &[x],
        )
    }

    pub fn sigmoid(&mut self, name: &str, x: TensorId) -> TensorId {
        self.push(name, OpKind::Sigmoid, Attributes::new(), &[x])
    }

    /// SiLU/Swish as exported by PyTorch: `Sigmoid` + `Mul` (2 nodes).
    pub fn silu(&mut self, name: &str, x: TensorId) -> TensorId {
        let s = self.sigmoid(&format!("{name}/Sigmoid"), x);
        self.push(
            &format!("{name}/Mul"),
            OpKind::Mul,
            Attributes::new(),
            &[x, s],
        )
    }

    pub fn hardswish(&mut self, name: &str, x: TensorId) -> TensorId {
        self.push(name, OpKind::HardSwish, Attributes::new(), &[x])
    }

    /// GELU as exported by PyTorch (erf formulation, 5 nodes):
    /// `Div → Erf → Add → Mul → Mul`.
    pub fn gelu(&mut self, name: &str, x: TensorId) -> TensorId {
        let sqrt2 = self.scalar(&format!("{name}/sqrt2"));
        let one = self.scalar(&format!("{name}/one"));
        let half = self.scalar(&format!("{name}/half"));
        let d = self.push(
            &format!("{name}/Div"),
            OpKind::Div,
            Attributes::new(),
            &[x, sqrt2],
        );
        let e = self.push(&format!("{name}/Erf"), OpKind::Erf, Attributes::new(), &[d]);
        let a = self.push(
            &format!("{name}/Add"),
            OpKind::Add,
            Attributes::new(),
            &[e, one],
        );
        let m = self.push(
            &format!("{name}/Mul"),
            OpKind::Mul,
            Attributes::new(),
            &[x, a],
        );
        self.push(
            &format!("{name}/Mul_1"),
            OpKind::Mul,
            Attributes::new(),
            &[m, half],
        )
    }

    /// LayerNorm over the last axis, decomposed as PyTorch exports it with
    /// opset < 17 (9 nodes): `ReduceMean → Sub → Pow → ReduceMean → Add →
    /// Sqrt → Div → Mul → Add`.
    pub fn layer_norm_decomposed(&mut self, name: &str, x: TensorId) -> TensorId {
        let last = *self.shape(x).dims().last().expect("LN input rank >= 1");
        let scale = self.weight(&format!("{name}.weight"), &[last]);
        let bias = self.weight(&format!("{name}.bias"), &[last]);
        let two = self.scalar(&format!("{name}/two"));
        let eps = self.scalar(&format!("{name}/eps"));
        let axes = Attributes::new().with_ints("axes", &[-1]);
        let mean = self.push(
            &format!("{name}/ReduceMean"),
            OpKind::ReduceMean,
            axes.clone(),
            &[x],
        );
        let sub = self.push(
            &format!("{name}/Sub"),
            OpKind::Sub,
            Attributes::new(),
            &[x, mean],
        );
        let sq = self.push(
            &format!("{name}/Pow"),
            OpKind::Pow,
            Attributes::new(),
            &[sub, two],
        );
        let var = self.push(
            &format!("{name}/ReduceMean_1"),
            OpKind::ReduceMean,
            axes,
            &[sq],
        );
        let ve = self.push(
            &format!("{name}/Add"),
            OpKind::Add,
            Attributes::new(),
            &[var, eps],
        );
        let std = self.push(
            &format!("{name}/Sqrt"),
            OpKind::Sqrt,
            Attributes::new(),
            &[ve],
        );
        let nrm = self.push(
            &format!("{name}/Div"),
            OpKind::Div,
            Attributes::new(),
            &[sub, std],
        );
        let sc = self.push(
            &format!("{name}/Mul"),
            OpKind::Mul,
            Attributes::new(),
            &[nrm, scale],
        );
        self.push(
            &format!("{name}/Add_1"),
            OpKind::Add,
            Attributes::new(),
            &[sc, bias],
        )
    }

    /// Fused single-node LayerNormalization (opset >= 17 export).
    pub fn layer_norm_fused(&mut self, name: &str, x: TensorId) -> TensorId {
        let last = *self.shape(x).dims().last().expect("LN input rank >= 1");
        let scale = self.weight(&format!("{name}.weight"), &[last]);
        let bias = self.weight(&format!("{name}.bias"), &[last]);
        self.push(
            name,
            OpKind::LayerNormalization,
            Attributes::new()
                .with_int("axis", -1)
                .with_float("epsilon", 1e-5),
            &[x, scale, bias],
        )
    }

    /// GroupNorm (used by the Stable Diffusion UNet).
    pub fn group_norm(&mut self, name: &str, x: TensorId, groups: u64) -> TensorId {
        let c = self.channels(x);
        let scale = self.weight(&format!("{name}.weight"), &[c]);
        let bias = self.weight(&format!("{name}.bias"), &[c]);
        self.push(
            name,
            OpKind::GroupNormalization,
            Attributes::new()
                .with_int("num_groups", groups as i64)
                .with_float("epsilon", 1e-5),
            &[x, scale, bias],
        )
    }

    /// `nn.Linear` as exported: `Gemm` (transB) on 2-D inputs, `MatMul`+`Add`
    /// on higher-rank inputs.
    pub fn linear(&mut self, name: &str, x: TensorId, out_features: u64, bias: bool) -> TensorId {
        let in_features = *self.shape(x).dims().last().expect("linear input rank >= 1");
        if self.shape(x).rank() == 2 {
            let w = self.weight(&format!("{name}.weight"), &[out_features, in_features]);
            let mut ins = vec![x, w];
            if bias {
                ins.push(self.weight(&format!("{name}.bias"), &[out_features]));
            }
            self.push(
                name,
                OpKind::Gemm,
                Attributes::new().with_int("transB", 1),
                &ins,
            )
        } else {
            let w = self.weight(&format!("{name}.weight"), &[in_features, out_features]);
            let y = self.push(
                &format!("{name}/MatMul"),
                OpKind::MatMul,
                Attributes::new(),
                &[x, w],
            );
            if bias {
                let b = self.weight(&format!("{name}.bias"), &[out_features]);
                self.push(
                    &format!("{name}/Add"),
                    OpKind::Add,
                    Attributes::new(),
                    &[y, b],
                )
            } else {
                y
            }
        }
    }

    pub fn matmul(&mut self, name: &str, a: TensorId, b: TensorId) -> TensorId {
        self.push(name, OpKind::MatMul, Attributes::new(), &[a, b])
    }

    pub fn add(&mut self, name: &str, a: TensorId, b: TensorId) -> TensorId {
        self.push(name, OpKind::Add, Attributes::new(), &[a, b])
    }

    pub fn mul(&mut self, name: &str, a: TensorId, b: TensorId) -> TensorId {
        self.push(name, OpKind::Mul, Attributes::new(), &[a, b])
    }

    pub fn softmax(&mut self, name: &str, x: TensorId, axis: i64) -> TensorId {
        self.push(
            name,
            OpKind::Softmax,
            Attributes::new().with_int("axis", axis),
            &[x],
        )
    }

    pub fn transpose(&mut self, name: &str, x: TensorId, perm: &[i64]) -> TensorId {
        self.push(
            name,
            OpKind::Transpose,
            Attributes::new().with_ints("perm", perm),
            &[x],
        )
    }

    pub fn reshape(&mut self, name: &str, x: TensorId, shape: &[i64]) -> TensorId {
        self.push(
            name,
            OpKind::Reshape,
            Attributes::new().with_ints("shape", shape),
            &[x],
        )
    }

    pub fn flatten(&mut self, name: &str, x: TensorId, axis: i64) -> TensorId {
        self.push(
            name,
            OpKind::Flatten,
            Attributes::new().with_int("axis", axis),
            &[x],
        )
    }

    pub fn concat(&mut self, name: &str, xs: &[TensorId], axis: i64) -> TensorId {
        self.push(
            name,
            OpKind::Concat,
            Attributes::new().with_int("axis", axis),
            xs,
        )
    }

    pub fn split2(&mut self, name: &str, x: TensorId, axis: i64) -> (TensorId, TensorId) {
        let outs = self.push_multi(
            name,
            OpKind::Split,
            Attributes::new()
                .with_int("axis", axis)
                .with_int("num_outputs", 2),
            &[x],
        );
        (outs[0], outs[1])
    }

    pub fn maxpool(
        &mut self,
        name: &str,
        x: TensorId,
        kernel: u64,
        stride: u64,
        pad: u64,
    ) -> TensorId {
        self.push(
            name,
            OpKind::MaxPool,
            Attributes::new()
                .with_ints("kernel_shape", &[kernel as i64, kernel as i64])
                .with_ints("strides", &[stride as i64, stride as i64])
                .with_ints("pads", &[pad as i64; 4]),
            &[x],
        )
    }

    pub fn avgpool(
        &mut self,
        name: &str,
        x: TensorId,
        kernel: u64,
        stride: u64,
        pad: u64,
    ) -> TensorId {
        self.push(
            name,
            OpKind::AveragePool,
            Attributes::new()
                .with_ints("kernel_shape", &[kernel as i64, kernel as i64])
                .with_ints("strides", &[stride as i64, stride as i64])
                .with_ints("pads", &[pad as i64; 4]),
            &[x],
        )
    }

    pub fn global_avg_pool(&mut self, name: &str, x: TensorId) -> TensorId {
        self.push(name, OpKind::GlobalAveragePool, Attributes::new(), &[x])
    }

    pub fn gather(&mut self, name: &str, data: TensorId, indices: TensorId, axis: i64) -> TensorId {
        self.push(
            name,
            OpKind::Gather,
            Attributes::new().with_int("axis", axis),
            &[data, indices],
        )
    }

    pub fn slice(
        &mut self,
        name: &str,
        x: TensorId,
        starts: &[i64],
        ends: &[i64],
        axes: &[i64],
    ) -> TensorId {
        self.push(
            name,
            OpKind::Slice,
            Attributes::new()
                .with_ints("starts", starts)
                .with_ints("ends", ends)
                .with_ints("axes", axes),
            &[x],
        )
    }

    pub fn resize2x(&mut self, name: &str, x: TensorId) -> TensorId {
        let r = self.shape(x).rank();
        let mut scales = vec![1.0f64; r];
        scales[r - 1] = 2.0;
        scales[r - 2] = 2.0;
        self.push(
            name,
            OpKind::Resize,
            Attributes::new()
                .with("scales", AttrValue::Floats(scales))
                .with_str("mode", "nearest"),
            &[x],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_helper_creates_weights_and_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3, 32, 32], DType::F32);
        let y = b.conv("c", x, 8, 3, 2, 1, 1, true);
        assert_eq!(b.shape(y), &Shape::new(&[2, 8, 16, 16]));
        b.output(y);
        let g = b.finish();
        assert_eq!(g.param_count(), 8 * 3 * 3 * 3 + 8);
    }

    #[test]
    fn silu_emits_two_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 4], DType::F32);
        let y = b.silu("act", x);
        b.output(y);
        let g = b.finish();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.nodes[0].op, OpKind::Sigmoid);
        assert_eq!(g.nodes[1].op, OpKind::Mul);
    }

    #[test]
    fn gelu_emits_five_nodes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 4], DType::F32);
        let y = b.gelu("act", x);
        b.output(y);
        let g = b.finish();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.tensor(y).shape, Shape::new(&[1, 4]));
    }

    #[test]
    fn layer_norm_decomposed_is_nine_nodes_shape_preserving() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 197, 192], DType::F32);
        let y = b.layer_norm_decomposed("ln", x);
        b.output(y);
        let g = b.finish();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.tensor(y).shape, Shape::new(&[4, 197, 192]));
    }

    #[test]
    fn linear_uses_gemm_for_2d_and_matmul_for_3d() {
        let mut b = GraphBuilder::new("t");
        let x2 = b.input("x2", &[8, 64], DType::F32);
        let y2 = b.linear("fc2", x2, 10, true);
        let x3 = b.input("x3", &[2, 5, 64], DType::F32);
        let y3 = b.linear("fc3", x3, 10, true);
        b.output(y2);
        b.output(y3);
        let g = b.finish();
        assert_eq!(g.nodes[0].op, OpKind::Gemm);
        assert_eq!(g.nodes[1].op, OpKind::MatMul);
        assert_eq!(g.nodes[2].op, OpKind::Add);
        assert_eq!(g.tensor(y3).shape, Shape::new(&[2, 5, 10]));
    }

    #[test]
    fn name_collisions_are_auto_suffixed() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 4], DType::F32);
        let a = b.relu("r", x);
        let c = b.relu("r", a);
        b.output(c);
        let g = b.finish();
        assert_eq!(g.nodes[0].name, "r");
        assert_eq!(g.nodes[1].name, "r_1");
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "while building node bad")]
    fn push_panics_with_context_on_bad_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3], DType::F32);
        let y = b.input("y", &[4, 5], DType::F32);
        b.push("bad", OpKind::MatMul, Attributes::new(), &[x, y]);
    }
}
