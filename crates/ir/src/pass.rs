//! Graph-cleanup passes (an `onnx-simplifier` equivalent).
//!
//! Models exported from training frameworks often carry inference-time
//! clutter: `Identity`/`Dropout` nodes, dead branches, and unfolded
//! `Conv`+`BatchNormalization` pairs. PRoof's analysis works either way,
//! but clean graphs match what deployment pipelines feed real runtimes —
//! and BN folding is required to reproduce the paper's node counts (a
//! folded torchvision ResNet-50 is exactly 122 nodes).
//!
//! Passes are pure: they build a new [`Graph`], never mutate the input.

use crate::{Graph, Node, NodeId, OpKind, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};

/// Rebuild a graph keeping only `keep_nodes`, with tensors remapped through
/// `alias` (tensor substitutions applied to node inputs and graph outputs),
/// dropping tensors that become unreferenced.
fn rebuild(g: &Graph, keep_nodes: &[bool], alias: &HashMap<TensorId, TensorId>) -> Graph {
    let resolve = |mut t: TensorId| -> TensorId {
        let mut hops = 0;
        while let Some(&next) = alias.get(&t) {
            t = next;
            hops += 1;
            assert!(hops <= g.tensors.len(), "alias cycle");
        }
        t
    };
    // collect referenced tensors
    let mut used: HashSet<TensorId> = HashSet::new();
    for (id, n) in g.iter_nodes() {
        if !keep_nodes[id as usize] {
            continue;
        }
        for &t in n.inputs.iter() {
            used.insert(resolve(t));
        }
        for &t in &n.outputs {
            used.insert(t);
        }
    }
    for &o in &g.outputs {
        used.insert(resolve(o));
    }
    for &i in &g.inputs {
        used.insert(i);
    }
    // renumber tensors
    let mut remap: HashMap<TensorId, TensorId> = HashMap::with_capacity(used.len());
    let mut tensors = Vec::with_capacity(used.len());
    for (old, info) in g.tensors.iter().enumerate() {
        let old = old as TensorId;
        if used.contains(&old) {
            remap.insert(old, tensors.len() as TensorId);
            tensors.push(info.clone());
        }
    }
    let map = |t: TensorId| remap[&resolve(t)];
    let nodes = g
        .iter_nodes()
        .filter(|(id, _)| keep_nodes[*id as usize])
        .map(|(_, n)| Node {
            name: n.name.clone(),
            op: n.op,
            attrs: n.attrs.clone(),
            inputs: n.inputs.iter().map(|&t| map(t)).collect(),
            outputs: n.outputs.iter().map(|&t| remap[&t]).collect(),
        })
        .collect();
    let out = Graph {
        name: g.name.clone(),
        tensors,
        nodes,
        inputs: g.inputs.iter().map(|&t| remap[&t]).collect(),
        outputs: g.outputs.iter().map(|&t| map(t)).collect(),
    };
    // graph outputs may have moved onto interior tensors — re-tag them
    let mut out = out;
    for &t in &out.outputs.clone() {
        if out.tensors[t as usize].kind == TensorKind::Activation {
            out.tensors[t as usize].kind = TensorKind::Output;
        }
    }
    out
}

/// Remove nodes whose outputs are never consumed and don't feed a graph
/// output (dead-code elimination).
pub fn eliminate_dead_nodes(g: &Graph) -> Graph {
    let consumers = g.consumers();
    let out_set: HashSet<TensorId> = g.outputs.iter().copied().collect();
    let mut keep = vec![false; g.nodes.len()];
    // reverse-topological liveness
    for (id, n) in g.iter_nodes().collect::<Vec<_>>().into_iter().rev() {
        let live = n.outputs.iter().any(|t| {
            out_set.contains(t)
                || consumers
                    .get(t)
                    .is_some_and(|cs| cs.iter().any(|&c| keep[c as usize]))
        });
        keep[id as usize] = live;
    }
    rebuild(g, &keep, &HashMap::new())
}

/// Remove `Identity` and inference-mode `Dropout` nodes, rewiring their
/// consumers to the producer tensor.
pub fn eliminate_identities(g: &Graph) -> Graph {
    let mut keep = vec![true; g.nodes.len()];
    let mut alias: HashMap<TensorId, TensorId> = HashMap::new();
    for (id, n) in g.iter_nodes() {
        if matches!(n.op, OpKind::Identity | OpKind::Dropout) {
            keep[id as usize] = false;
            alias.insert(n.outputs[0], n.inputs[0]);
        }
    }
    rebuild(g, &keep, &alias)
}

/// Fold `Conv → BatchNormalization` pairs into a single biased `Conv`
/// (eval-mode export semantics). The BN's scale/shift merge into the conv
/// weights conceptually; since PRoof never materializes weights, folding
/// here means: drop the BN node, give the conv a bias input when missing,
/// and drop the BN parameter tensors.
pub fn fold_conv_bn(g: &Graph) -> Graph {
    let consumers = g.consumers();
    let mut keep = vec![true; g.nodes.len()];
    let mut alias: HashMap<TensorId, TensorId> = HashMap::new();
    let mut grow_bias: HashMap<NodeId, TensorId> = HashMap::new();
    for (id, n) in g.iter_nodes() {
        if n.op != OpKind::Conv {
            continue;
        }
        let Some(cs) = consumers.get(&n.outputs[0]) else {
            continue;
        };
        if cs.len() != 1 {
            continue;
        }
        let bn_id = cs[0];
        let bn = g.node(bn_id);
        if bn.op != OpKind::BatchNormalization {
            continue;
        }
        keep[bn_id as usize] = false;
        alias.insert(bn.outputs[0], n.outputs[0]);
        if n.inputs.len() == 2 {
            // reuse the BN shift vector as the conv bias
            grow_bias.insert(id, bn.inputs[2]);
        }
    }
    // apply bias growth on a clone before rebuilding
    let mut g2 = g.clone();
    for (conv, bias) in grow_bias {
        g2.nodes[conv as usize].inputs.push(bias);
    }
    let folded = rebuild(&g2, &keep, &alias);
    // folding orphans the BN stat tensors; DCE of tensors happened in
    // rebuild (they're unreferenced), so just validate and return
    folded
}

/// The standard cleanup pipeline: identities → conv/BN folding → DCE.
pub fn simplify(g: &Graph) -> Graph {
    let g = eliminate_identities(g);
    let g = fold_conv_bn(&g);
    let g = eliminate_dead_nodes(&g);
    g.validate().expect("simplify produced an invalid graph");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attrs, DType, GraphBuilder};

    fn conv_bn_relu_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 3, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, false);
        let n = b.bn("bn", c);
        let r = b.relu("relu", n);
        b.output(r);
        b.finish()
    }

    #[test]
    fn fold_conv_bn_drops_bn_and_adds_bias() {
        let g = conv_bn_relu_graph();
        assert_eq!(g.node_count(), 3);
        let folded = simplify(&g);
        folded.validate().unwrap();
        assert_eq!(folded.node_count(), 2);
        let conv = folded.node(folded.node_by_name("conv").unwrap());
        assert_eq!(conv.op, OpKind::Conv);
        assert_eq!(conv.inputs.len(), 3, "bias attached");
        // BN stats are gone: params = weights + one bias vector
        assert_eq!(folded.param_count(), 8 * 3 * 3 * 3 + 8);
    }

    #[test]
    fn fold_skips_multi_consumer_convs() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 4, 8, 8], DType::F32);
        let c = b.conv("conv", x, 4, 3, 1, 1, 1, false);
        let n = b.bn("bn", c);
        let other = b.relu("side", c); // second consumer of the conv output
        let s = b.add("sum", n, other);
        b.output(s);
        let g = b.finish();
        let folded = fold_conv_bn(&g);
        assert_eq!(folded.node_count(), g.node_count(), "no folding");
    }

    #[test]
    fn identity_and_dropout_are_rewired_away() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 4], DType::F32);
        let i = b.push("id", OpKind::Identity, attrs!(), &[x]);
        let d = b.push("drop", OpKind::Dropout, attrs!(), &[i]);
        let r = b.relu("relu", d);
        b.output(r);
        let g = b.finish();
        let cleaned = eliminate_identities(&g);
        cleaned.validate().unwrap();
        assert_eq!(cleaned.node_count(), 1);
        assert_eq!(cleaned.node(0).op, OpKind::Relu);
        // relu now reads the graph input directly
        assert_eq!(cleaned.node(0).inputs, vec![cleaned.inputs[0]]);
    }

    #[test]
    fn dead_branches_are_removed() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 4], DType::F32);
        let live = b.relu("live", x);
        let dead = b.sigmoid("dead", x);
        let _deader = b.relu("deader", dead);
        b.output(live);
        let g = b.finish();
        assert_eq!(g.node_count(), 3);
        let cleaned = eliminate_dead_nodes(&g);
        cleaned.validate().unwrap();
        assert_eq!(cleaned.node_count(), 1);
        assert_eq!(cleaned.node(0).name, "live");
    }

    #[test]
    fn identity_feeding_graph_output_keeps_output_wired() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 4], DType::F32);
        let r = b.relu("relu", x);
        let i = b.push("id", OpKind::Identity, attrs!(), &[r]);
        b.output(i);
        let g = b.finish();
        let cleaned = eliminate_identities(&g);
        cleaned.validate().unwrap();
        assert_eq!(cleaned.outputs.len(), 1);
        // the output now points at relu's tensor
        let out = cleaned.tensor(cleaned.outputs[0]);
        assert_eq!(out.shape.dims(), &[2, 4]);
    }

    #[test]
    fn simplify_is_idempotent() {
        let g = conv_bn_relu_graph();
        let once = simplify(&g);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn simplify_preserves_flop_relevant_structure() {
        // param/shape bookkeeping survives: output shape identical
        let g = conv_bn_relu_graph();
        let s = simplify(&g);
        assert_eq!(g.tensor(g.outputs[0]).shape, s.tensor(s.outputs[0]).shape);
    }
}
