//! Per-operator shape (and dtype) inference.
//!
//! This is the equivalent of running ONNX shape inference, which PRoof's
//! analysis representation requires: every tensor in the graph must have a
//! concrete shape before FLOP/memory prediction.

use crate::{Attributes, DType, OpKind, Shape};

/// Shape inference failure, with enough context to debug model builders.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeError(pub String);

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape inference error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

macro_rules! bail {
    ($($arg:tt)*) => { return Err(ShapeError(format!($($arg)*))) };
}

fn expect_inputs(
    op: OpKind,
    inputs: &[(Shape, DType)],
    range: std::ops::RangeInclusive<usize>,
) -> Result<(), ShapeError> {
    if !range.contains(&inputs.len()) {
        bail!(
            "{op} expects {range:?} inputs, got {}: {:?}",
            inputs.len(),
            inputs
                .iter()
                .map(|(s, _)| s.to_string())
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}

/// Spatial output size for conv/pool windows.
/// `pads` is `[begin..., end...]` per ONNX (length 2×spatial rank).
fn window_out(
    op: OpKind,
    spatial: &[u64],
    kernel: &[i64],
    strides: &[i64],
    pads: &[i64],
    dilations: &[i64],
    ceil_mode: bool,
) -> Result<Vec<u64>, ShapeError> {
    let r = spatial.len();
    if kernel.len() != r || strides.len() != r || dilations.len() != r || pads.len() != 2 * r {
        bail!(
            "{op}: window attr ranks disagree with spatial rank {r} \
             (kernel {kernel:?}, strides {strides:?}, pads {pads:?}, dilations {dilations:?})"
        );
    }
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let eff_k = dilations[i] * (kernel[i] - 1) + 1;
        let padded = spatial[i] as i64 + pads[i] + pads[r + i];
        let num = padded - eff_k;
        if num < 0 {
            bail!("{op}: window {eff_k} larger than padded input {padded} on spatial axis {i}");
        }
        let o = if ceil_mode {
            (num + strides[i] - 1) / strides[i] + 1
        } else {
            num / strides[i] + 1
        };
        out.push(o as u64);
    }
    Ok(out)
}

fn same_as(input: &(Shape, DType)) -> Vec<(Shape, DType)> {
    vec![input.clone()]
}

/// Infer output shapes and dtypes for one operator.
///
/// `inputs` are `(shape, dtype)` pairs in ONNX input order (data inputs first,
/// then weights). Returns one entry per output.
pub fn infer_shapes(
    op: OpKind,
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    use OpKind::*;
    match op {
        Conv => infer_conv(attrs, inputs),
        Gemm => infer_gemm(attrs, inputs),
        MatMul => infer_matmul(inputs),
        BatchNormalization => {
            expect_inputs(op, inputs, 5..=5)?;
            Ok(same_as(&inputs[0]))
        }
        LayerNormalization | GroupNormalization => {
            expect_inputs(op, inputs, 2..=3)?;
            Ok(same_as(&inputs[0]))
        }
        Relu | LeakyRelu | Clip | Sigmoid | HardSigmoid | HardSwish | Tanh | Erf | Exp | Log
        | Sqrt | Reciprocal | Neg | Abs | Gelu | Softplus | Softmax | Identity | Dropout => {
            expect_inputs(op, inputs, 1..=1)?;
            Ok(same_as(&inputs[0]))
        }
        Add | Sub | Mul | Div | Pow | Min | Max => {
            expect_inputs(op, inputs, 2..=2)?;
            let (a, b) = (&inputs[0], &inputs[1]);
            let out = a.0.broadcast(&b.0).ok_or_else(|| {
                ShapeError(format!("{op}: cannot broadcast {} with {}", a.0, b.0))
            })?;
            Ok(vec![(out, a.1)])
        }
        Equal | Greater | Less => {
            expect_inputs(op, inputs, 2..=2)?;
            let out = inputs[0].0.broadcast(&inputs[1].0).ok_or_else(|| {
                ShapeError(format!(
                    "{op}: cannot broadcast {} with {}",
                    inputs[0].0, inputs[1].0
                ))
            })?;
            Ok(vec![(out, DType::Bool)])
        }
        Where => {
            expect_inputs(op, inputs, 3..=3)?;
            let s = inputs[0]
                .0
                .broadcast(&inputs[1].0)
                .and_then(|s| s.broadcast(&inputs[2].0))
                .ok_or_else(|| {
                    ShapeError(format!(
                        "Where: cannot broadcast {}, {}, {}",
                        inputs[0].0, inputs[1].0, inputs[2].0
                    ))
                })?;
            Ok(vec![(s, inputs[1].1)])
        }
        ReduceMean | ReduceSum | ReduceMax | ArgMax => infer_reduce(op, attrs, inputs),
        MaxPool | AveragePool => infer_pool(op, attrs, inputs),
        GlobalAveragePool => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            if s.rank() < 3 {
                bail!("GlobalAveragePool needs rank>=3 input, got {s}");
            }
            let mut dims = vec![s.0[0], s.0[1]];
            dims.extend(std::iter::repeat_n(1, s.rank() - 2));
            Ok(vec![(crate::Shape(dims), *d)])
        }
        Transpose => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let perm: Vec<usize> = match attrs.ints("perm") {
                Some(p) => p.iter().map(|&x| x as usize).collect(),
                None => (0..s.rank()).rev().collect(),
            };
            if perm.len() != s.rank() {
                bail!("Transpose: perm {perm:?} rank != input rank {}", s.rank());
            }
            let mut seen = vec![false; s.rank()];
            for &p in &perm {
                if p >= s.rank() || seen[p] {
                    bail!("Transpose: invalid perm {perm:?} for {s}");
                }
                seen[p] = true;
            }
            Ok(vec![(
                crate::Shape(perm.iter().map(|&p| s.0[p]).collect()),
                *d,
            )])
        }
        Reshape => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let spec = attrs
                .ints("shape")
                .ok_or_else(|| ShapeError("Reshape: missing 'shape' attribute".into()))?;
            Ok(vec![(resolve_reshape(s, spec)?, *d)])
        }
        Flatten => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let axis = s
                .normalize_axis(attrs.int_or("axis", 1))
                .ok_or_else(|| ShapeError(format!("Flatten: bad axis for {s}")))?;
            let head: u64 = s.0[..axis].iter().product();
            let tail: u64 = s.0[axis..].iter().product();
            Ok(vec![(crate::Shape(vec![head, tail]), *d)])
        }
        Squeeze => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let out = match attrs.ints("axes") {
                Some(axes) => {
                    let mut drop = vec![false; s.rank()];
                    for &a in axes {
                        let i = s
                            .normalize_axis(a)
                            .ok_or_else(|| ShapeError(format!("Squeeze: bad axis {a} for {s}")))?;
                        if s.0[i] != 1 {
                            bail!("Squeeze: axis {a} of {s} is not 1");
                        }
                        drop[i] = true;
                    }
                    crate::Shape(
                        s.0.iter()
                            .zip(&drop)
                            .filter(|(_, &dr)| !dr)
                            .map(|(&v, _)| v)
                            .collect(),
                    )
                }
                None => crate::Shape(s.0.iter().copied().filter(|&v| v != 1).collect()),
            };
            Ok(vec![(out, *d)])
        }
        Unsqueeze => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let axes = attrs
                .ints("axes")
                .ok_or_else(|| ShapeError("Unsqueeze: missing 'axes'".into()))?;
            let out_rank = s.rank() + axes.len();
            let mut norm: Vec<usize> = Vec::with_capacity(axes.len());
            for &a in axes {
                let v = if a < 0 { a + out_rank as i64 } else { a };
                if !(0..out_rank as i64).contains(&v) {
                    bail!("Unsqueeze: bad axis {a} for output rank {out_rank}");
                }
                norm.push(v as usize);
            }
            norm.sort_unstable();
            norm.dedup();
            if norm.len() != axes.len() {
                bail!("Unsqueeze: duplicate axes {axes:?}");
            }
            let mut out = Vec::with_capacity(out_rank);
            let mut src = s.0.iter();
            for i in 0..out_rank {
                if norm.binary_search(&i).is_ok() {
                    out.push(1);
                } else {
                    out.push(*src.next().expect("rank accounting"));
                }
            }
            Ok(vec![(crate::Shape(out), *d)])
        }
        Concat => {
            expect_inputs(op, inputs, 1..=64)?;
            let axis = inputs[0]
                .0
                .normalize_axis(attrs.int_or("axis", 0))
                .ok_or_else(|| ShapeError(format!("Concat: bad axis for {}", inputs[0].0)))?;
            let mut out = inputs[0].0.clone();
            for (s, _) in &inputs[1..] {
                if s.rank() != out.rank() {
                    bail!("Concat: rank mismatch {out} vs {s}");
                }
                for (i, (&a, &b)) in out.0.iter().zip(&s.0).enumerate() {
                    if i != axis && a != b {
                        bail!("Concat: non-axis dim mismatch at {i}: {out} vs {s}");
                    }
                }
                out.0[axis] += s.0[axis];
            }
            Ok(vec![(out, inputs[0].1)])
        }
        Split => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let axis = s
                .normalize_axis(attrs.int_or("axis", 0))
                .ok_or_else(|| ShapeError(format!("Split: bad axis for {s}")))?;
            let parts: Vec<u64> = if let Some(split) = attrs.ints("split") {
                split.iter().map(|&x| x as u64).collect()
            } else {
                let n = attrs.int_or("num_outputs", 2) as u64;
                if n == 0 || s.0[axis] % n != 0 {
                    bail!("Split: {} not divisible into {n} parts", s.0[axis]);
                }
                vec![s.0[axis] / n; n as usize]
            };
            if parts.iter().sum::<u64>() != s.0[axis] {
                bail!("Split: parts {parts:?} don't sum to dim {}", s.0[axis]);
            }
            Ok(parts
                .iter()
                .map(|&p| {
                    let mut dims = s.0.clone();
                    dims[axis] = p;
                    (crate::Shape(dims), *d)
                })
                .collect())
        }
        Slice => infer_slice(attrs, inputs),
        Gather => {
            expect_inputs(op, inputs, 2..=2)?;
            let (data, d) = &inputs[0];
            let (idx, idt) = &inputs[1];
            if !idt.is_int() {
                bail!("Gather: indices must be integer, got {idt}");
            }
            let axis = data
                .normalize_axis(attrs.int_or("axis", 0))
                .ok_or_else(|| ShapeError(format!("Gather: bad axis for {data}")))?;
            let mut out = Vec::with_capacity(data.rank() - 1 + idx.rank());
            out.extend_from_slice(&data.0[..axis]);
            out.extend_from_slice(&idx.0);
            out.extend_from_slice(&data.0[axis + 1..]);
            Ok(vec![(crate::Shape(out), *d)])
        }
        Expand => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let spec = attrs
                .ints("shape")
                .ok_or_else(|| ShapeError("Expand: missing 'shape'".into()))?;
            let target = crate::Shape(spec.iter().map(|&x| x as u64).collect());
            let out = s
                .broadcast(&target)
                .ok_or_else(|| ShapeError(format!("Expand: {s} not broadcastable to {target}")))?;
            Ok(vec![(out, *d)])
        }
        Tile => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let reps = attrs
                .ints("repeats")
                .ok_or_else(|| ShapeError("Tile: missing 'repeats'".into()))?;
            if reps.len() != s.rank() {
                bail!(
                    "Tile: repeats rank {} != input rank {}",
                    reps.len(),
                    s.rank()
                );
            }
            Ok(vec![(
                crate::Shape(s.0.iter().zip(reps).map(|(&a, &r)| a * r as u64).collect()),
                *d,
            )])
        }
        Pad => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let pads = attrs
                .ints("pads")
                .ok_or_else(|| ShapeError("Pad: missing 'pads'".into()))?;
            let r = s.rank();
            if pads.len() != 2 * r {
                bail!("Pad: pads len {} != 2*rank {}", pads.len(), 2 * r);
            }
            let mut out = Vec::with_capacity(r);
            for i in 0..r {
                let v = s.0[i] as i64 + pads[i] + pads[r + i];
                if v < 0 {
                    bail!("Pad: negative result dim on axis {i}");
                }
                out.push(v as u64);
            }
            Ok(vec![(crate::Shape(out), *d)])
        }
        Resize => {
            expect_inputs(op, inputs, 1..=1)?;
            let (s, d) = &inputs[0];
            let scales = attrs
                .floats("scales")
                .ok_or_else(|| ShapeError("Resize: missing 'scales'".into()))?;
            if scales.len() != s.rank() {
                bail!(
                    "Resize: scales rank {} != input rank {}",
                    scales.len(),
                    s.rank()
                );
            }
            Ok(vec![(
                crate::Shape(
                    s.0.iter()
                        .zip(scales)
                        .map(|(&a, &f)| ((a as f64) * f).floor() as u64)
                        .collect(),
                ),
                *d,
            )])
        }
        Cast => {
            expect_inputs(op, inputs, 1..=1)?;
            let to = attrs
                .dtype("to")
                .ok_or_else(|| ShapeError("Cast: missing 'to' dtype".into()))?;
            Ok(vec![(inputs[0].0.clone(), to)])
        }
        Shape => {
            expect_inputs(op, inputs, 1..=1)?;
            Ok(vec![(
                crate::Shape(vec![inputs[0].0.rank() as u64]),
                DType::I64,
            )])
        }
        Constant | ConstantOfShape => {
            let spec = attrs
                .ints("shape")
                .ok_or_else(|| ShapeError(format!("{op}: missing 'shape'")))?;
            let d = attrs.dtype("dtype").unwrap_or(DType::F32);
            Ok(vec![(
                crate::Shape(spec.iter().map(|&x| x as u64).collect()),
                d,
            )])
        }
        Range => {
            let len = attrs
                .int("length")
                .ok_or_else(|| ShapeError("Range: missing 'length'".into()))?;
            Ok(vec![(crate::Shape(vec![len as u64]), DType::I64)])
        }
    }
}

fn infer_conv(
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(OpKind::Conv, inputs, 2..=3)?;
    let (x, d) = &inputs[0];
    let (w, _) = &inputs[1];
    if x.rank() < 3 || w.rank() != x.rank() {
        bail!("Conv: input {x} / weight {w} ranks unsupported");
    }
    let spatial = &x.0[2..];
    let r = spatial.len();
    let group = attrs.int_or("group", 1) as u64;
    let (n, c) = (x.0[0], x.0[1]);
    let (m, wc) = (w.0[0], w.0[1]);
    if wc * group != c {
        bail!("Conv: weight in-channels {wc}*group {group} != input channels {c}");
    }
    if m % group != 0 {
        bail!("Conv: out channels {m} not divisible by group {group}");
    }
    let kernel: Vec<i64> = match attrs.ints("kernel_shape") {
        Some(k) => k.to_vec(),
        None => w.0[2..].iter().map(|&x| x as i64).collect(),
    };
    let ones = vec![1i64; r];
    let zeros = vec![0i64; 2 * r];
    let strides = attrs
        .ints("strides")
        .map(|s| s.to_vec())
        .unwrap_or_else(|| ones.clone());
    let dilations = attrs.ints("dilations").map(|s| s.to_vec()).unwrap_or(ones);
    let pads = attrs.ints("pads").map(|s| s.to_vec()).unwrap_or(zeros);
    let out_sp = window_out(
        OpKind::Conv,
        spatial,
        &kernel,
        &strides,
        &pads,
        &dilations,
        false,
    )?;
    let mut dims = vec![n, m];
    dims.extend(out_sp);
    Ok(vec![(Shape(dims), *d)])
}

fn infer_pool(
    op: OpKind,
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(op, inputs, 1..=1)?;
    let (x, d) = &inputs[0];
    if x.rank() < 3 {
        bail!("{op}: input {x} rank < 3");
    }
    let spatial = &x.0[2..];
    let r = spatial.len();
    let kernel = attrs
        .ints("kernel_shape")
        .ok_or_else(|| ShapeError(format!("{op}: missing 'kernel_shape'")))?
        .to_vec();
    let ones = vec![1i64; r];
    let zeros = vec![0i64; 2 * r];
    let strides = attrs
        .ints("strides")
        .map(|s| s.to_vec())
        .unwrap_or_else(|| kernel.clone());
    let pads = attrs.ints("pads").map(|s| s.to_vec()).unwrap_or(zeros);
    let ceil = attrs.int_or("ceil_mode", 0) != 0;
    let out_sp = window_out(op, spatial, &kernel, &strides, &pads, &ones, ceil)?;
    let mut dims = vec![x.0[0], x.0[1]];
    dims.extend(out_sp);
    Ok(vec![(Shape(dims), *d)])
}

fn infer_gemm(
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(OpKind::Gemm, inputs, 2..=3)?;
    let (a, d) = &inputs[0];
    let (b, _) = &inputs[1];
    if a.rank() != 2 || b.rank() != 2 {
        bail!("Gemm: A {a} and B {b} must be rank-2");
    }
    let ta = attrs.int_or("transA", 0) != 0;
    let tb = attrs.int_or("transB", 0) != 0;
    let (m, ka) = if ta {
        (a.0[1], a.0[0])
    } else {
        (a.0[0], a.0[1])
    };
    let (kb, n) = if tb {
        (b.0[1], b.0[0])
    } else {
        (b.0[0], b.0[1])
    };
    if ka != kb {
        bail!("Gemm: inner dims {ka} != {kb}");
    }
    if let Some((c, _)) = inputs.get(2) {
        if !c.broadcastable_to(&Shape(vec![m, n])) {
            bail!("Gemm: bias {c} not broadcastable to [{m}x{n}]");
        }
    }
    Ok(vec![(Shape(vec![m, n]), *d)])
}

fn infer_matmul(inputs: &[(Shape, DType)]) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(OpKind::MatMul, inputs, 2..=2)?;
    let (a, d) = &inputs[0];
    let (b, _) = &inputs[1];
    if a.rank() < 2 || b.rank() < 2 {
        bail!("MatMul: 1-D operands unsupported, got {a} x {b}");
    }
    let (m, ka) = (a.0[a.rank() - 2], a.0[a.rank() - 1]);
    let (kb, n) = (b.0[b.rank() - 2], b.0[b.rank() - 1]);
    if ka != kb {
        bail!("MatMul: inner dims {ka} != {kb} ({a} x {b})");
    }
    let abatch = Shape(a.0[..a.rank() - 2].to_vec());
    let bbatch = Shape(b.0[..b.rank() - 2].to_vec());
    let batch = abatch
        .broadcast(&bbatch)
        .ok_or_else(|| ShapeError(format!("MatMul: batch dims {abatch} vs {bbatch}")))?;
    let mut dims = batch.0;
    dims.push(m);
    dims.push(n);
    Ok(vec![(Shape(dims), *d)])
}

fn infer_reduce(
    op: OpKind,
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(op, inputs, 1..=1)?;
    let (s, d) = &inputs[0];
    let keep = attrs.int_or("keepdims", 1) != 0;
    let axes: Vec<usize> = match (attrs.ints("axes"), attrs.int("axis")) {
        (Some(a), _) => a
            .iter()
            .map(|&x| {
                s.normalize_axis(x)
                    .ok_or_else(|| ShapeError(format!("{op}: bad axis {x} for {s}")))
            })
            .collect::<Result<_, _>>()?,
        (None, Some(x)) => vec![s
            .normalize_axis(x)
            .ok_or_else(|| ShapeError(format!("{op}: bad axis {x} for {s}")))?],
        (None, None) => (0..s.rank()).collect(),
    };
    let out_d = if op == OpKind::ArgMax { DType::I64 } else { *d };
    let mut dims = Vec::with_capacity(s.rank());
    for (i, &v) in s.0.iter().enumerate() {
        if axes.contains(&i) {
            if keep {
                dims.push(1);
            }
        } else {
            dims.push(v);
        }
    }
    Ok(vec![(Shape(dims), out_d)])
}

fn infer_slice(
    attrs: &Attributes,
    inputs: &[(Shape, DType)],
) -> Result<Vec<(Shape, DType)>, ShapeError> {
    expect_inputs(OpKind::Slice, inputs, 1..=1)?;
    let (s, d) = &inputs[0];
    let starts = attrs
        .ints("starts")
        .ok_or_else(|| ShapeError("Slice: missing 'starts'".into()))?;
    let ends = attrs
        .ints("ends")
        .ok_or_else(|| ShapeError("Slice: missing 'ends'".into()))?;
    let default_axes: Vec<i64> = (0..starts.len() as i64).collect();
    let axes = attrs.ints("axes").unwrap_or(&default_axes);
    let default_steps = vec![1i64; starts.len()];
    let steps = attrs.ints("steps").unwrap_or(&default_steps);
    if starts.len() != ends.len() || starts.len() != axes.len() || starts.len() != steps.len() {
        bail!("Slice: starts/ends/axes/steps length mismatch");
    }
    let mut dims = s.0.clone();
    for i in 0..starts.len() {
        let ax = s
            .normalize_axis(axes[i])
            .ok_or_else(|| ShapeError(format!("Slice: bad axis {} for {s}", axes[i])))?;
        let len = s.0[ax] as i64;
        let clamp = |v: i64| -> i64 {
            let v = if v < 0 { v + len } else { v };
            v.clamp(0, len)
        };
        let (start, end, step) = (clamp(starts[i]), clamp(ends[i]), steps[i]);
        if step <= 0 {
            bail!("Slice: non-positive steps unsupported");
        }
        dims[ax] = (((end - start).max(0) + step - 1) / step) as u64;
    }
    Ok(vec![(Shape(dims), *d)])
}

/// Resolve an ONNX reshape spec (`0` = copy input dim, `-1` = infer) against
/// an input shape.
fn resolve_reshape(input: &Shape, spec: &[i64]) -> Result<Shape, ShapeError> {
    let total = input.numel();
    let mut out: Vec<u64> = Vec::with_capacity(spec.len());
    let mut infer_at: Option<usize> = None;
    for (i, &v) in spec.iter().enumerate() {
        match v {
            0 => {
                let d = *input.0.get(i).ok_or_else(|| {
                    ShapeError(format!(
                        "Reshape: 0 at axis {i} but input rank {}",
                        input.rank()
                    ))
                })?;
                out.push(d);
            }
            -1 => {
                if infer_at.is_some() {
                    return Err(ShapeError("Reshape: multiple -1".into()));
                }
                infer_at = Some(i);
                out.push(1);
            }
            v if v > 0 => out.push(v as u64),
            v => return Err(ShapeError(format!("Reshape: bad dim {v}"))),
        }
    }
    let known: u64 = out.iter().product();
    if let Some(i) = infer_at {
        if known == 0 || !total.is_multiple_of(known) {
            return Err(ShapeError(format!(
                "Reshape: cannot infer -1 ({total} elements into {known})"
            )));
        }
        out[i] = total / known;
    } else if known != total {
        return Err(ShapeError(format!(
            "Reshape: element count mismatch {known} != {total}"
        )));
    }
    Ok(Shape(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn t(dims: &[u64]) -> (Shape, DType) {
        (Shape::new(dims), DType::F32)
    }

    #[test]
    fn conv_basic_and_strided() {
        // ResNet stem: 7x7/2 pad 3 on 224 -> 112
        let out = infer_shapes(
            OpKind::Conv,
            &attrs! {"strides" => ints[2,2], "pads" => ints[3,3,3,3]},
            &[t(&[1, 3, 224, 224]), t(&[64, 3, 7, 7])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[1, 64, 112, 112]));
    }

    #[test]
    fn depthwise_conv_groups() {
        let out = infer_shapes(
            OpKind::Conv,
            &attrs! {"group" => int 32, "pads" => ints[1,1,1,1]},
            &[t(&[1, 32, 56, 56]), t(&[32, 1, 3, 3])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[1, 32, 56, 56]));
    }

    #[test]
    fn conv_channel_mismatch_is_error() {
        let err = infer_shapes(
            OpKind::Conv,
            &Attributes::new(),
            &[t(&[1, 3, 8, 8]), t(&[16, 4, 1, 1])],
        );
        assert!(err.is_err());
    }

    #[test]
    fn matmul_broadcast_batch() {
        let out = infer_shapes(
            OpKind::MatMul,
            &Attributes::new(),
            &[t(&[8, 12, 197, 64]), t(&[8, 12, 64, 197])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[8, 12, 197, 197]));
        // 2-D weight broadcasts against 3-D activation
        let out = infer_shapes(
            OpKind::MatMul,
            &Attributes::new(),
            &[t(&[4, 197, 768]), t(&[768, 3072])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[4, 197, 3072]));
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        assert!(infer_shapes(
            OpKind::MatMul,
            &Attributes::new(),
            &[t(&[2, 3]), t(&[4, 5])]
        )
        .is_err());
    }

    #[test]
    fn gemm_with_transpose_and_bias() {
        let out = infer_shapes(
            OpKind::Gemm,
            &attrs! {"transB" => int 1},
            &[t(&[128, 2048]), t(&[1000, 2048]), t(&[1000])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[128, 1000]));
    }

    #[test]
    fn pooling_with_ceil_mode() {
        // 112 -> 56 with 3x3/2 pad 1
        let out = infer_shapes(
            OpKind::MaxPool,
            &attrs! {"kernel_shape" => ints[3,3], "strides" => ints[2,2], "pads" => ints[1,1,1,1]},
            &[t(&[1, 64, 112, 112])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[1, 64, 56, 56]));
    }

    #[test]
    fn global_avg_pool() {
        let out = infer_shapes(
            OpKind::GlobalAveragePool,
            &Attributes::new(),
            &[t(&[2, 512, 7, 7])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[2, 512, 1, 1]));
    }

    #[test]
    fn transpose_default_and_perm() {
        let out = infer_shapes(
            OpKind::Transpose,
            &attrs! {"perm" => ints[0, 2, 1, 3]},
            &[t(&[2, 3, 4, 5])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[2, 4, 3, 5]));
        let rev = infer_shapes(OpKind::Transpose, &Attributes::new(), &[t(&[2, 3, 4])]).unwrap();
        assert_eq!(rev[0].0, Shape::new(&[4, 3, 2]));
    }

    #[test]
    fn reshape_with_negative_one() {
        let out = infer_shapes(
            OpKind::Reshape,
            &attrs! {"shape" => ints[0, -1, 16]},
            &[t(&[4, 8, 32])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[4, 16, 16]));
    }

    #[test]
    fn reshape_numel_mismatch_is_error() {
        assert!(infer_shapes(
            OpKind::Reshape,
            &attrs! {"shape" => ints[7, 3]},
            &[t(&[4, 4])]
        )
        .is_err());
    }

    #[test]
    fn split_equal_and_explicit() {
        let outs = infer_shapes(
            OpKind::Split,
            &attrs! {"axis" => int 1, "num_outputs" => int 2},
            &[t(&[1, 116, 28, 28])],
        )
        .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].0, Shape::new(&[1, 58, 28, 28]));
        let outs = infer_shapes(
            OpKind::Split,
            &attrs! {"axis" => int 0, "split" => ints[1, 3]},
            &[t(&[4, 2])],
        )
        .unwrap();
        assert_eq!(outs[1].0, Shape::new(&[3, 2]));
    }

    #[test]
    fn slice_negative_and_stepped() {
        let out = infer_shapes(
            OpKind::Slice,
            &attrs! {"starts" => ints[1], "ends" => ints[-1], "axes" => ints[1]},
            &[t(&[2, 10, 3])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[2, 8, 3]));
        let out = infer_shapes(
            OpKind::Slice,
            &attrs! {"starts" => ints[0], "ends" => ints[10], "axes" => ints[0], "steps" => ints[3]},
            &[t(&[10])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[4]));
    }

    #[test]
    fn gather_embedding_lookup() {
        let out = infer_shapes(
            OpKind::Gather,
            &Attributes::new(),
            &[t(&[30522, 768]), (Shape::new(&[4, 128]), DType::I64)],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[4, 128, 768]));
    }

    #[test]
    fn reduce_mean_keepdims_variants() {
        let keep = infer_shapes(
            OpKind::ReduceMean,
            &attrs! {"axes" => ints[-1]},
            &[t(&[4, 197, 768])],
        )
        .unwrap();
        assert_eq!(keep[0].0, Shape::new(&[4, 197, 1]));
        let drop = infer_shapes(
            OpKind::ReduceMean,
            &attrs! {"axes" => ints[2, 3], "keepdims" => int 0},
            &[t(&[4, 1280, 7, 7])],
        )
        .unwrap();
        assert_eq!(drop[0].0, Shape::new(&[4, 1280]));
    }

    #[test]
    fn elementwise_broadcast_and_compare_dtype() {
        let out = infer_shapes(
            OpKind::Add,
            &Attributes::new(),
            &[t(&[4, 197, 768]), t(&[768])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[4, 197, 768]));
        let cmp = infer_shapes(OpKind::Equal, &Attributes::new(), &[t(&[3]), t(&[3])]).unwrap();
        assert_eq!(cmp[0].1, DType::Bool);
    }

    #[test]
    fn cast_changes_dtype_only() {
        let out = infer_shapes(
            OpKind::Cast,
            &Attributes::new().with_dtype("to", DType::F16),
            &[t(&[2, 2])],
        )
        .unwrap();
        assert_eq!(out[0], (Shape::new(&[2, 2]), DType::F16));
    }

    #[test]
    fn shape_op_returns_rank_vector() {
        let out = infer_shapes(OpKind::Shape, &Attributes::new(), &[t(&[2, 3, 4])]).unwrap();
        assert_eq!(out[0], (Shape::new(&[3]), DType::I64));
    }

    #[test]
    fn pad_and_resize() {
        let out = infer_shapes(
            OpKind::Pad,
            &attrs! {"pads" => ints[0,0,1,1,0,0,1,1]},
            &[t(&[1, 3, 8, 8])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[1, 3, 10, 10]));
        let out = infer_shapes(
            OpKind::Resize,
            &Attributes::new().with("scales", AttrValue::Floats(vec![1.0, 1.0, 2.0, 2.0])),
            &[t(&[1, 64, 32, 32])],
        )
        .unwrap();
        assert_eq!(out[0].0, Shape::new(&[1, 64, 64, 64]));
    }

    use crate::AttrValue;
}
