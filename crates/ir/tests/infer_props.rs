//! Property tests for shape inference and core IR types.

use proof_ir::{attrs, infer_shapes, Attributes, DType, OpKind, Shape};
use proptest::prelude::*;

fn dims_strategy(max_rank: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..=16, 1..=max_rank)
}

proptest! {
    /// Transposing by a permutation then by its inverse restores the shape.
    #[test]
    fn transpose_inverse_roundtrips(dims in dims_strategy(5), seed in any::<u64>()) {
        let rank = dims.len();
        // derive a permutation from the seed
        let mut perm: Vec<i64> = (0..rank as i64).collect();
        let mut s = seed;
        for i in (1..rank).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s as usize) % (i + 1));
        }
        let mut inverse = vec![0i64; rank];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p as usize] = i as i64;
        }
        let input = (Shape::new(&dims), DType::F32);
        let t1 = infer_shapes(OpKind::Transpose, &attrs! {"perm" => ints perm}, std::slice::from_ref(&input)).unwrap();
        let t2 = infer_shapes(OpKind::Transpose, &attrs! {"perm" => ints inverse}, &[t1[0].clone()]).unwrap();
        prop_assert_eq!(&t2[0].0, &input.0);
    }

    /// Reshape with an explicit spec and with -1 inference agree, and numel
    /// is always preserved.
    #[test]
    fn reshape_preserves_numel(dims in dims_strategy(4), split_at in 0usize..4) {
        let shape = Shape::new(&dims);
        let numel = shape.numel();
        let k = split_at % dims.len();
        let head: u64 = dims[..k].iter().product();
        let tail: u64 = dims[k..].iter().product();
        let explicit = infer_shapes(
            OpKind::Reshape,
            &attrs! {"shape" => ints[head as i64, tail as i64]},
            &[(shape.clone(), DType::F32)],
        ).unwrap();
        prop_assert_eq!(explicit[0].0.numel(), numel);
        let inferred = infer_shapes(
            OpKind::Reshape,
            &attrs! {"shape" => ints[head as i64, -1]},
            &[(shape, DType::F32)],
        ).unwrap();
        prop_assert_eq!(&explicit[0].0, &inferred[0].0);
    }

    /// Broadcasting is commutative, and broadcasting with itself is identity.
    #[test]
    fn broadcast_commutes(a in dims_strategy(4), b in dims_strategy(4)) {
        let (sa, sb) = (Shape::new(&a), Shape::new(&b));
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
        prop_assert_eq!(sa.broadcast(&sa), Some(sa.clone()));
        if let Some(c) = sa.broadcast(&sb) {
            // the result dominates both operands
            prop_assert!(sa.broadcastable_to(&c));
            prop_assert!(sb.broadcastable_to(&c));
        }
    }

    /// Elementwise binary inference equals Shape::broadcast.
    #[test]
    fn add_matches_broadcast(a in dims_strategy(4), b in dims_strategy(4)) {
        let (sa, sb) = (Shape::new(&a), Shape::new(&b));
        let inferred = infer_shapes(
            OpKind::Add,
            &Attributes::new(),
            &[(sa.clone(), DType::F32), (sb.clone(), DType::F32)],
        );
        match sa.broadcast(&sb) {
            Some(c) => prop_assert_eq!(inferred.unwrap()[0].0.clone(), c),
            None => prop_assert!(inferred.is_err()),
        }
    }

    /// Conv output spatial size matches the closed-form formula for any
    /// valid (kernel, stride, pad) combination.
    #[test]
    fn conv_output_formula(
        h in 4u64..64,
        cin in 1u64..8,
        cout in 1u64..8,
        k in 1u64..=5,
        s in 1u64..=3,
        p in 0u64..=2,
    ) {
        prop_assume!(h + 2 * p >= k);
        let out = infer_shapes(
            OpKind::Conv,
            &attrs! {
                "kernel_shape" => ints[k as i64, k as i64],
                "strides" => ints[s as i64, s as i64],
                "pads" => ints[p as i64, p as i64, p as i64, p as i64]
            },
            &[
                (Shape::new(&[1, cin, h, h]), DType::F32),
                (Shape::new(&[cout, cin, k, k]), DType::F32),
            ],
        ).unwrap();
        let expect = (h + 2 * p - k) / s + 1;
        prop_assert_eq!(out[0].0.dims(), &[1, cout, expect, expect]);
    }

    /// Split then Concat along the same axis restores the shape.
    #[test]
    fn split_concat_roundtrip(c in 2u64..32, rest in dims_strategy(2)) {
        prop_assume!(c % 2 == 0);
        let mut dims = vec![1, c];
        dims.extend(&rest);
        let shape = Shape::new(&dims);
        let parts = infer_shapes(
            OpKind::Split,
            &attrs! {"axis" => int 1, "num_outputs" => int 2},
            &[(shape.clone(), DType::F32)],
        ).unwrap();
        let cat = infer_shapes(
            OpKind::Concat,
            &attrs! {"axis" => int 1},
            &parts,
        ).unwrap();
        prop_assert_eq!(&cat[0].0, &shape);
    }

    /// Pooling output never exceeds its input spatially.
    #[test]
    fn pooling_never_grows(h in 4u64..64, k in 1u64..=4, s in 1u64..=4) {
        prop_assume!(h >= k);
        let out = infer_shapes(
            OpKind::MaxPool,
            &attrs! {
                "kernel_shape" => ints[k as i64, k as i64],
                "strides" => ints[s as i64, s as i64]
            },
            &[(Shape::new(&[1, 3, h, h]), DType::F32)],
        ).unwrap();
        prop_assert!(out[0].0.dims()[2] <= h);
        prop_assert!(out[0].0.dims()[2] >= 1);
    }
}
