//! Heterogeneous-fleet end-to-end test: two real `proof serve` daemons with
//! different capacity (`--workers`) and different injected per-shard stalls
//! (`PROOF_FAULT=metrics:stall:<ms>`), driven through both schedulers.
//!
//! Asserts the two properties the weighted scheduler exists for:
//!
//! 1. **throughput routing** — under `--sched weighted` the fast node
//!    completes strictly more shards than it does under least-loaded (and
//!    strictly more than the slow node), because the EWMA learns the slow
//!    node's latency and the capacity term favours the wider daemon;
//! 2. **byte determinism** — under *both* schedulers the merged artifact is
//!    byte-identical to the in-process [`proof_fleet::run_grid_local`]
//!    reference; scheduling policy never touches artifact bytes.
//!
//! The daemons are separate subprocesses because the fault plan is
//! process-global: each child reads its own `PROOF_FAULT` once at startup.

use proof_core::GridSpec;
use proof_fleet::{run_grid_local, Fleet, FleetConfig, NodeSnapshot, SchedPolicy};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// A `proof serve` child process, killed on drop.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `proof serve --workers <workers>` with the given fault plan and
/// wait for its address announcement.
fn spawn_daemon(workers: u32, fault: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_proof"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
        ])
        .env("PROOF_FAULT", fault)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn proof serve");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            panic!("proof serve exited before announcing its address");
        }
        if let Some(rest) = line.trim().strip_prefix("proof-serve listening on http://") {
            let addr = rest.split_whitespace().next().expect("address token");
            break addr.parse().expect("daemon address");
        }
    };
    // keep draining so the child never blocks on a full stdout pipe
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Daemon { child, addr }
}

/// 24 one-cell shards; the seed keys every daemon-side cache, so runs with
/// distinct seeds never serve each other's artifacts (each scheduler is
/// measured against cold daemons).
fn spec(seed: u64) -> GridSpec {
    let batches: Vec<u64> = (1..=24).collect();
    GridSpec::from_value(&serde_json::json!({
        "model": "mobilenetv2-0.5",
        "platform": "a100",
        "batches": batches,
        "seed": seed,
    }))
    .unwrap()
}

/// Run one grid under `policy` against the given nodes; return the merged
/// artifact and the per-node snapshots (same order as `nodes`).
fn run_policy(
    nodes: Vec<SocketAddr>,
    policy: SchedPolicy,
    seed: u64,
) -> (String, Vec<NodeSnapshot>) {
    let s = spec(seed);
    let mut config = FleetConfig::remote(nodes);
    config.dispatcher.policy = policy;
    let fleet = Fleet::start(config).expect("fleet start");
    let run = fleet.run_grid(&s).expect("fleet run");
    let snaps = fleet.nodes();
    fleet.shutdown();
    (run.merged, snaps)
}

#[test]
fn weighted_scheduler_favours_the_fast_node_and_keeps_bytes_identical() {
    // fast: 2 workers, 200 ms per shard; slow: 1 worker, 1.5 s per shard
    let fast = spawn_daemon(2, "metrics:stall:200");
    let slow = spawn_daemon(1, "metrics:stall:1500");
    let nodes = vec![fast.addr, slow.addr];

    let (ll_merged, ll_nodes) = run_policy(nodes.clone(), SchedPolicy::LeastLoaded, 1001);
    let (w_merged, w_nodes) = run_policy(nodes, SchedPolicy::Weighted, 2002);

    // byte determinism: both schedulers reproduce the in-process reference
    assert_eq!(
        ll_merged,
        run_grid_local(&spec(1001)).unwrap(),
        "least-loaded merged artifact diverged from the in-process reference"
    );
    assert_eq!(
        w_merged,
        run_grid_local(&spec(2002)).unwrap(),
        "weighted merged artifact diverged from the in-process reference"
    );

    // node order in the snapshots follows the configured node order
    let (ll_fast, ll_slow) = (ll_nodes[0].completed, ll_nodes[1].completed);
    let (w_fast, w_slow) = (w_nodes[0].completed, w_nodes[1].completed);
    assert_eq!(
        ll_fast + ll_slow,
        24,
        "least-loaded lost or double-counted shards"
    );
    assert_eq!(
        w_fast + w_slow,
        24,
        "weighted lost or double-counted shards"
    );

    // throughput routing: the weighted scheduler must send the fast node
    // strictly more work than least-loaded does, and strictly more than
    // the stalled node gets
    assert!(
        w_fast > w_slow,
        "weighted sent the stalled node as much work as the fast node \
         (fast {w_fast}, slow {w_slow})"
    );
    assert!(
        w_fast > ll_fast,
        "weighted did not beat least-loaded on the fast node \
         (weighted {w_fast}, least-loaded {ll_fast}, slow got {w_slow}/{ll_slow})"
    );
}
