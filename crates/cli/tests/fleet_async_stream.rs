//! Streaming-coordinator end-to-end at the CLI boundary: real `proof
//! serve` daemons and a real `proof fleet serve` coordinator, all separate
//! subprocesses, driven through the typed [`proof_fleet::CoordinatorClient`].
//!
//! Pins the full async contract across process boundaries:
//!
//! 1. `POST /grid/submit` answers 202 immediately and `/grid/<id>/result`
//!    is 202 while shards are still stalled in flight;
//! 2. `GET /grid/<id>/status?since=` streams partial completions under a
//!    monotone cursor (events never replay at or before the cursor);
//! 3. the finished artifact is byte-identical to the in-process
//!    [`proof_fleet::run_grid_local`] reference.
//!
//! A second test drives `proof fleet sweep --watch` as a subprocess and
//! checks the stderr progress rendering plus byte identity of `--out`
//! against `--in-process`.

use proof_core::GridSpec;
use proof_fleet::{run_grid_local, CoordinatorClient, RunResult};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A child process killed on drop.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn a `proof` subcommand, wait for the line carrying `prefix`, and
/// parse the address that follows it.
fn spawn_announcing(args: &[&str], envs: &[(&str, &str)], prefix: &str) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_proof"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn proof subprocess");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            panic!("subprocess exited before announcing its address");
        }
        if let Some(pos) = line.find(prefix) {
            let rest = &line[pos + prefix.len()..];
            let addr = rest.split_whitespace().next().expect("address token");
            break addr.parse().expect("announced address");
        }
    };
    // keep draining so the child never blocks on a full stdout pipe
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Daemon { child, addr }
}

fn spawn_worker(stall_ms: u64) -> Daemon {
    spawn_announcing(
        &["serve", "--addr", "127.0.0.1:0", "--workers", "1"],
        &[("PROOF_FAULT", &format!("metrics:stall:{stall_ms}"))],
        "proof-serve listening on http://",
    )
}

#[test]
fn coordinator_streams_an_async_run_across_subprocess_daemons() {
    // fast node: 150 ms per shard; slow node: 900 ms per shard — the skew
    // spreads completions out so the poll loop can observe partial sweeps
    let fast = spawn_worker(150);
    let slow = spawn_worker(900);
    let nodes = format!("{},{}", fast.addr, slow.addr);
    let coordinator = spawn_announcing(
        &["fleet", "serve", "--addr", "127.0.0.1:0", "--nodes", &nodes],
        &[],
        "node(s) on http://",
    );

    let c = CoordinatorClient::new(coordinator.addr, Duration::from_secs(5));
    let spec_json =
        r#"{"model":"mobilenetv2-0.5","platform":"a100","batches":[1,2,3,4,6,8],"seed":33}"#;
    let run_id = c.submit_grid(spec_json).expect("async submit");

    // still dispatching: the result endpoint must answer "running"
    assert_eq!(
        c.run_result(run_id).expect("early result poll"),
        RunResult::Running,
        "six stalled shards cannot have finished at submit time"
    );

    let mut cursor = 0u64;
    let mut mid_run_completed: Vec<u64> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    let merged = loop {
        assert!(Instant::now() < deadline, "streaming run never finished");
        let s = c.run_status(run_id, cursor).expect("status poll");
        let seq = s["seq"].as_u64().unwrap();
        assert!(seq >= cursor, "seq cursor regressed: {seq} < {cursor}");
        for e in s["events"].as_array().unwrap() {
            let eseq = e["seq"].as_u64().unwrap();
            assert!(
                eseq > cursor,
                "event {eseq} replayed at or before cursor {cursor}"
            );
        }
        cursor = seq;
        if s["state"] == "running" {
            mid_run_completed.push(s["completed"].as_u64().unwrap());
        }
        match c.run_result(run_id).expect("result poll") {
            RunResult::Done(m) => break m,
            RunResult::Running => std::thread::sleep(Duration::from_millis(25)),
            RunResult::Failed(e) => panic!("run failed: {e}"),
        }
    };

    // progress streamed: monotone completion counts with a strict partial
    assert!(
        mid_run_completed.windows(2).all(|w| w[0] <= w[1]),
        "completed regressed mid-run: {mid_run_completed:?}"
    );
    assert!(
        mid_run_completed.iter().any(|&c| c > 0 && c < 6),
        "never observed a partial sweep: {mid_run_completed:?}"
    );

    // terminal status document agrees with the artifact
    let s = c.run_status(run_id, 0).expect("final status");
    assert_eq!(s["state"], "done");
    assert_eq!(s["completed"].as_u64(), Some(6));

    // byte identity against the in-process reference
    let spec = GridSpec::from_value(&serde_json::from_str(spec_json).unwrap()).unwrap();
    assert_eq!(
        merged,
        run_grid_local(&spec).unwrap(),
        "async artifact diverged from the in-process reference"
    );
}

#[test]
fn fleet_sweep_watch_renders_progress_and_keeps_bytes_identical() {
    let dir = std::env::temp_dir().join(format!("proof-watch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let watched = dir.join("watched.json");
    let reference = dir.join("reference.json");
    let grid = [
        "--models",
        "mobilenetv2-0.5",
        "--platforms",
        "a100",
        "--batches",
        "1,2,3",
        "--seed",
        "9",
    ];

    let out = Command::new(env!("CARGO_BIN_EXE_proof"))
        .args(["fleet", "sweep", "--local", "2", "--watch", "--out"])
        .arg(&watched)
        .args(grid)
        .output()
        .expect("run proof fleet sweep --watch");
    assert!(out.status.success(), "watch sweep failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("submitted: 3 shards"),
        "no submit banner on stderr: {stderr}"
    );
    assert!(
        stderr.contains("done on node") && stderr.contains("(3/3 complete)"),
        "no per-shard progress lines on stderr: {stderr}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_proof"))
        .args(["fleet", "sweep", "--in-process", "--out"])
        .arg(&reference)
        .args(grid)
        .output()
        .expect("run proof fleet sweep --in-process");
    assert!(out.status.success(), "reference sweep failed: {out:?}");

    assert_eq!(
        std::fs::read_to_string(&watched).unwrap(),
        std::fs::read_to_string(&reference).unwrap(),
        "--watch changed the merged artifact bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
