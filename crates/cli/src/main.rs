//! `proof` — the PRoof command-line interface (paper Figure 1's CLI entry).
//!
//! ```text
//! proof list
//! proof inspect --model resnet-50 [--batch 1] [--dot out.dot] [--json out.json]
//! proof profile --model resnet-50 --platform a100 [--backend trt]
//!               [--batch 128] [--precision fp16] [--mode predicted|measured]
//!               [--top 15] [--svg chart.svg] [--csv chart.csv] [--json report.json] [--html report.html]
//!               [--trace-out trace.json]   (merged Chrome trace: stage spans + kernel timeline)
//! proof profile --model-file model.json ...   (PRoof JSON model format)
//! proof peak --platform orin-nx [--precision fp16]
//! proof memory --model resnet-50 --batch 64 [--precision fp16] [--budget-gb 16]
//! proof headroom --model resnet-50 --platform a100 [--batch N] [--top N]
//! proof serve [--addr 127.0.0.1:7878] [--workers 2] [--cache-budget-mb 64]
//!             [--cache-dir DIR] [--queue-cap 256]
//!             [--job-timeout MS] [--job-retries N]
//!             [--peer-cache IP:PORT,...] [--peer-timeout-ms 2000]
//! proof fleet sweep (--nodes IP:PORT,... | --local N) --models m1,m2 --platforms p1,p2
//!                   [--backends b,...] [--precisions d,...] [--batches 1,2,4] [--mode M]
//!                   [--seed N] [--sched least-loaded|weighted] [--out FILE]
//!                   [--metrics-out FILE] [--trace-out FILE]
//!                   [--in-process] [--watch] [--peer-cache on|off]
//! proof fleet serve [--addr 127.0.0.1:7979] (--nodes IP:PORT,... | --local N)
//! ```

use proof_core::report::{chart_to_csv, profile_summary};
use proof_core::{
    measure_achieved_peak, profile_model, render_roofline_svg, MetricMode, SvgOptions,
};
use proof_hw::{Platform, PlatformId};
use proof_ir::{DType, Graph};
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  proof list\n  proof inspect --model <slug> [--batch N] [--dot FILE] [--json FILE]\n  proof profile (--model <slug> | --model-file FILE) --platform <id>\n                [--backend trt|ort|ov] [--batch N] [--precision fp32|fp16|int8]\n                [--mode predicted|measured] [--seed N] [--top N] [--trace] [--timeout-ms N]\n                [--svg FILE] [--csv FILE] [--json FILE] [--html FILE] [--trace-out FILE]\n  proof peak --platform <id> [--precision fp16]\n  proof memory --model <slug> [--batch N] [--precision P] [--budget-gb G]\n  proof headroom --model <slug> --platform <id> [--batch N] [--top N]\n  proof serve [--addr HOST:PORT] [--workers N] [--cache-budget-mb MB] [--cache-dir DIR] [--queue-cap N] [--stage-cache-cap N]\n              [--job-timeout MS] [--job-retries N] [--peer-cache IP:PORT,...] [--peer-timeout-ms MS]\n  proof fleet sweep (--nodes IP:PORT,... | --local N) --models m1,m2 --platforms p1,p2\n                    [--backends b,...] [--precisions d,...] [--batches 1,2,4] [--mode predicted|measured]\n                    [--seed N] [--sched least-loaded|weighted] [--shard-timeout-ms MS] [--out FILE] [--metrics-out FILE] [--trace-out FILE] [--in-process] [--watch] [--peer-cache on|off]\n  proof fleet serve [--addr HOST:PORT] (--nodes IP:PORT,... | --local N) [--workers N] [--sched least-loaded|weighted] [--peer-cache on|off]\n\nenv: PROOF_LOG=error|warn|info|debug gates structured stderr log events\n     PROOF_FAULT=\"site:panic|stall:<ms>|fail:<n>[@seed];...\" injects deterministic pipeline faults\nmodels: {}\nplatforms: {}",
        ModelId::ALL.map(|m| m.slug()).join(", "),
        PlatformId::ALL.map(|p| format!("{p:?}").to_lowercase()).join(", ")
    );
    std::process::exit(2)
}

/// Flags that take no value; their presence maps to `"true"`.
const BOOLEAN_FLAGS: &[&str] = &["trace", "in-process", "watch"];

/// Parse `--key value` pairs (and valueless boolean flags) after the
/// subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument: {}", args[i]);
            usage();
        };
        if BOOLEAN_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("--{key} needs a value");
            usage();
        };
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    flags
}

fn parse_precision(s: &str) -> DType {
    match s {
        "fp32" => DType::F32,
        "fp16" => DType::F16,
        "int8" => DType::I8,
        other => {
            eprintln!("unknown precision {other} (fp32|fp16|int8)");
            usage();
        }
    }
}

fn load_model(flags: &HashMap<String, String>, batch: u64) -> Graph {
    if let Some(path) = flags.get("model-file") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        return Graph::from_json(&text).unwrap_or_else(|e| {
            eprintln!("invalid model file {path}: {e}");
            std::process::exit(1);
        });
    }
    let slug = flags
        .get("model")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let model = ModelId::parse(slug).unwrap_or_else(|| {
        eprintln!("unknown model {slug}");
        usage();
    });
    model.build(batch)
}

fn load_platform(flags: &HashMap<String, String>) -> Platform {
    let id = flags
        .get("platform")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    match PlatformId::parse(id) {
        Some(p) => p.spec(),
        None => {
            eprintln!("unknown platform {id}");
            usage();
        }
    }
}

fn cmd_list() {
    println!("models:");
    for m in ModelId::ALL {
        let t = m.table3();
        println!(
            "  {:<22} #{:<2} {:<6} {:>6.1} M params, {:>9.3} GFLOP (paper Table 3)",
            m.slug(),
            t.index,
            t.kind,
            t.paper_params_m,
            t.paper_gflop
        );
    }
    println!("\nplatforms:");
    for p in PlatformId::ALL {
        let spec = p.spec();
        println!(
            "  {:<14} {:<32} peak {:>8.1} TFLOP/s ({}), {:>7.1} GB/s",
            format!("{p:?}").to_lowercase(),
            spec.name,
            spec.peak_flops(spec.preferred_dtype(), true) / 1e12,
            spec.preferred_dtype(),
            spec.theoretical_bw() / 1e9,
        );
    }
}

fn cmd_inspect(flags: HashMap<String, String>) {
    let batch: u64 = flags
        .get("batch")
        .map(|v| v.parse().expect("batch"))
        .unwrap_or(1);
    let g = load_model(&flags, batch);
    let analysis = proof_core::AnalyzeRepr::new(&g, DType::F32);
    println!(
        "{}: {} nodes, {:.3} M params, {:.3} GFLOP, {:.2} MB traffic (unfused, fp32, bs={batch})",
        g.name,
        g.node_count(),
        g.param_count() as f64 / 1e6,
        analysis.gflops(),
        analysis.total().memory_bytes() as f64 / 1e6
    );
    let mut hist: Vec<_> = g.op_histogram().into_iter().collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name().cmp(b.0.name())));
    for (op, count) in hist {
        println!("  {count:>5} × {op}");
    }
    if let Some(path) = flags.get("dot") {
        std::fs::write(path, proof_ir::dot::to_dot(&g)).expect("write dot");
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, g.to_json()).expect("write json");
        println!("wrote {path}");
    }
}

/// Run the profiling pipeline, honoring `--trace-out FILE`: with it, the
/// run executes under a root span on the shared ring tracer and the merged
/// Chrome trace (pipeline-stage spans + kernel timeline) is written to
/// FILE. The logical trace clock makes the file byte-reproducible for a
/// given seeded invocation.
fn run_profile(
    flags: &HashMap<String, String>,
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    mode: MetricMode,
) -> Result<proof_core::ProfileReport, proof_core::ProofError> {
    // --timeout-ms bounds the whole run; expiry cancels at the next stage
    // boundary and reports which stage the deadline preempted.
    let ctx = match flags.get("timeout-ms") {
        Some(ms) => proof_core::RunCtx::with_timeout(
            cfg.seed,
            std::time::Duration::from_millis(ms.parse().expect("timeout-ms")),
        ),
        None => proof_core::RunCtx::unbounded(cfg.seed),
    };
    let Some(path) = flags.get("trace-out") else {
        return proof_core::run_pipeline_ctx(g, platform, flavor, cfg, mode, &ctx);
    };
    let (tracer, ring) = proof_obs::shared_ring_tracer();
    let trace_id = proof_obs::new_trace_id();
    let mut root = tracer.span_in(trace_id, "profile");
    root.field("model", g.name.clone());
    root.field("batch", g.batch_size());
    let outcome = proof_core::prepare_stages_ctx(g, platform, flavor, cfg, &ctx)
        .and_then(|prep| proof_core::run_metric_stages_ctx(&prep, mode, &ctx).map(|r| (r, prep)));
    root.finish();
    let (report, prep) = outcome?;
    let trace_json =
        proof_core::merged_chrome_trace(&ring.trace_spans(trace_id), Some(&prep.compiled.compiled));
    std::fs::write(path, trace_json).expect("write trace");
    println!("wrote {path}");
    Ok(report)
}

fn cmd_profile(flags: HashMap<String, String>) -> ExitCode {
    let platform = load_platform(&flags);
    let batch: u64 = flags
        .get("batch")
        .map(|v| v.parse().expect("batch"))
        .unwrap_or_else(|| platform.preferred_batch());
    let g = load_model(&flags, batch);
    let flavor = flags
        .get("backend")
        .map(|s| BackendFlavor::parse(s).unwrap_or_else(|| usage()))
        .unwrap_or_else(|| BackendFlavor::for_platform(&platform));
    let precision = flags
        .get("precision")
        .map(|s| parse_precision(s))
        .unwrap_or_else(|| platform.preferred_dtype());
    let mode = match flags.get("mode").map(String::as_str) {
        None | Some("predicted") => MetricMode::Predicted,
        Some("measured") => MetricMode::Measured,
        Some(other) => {
            eprintln!("unknown mode {other}");
            usage();
        }
    };
    let mut cfg = SessionConfig::new(precision);
    if let Some(seed) = flags.get("seed") {
        cfg = cfg.with_seed(seed.parse().expect("seed"));
    }
    let report = match run_profile(&flags, &g, &platform, flavor, &cfg, mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profiling failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if proof_obs::event_enabled(proof_obs::Level::Info) {
        proof_obs::event(
            proof_obs::Level::Info,
            "proof_cli",
            format!(
                "profiled {} on {} (bs={batch}, {precision}): {:.3} ms",
                report.model, report.platform, report.total_latency_ms
            ),
            Vec::new(),
        );
    }
    let top: usize = flags
        .get("top")
        .map(|v| v.parse().expect("top"))
        .unwrap_or(15);
    println!("{}", profile_summary(&report, top));
    if flags.contains_key("trace") {
        println!("\n{}", report.trace.summary());
    }
    let chart = report.layerwise_chart(&format!(
        "{} on {} ({}, bs={batch})",
        report.model, report.platform, report.precision
    ));
    if let Some(path) = flags.get("svg") {
        std::fs::write(path, render_roofline_svg(&chart, &SvgOptions::default()))
            .expect("write svg");
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, chart_to_csv(&chart)).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, report.to_json()).expect("write json");
        println!("wrote {path}");
    }
    if let Some(path) = flags.get("html") {
        std::fs::write(path, proof_core::html_report(&[&report])).expect("write html");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_memory(flags: HashMap<String, String>) {
    let batch: u64 = flags
        .get("batch")
        .map(|v| v.parse().expect("batch"))
        .unwrap_or(1);
    let precision = flags
        .get("precision")
        .map(|s| parse_precision(s))
        .unwrap_or(DType::F16);
    let g = load_model(&flags, batch);
    let plan = proof_core::plan_memory(&g, precision);
    println!(
        "{} (bs={batch}, {precision}): weights {:.1} MB + peak activations {:.1} MB = {:.1} MB peak working set (at node {})",
        g.name,
        plan.weight_bytes as f64 / 1e6,
        plan.peak_activation_bytes as f64 / 1e6,
        plan.peak_bytes() as f64 / 1e6,
        plan.peak_node
    );
    if let Some(gb) = flags.get("budget-gb") {
        let budget = (gb.parse::<f64>().expect("budget-gb") * 1e9) as u64;
        let slug = flags.get("model").map(String::as_str).unwrap_or_default();
        if let Some(model) = ModelId::parse(slug) {
            match proof_core::max_batch_within(budget, precision, 65536, |b| model.build(b)) {
                Some(best) => println!("largest batch within {gb} GB: {best}"),
                None => println!("does not fit {gb} GB at any batch size"),
            }
        }
    }
}

fn cmd_headroom(flags: HashMap<String, String>) {
    let platform = load_platform(&flags);
    let batch: u64 = flags
        .get("batch")
        .map(|v| v.parse().expect("batch"))
        .unwrap_or_else(|| platform.preferred_batch());
    let g = load_model(&flags, batch);
    let cfg = SessionConfig::new(platform.preferred_dtype());
    let report = profile_model(
        &g,
        &platform,
        BackendFlavor::for_platform(&platform),
        &cfg,
        MetricMode::Predicted,
    )
    .expect("profile");
    let hr = proof_core::analyze_headroom(&report);
    println!(
        "{} on {}: {:.3} ms actual vs {:.3} ms roofline lower bound -> {:.2}x potential speedup\n",
        g.name,
        platform.name,
        hr.actual_ms,
        hr.ideal_ms,
        hr.potential_speedup()
    );
    let top: usize = flags
        .get("top")
        .map(|v| v.parse().expect("top"))
        .unwrap_or(10);
    println!("layers losing the most time vs their roofline bound:");
    for l in hr.worst_layers(top) {
        println!(
            "  {:>9.1} us lost  {:>6.1}x from bound  [{}] {} ({})",
            l.actual_us - l.ideal_us,
            l.slowdown,
            if l.memory_bound { "mem" } else { "cmp" },
            l.name,
            l.category.label()
        );
    }
}

fn cmd_peak(flags: HashMap<String, String>) {
    let platform = load_platform(&flags);
    let precision = flags
        .get("precision")
        .map(|s| parse_precision(s))
        .unwrap_or_else(|| platform.preferred_dtype());
    let flavor = BackendFlavor::for_platform(&platform);
    let peak = measure_achieved_peak(&platform, flavor, precision).expect("peak");
    println!(
        "{} @ GPU {} MHz / mem {} MHz ({precision}):",
        platform.name, platform.clocks.gpu_mhz, platform.clocks.mem_mhz
    );
    println!(
        "  achieved peak: {:.3} TFLOP/s (theoretical {:.3})",
        peak.gflops / 1e3,
        platform.peak_flops(precision, true) / 1e12
    );
    println!(
        "  achieved bandwidth: {:.1} GB/s (theoretical {:.1})",
        peak.bw_gbs,
        platform.theoretical_bw() / 1e9
    );
}

fn cmd_serve(flags: HashMap<String, String>) -> ExitCode {
    let mut config = proof_serve::ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    if let Some(w) = flags.get("workers") {
        config.workers = w.parse().expect("workers");
    }
    if let Some(mb) = flags.get("cache-budget-mb") {
        config.cache_budget_bytes = mb.parse::<usize>().expect("cache-budget-mb") << 20;
    }
    if let Some(dir) = flags.get("cache-dir") {
        config.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(cap) = flags.get("queue-cap") {
        config.queue_capacity = cap.parse().expect("queue-cap");
    }
    if let Some(cap) = flags.get("stage-cache-cap") {
        config.stage_cache_capacity = cap.parse().expect("stage-cache-cap");
    }
    if let Some(ms) = flags.get("job-timeout") {
        config.job_timeout_ms = Some(ms.parse().expect("job-timeout"));
    }
    if let Some(n) = flags.get("job-retries") {
        config.max_retries = n.parse().expect("job-retries");
    }
    for addr in csv(&flags, "peer-cache") {
        match addr.parse() {
            Ok(a) => config.peer_cache.push(a),
            Err(_) => {
                eprintln!("--peer-cache entries must be IP:PORT, got {addr}");
                usage();
            }
        }
    }
    if let Some(ms) = flags.get("peer-timeout-ms") {
        config.peer_timeout_ms = ms.parse().expect("peer-timeout-ms");
    }
    let workers = config.workers;
    let server = match proof_serve::Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "proof-serve listening on http://{} ({workers} workers)\nendpoints: POST /jobs, GET /jobs/<id>, GET /jobs/<id>/report, POST /sweep, GET /sweep/<id>, GET /cache/<key>, PUT /cache/<key>, POST /cache/peers, GET /trace/<trace-id>[?format=spans], GET /metrics[?format=prometheus], GET /debug/events, GET /models",
        server.addr()
    );
    // serve until the process is terminated
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Split a comma-separated flag value, dropping empty pieces.
fn csv(flags: &HashMap<String, String>, key: &str) -> Vec<String> {
    flags
        .get(key)
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Build the grid spec shared by both fleet verbs from `--models`,
/// `--platforms`, and the optional axes.
fn fleet_grid_spec(flags: &HashMap<String, String>) -> proof_core::GridSpec {
    let batches = flags
        .get("batches")
        .map(|v| {
            v.split(',')
                .map(|b| b.trim().parse().expect("batches"))
                .collect()
        })
        .unwrap_or_else(|| vec![1]);
    let spec = proof_core::GridSpec {
        models: csv(flags, "models"),
        backends: csv(flags, "backends"),
        platforms: csv(flags, "platforms"),
        dtypes: csv(flags, "precisions"),
        batches,
        mode: flags.get("mode").cloned(),
        seed: flags
            .get("seed")
            .map(|s| s.parse().expect("seed"))
            .unwrap_or(proof_core::DEFAULT_GRID_SEED),
    };
    if let Err(e) = spec.validate() {
        eprintln!("invalid grid: {e}");
        usage();
    }
    spec
}

/// Build the fleet topology from `--nodes addr,...` and/or `--local N`.
fn fleet_config(flags: &HashMap<String, String>) -> proof_fleet::FleetConfig {
    let mut config = proof_fleet::FleetConfig::default();
    for addr in csv(flags, "nodes") {
        match addr.parse() {
            Ok(a) => config.nodes.push(a),
            Err(_) => {
                eprintln!("--nodes entries must be IP:PORT, got {addr}");
                usage();
            }
        }
    }
    if let Some(n) = flags.get("local") {
        config.local_daemons = n.parse().expect("local");
    }
    if let Some(w) = flags.get("workers") {
        config.local_workers = w.parse().expect("workers");
    }
    if let Some(ms) = flags.get("shard-timeout-ms") {
        config.dispatcher.shard_timeout =
            std::time::Duration::from_millis(ms.parse().expect("shard-timeout-ms"));
    }
    if let Some(s) = flags.get("sched") {
        config.dispatcher.policy = match proof_fleet::SchedPolicy::parse(s) {
            Some(p) => p,
            None => {
                eprintln!("--sched must be least-loaded|weighted, got {s}");
                usage();
            }
        };
    }
    if let Some(v) = flags.get("peer-cache") {
        config.advertise_peer_cache = match v.as_str() {
            "on" => true,
            "off" => false,
            other => {
                eprintln!("--peer-cache must be on|off, got {other}");
                usage();
            }
        };
    }
    if config.nodes.is_empty() && config.local_daemons == 0 {
        eprintln!("fleet needs --nodes and/or --local");
        usage();
    }
    config
}

/// `--watch`: submit the grid as a streaming run and render per-shard
/// progress to stderr as the dispatcher publishes it, then return the
/// finished result (same bytes as the blocking path).
fn watch_fleet_run(
    fleet: &proof_fleet::Fleet,
    spec: &proof_core::GridSpec,
) -> Result<proof_fleet::FleetRun, proof_fleet::FleetError> {
    let handle = fleet.submit_grid(spec)?;
    let (counts, _) = handle.progress().since(0);
    eprintln!(
        "fleet run {} submitted: {} shards",
        handle.id(),
        counts.total
    );
    let mut cursor = 0u64;
    loop {
        let finished = handle.is_finished();
        let (counts, events) = handle.progress().since(cursor);
        cursor = counts.seq;
        for e in events {
            match e.kind {
                proof_fleet::ProgressKind::Completed => eprintln!(
                    "  shard {} done on node {} ({}/{} complete)",
                    e.shard, e.node, counts.completed, counts.total
                ),
                proof_fleet::ProgressKind::Rescheduled => eprintln!(
                    "  shard {} rescheduled off node {} (attempt {})",
                    e.shard, e.node, e.attempts
                ),
                proof_fleet::ProgressKind::Dispatched => {}
            }
        }
        // read finished *before* draining the sink: events published
        // between the drain and the check are picked up next pass
        if finished {
            return handle.wait();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

fn cmd_fleet_sweep(flags: HashMap<String, String>) -> ExitCode {
    let spec = fleet_grid_spec(&flags);
    // --in-process: the single-node library reference (no HTTP, no
    // scheduling) — the bytes a fleet run must reproduce
    let merged = if flags.contains_key("in-process") {
        if flags.contains_key("trace-out") {
            // the merged fleet trace is a cross-node document; the
            // in-process reference has no nodes to merge
            eprintln!("--trace-out needs a fleet run; drop --in-process");
            return ExitCode::FAILURE;
        }
        match proof_fleet::run_grid_local(&spec) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("grid failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let fleet = match proof_fleet::Fleet::start(fleet_config(&flags)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot start fleet: {e}");
                return ExitCode::FAILURE;
            }
        };
        let run = if flags.contains_key("watch") {
            watch_fleet_run(&fleet, &spec)
        } else {
            fleet.run_grid(&spec)
        };
        let run = match run {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "fleet: {} cells over {} nodes ({} dispatched, {} rescheduled, {} probes)",
            run.outcome.results.len(),
            run.nodes.len(),
            run.outcome.dispatched,
            run.outcome.rescheduled,
            run.outcome.probes
        );
        if let Some(path) = flags.get("metrics-out") {
            std::fs::write(path, fleet.metrics_json()).expect("write metrics");
            eprintln!("wrote {path}");
        }
        // the merged cross-node Chrome trace: coordinator track + one
        // process track per node, Perfetto-loadable, byte-reproducible
        // for a fixed spec/seed/topology
        if let Some(path) = flags.get("trace-out") {
            std::fs::write(path, &run.trace_json).expect("write trace");
            eprintln!("wrote {path}");
        }
        fleet.shutdown();
        run.merged
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &merged).expect("write out");
            eprintln!("wrote {path}");
        }
        None => println!("{merged}"),
    }
    ExitCode::SUCCESS
}

fn cmd_fleet_serve(flags: HashMap<String, String>) -> ExitCode {
    let fleet = match proof_fleet::Fleet::start(fleet_config(&flags)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot start fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = fleet.node_addrs();
    let mut config = proof_fleet::FleetServerConfig::default();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    let server = match proof_fleet::FleetServer::start(fleet, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start coordinator: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "proof-fleet coordinating {} node(s) on http://{}\nnodes: {}\nendpoints: POST /grid[?mode=async], POST /grid/submit, GET /grid/<id>/status[?since=SEQ], GET /grid/<id>/result, GET /grid/trace, GET /nodes, GET /metrics[?format=prometheus], GET /debug/events, GET /healthz",
        nodes.len(),
        server.addr(),
        nodes
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // serve until the process is terminated
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_fleet_sweep(parse_flags(&args[1..])),
        Some("serve") => cmd_fleet_serve(parse_flags(&args[1..])),
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("inspect") => cmd_inspect(parse_flags(&args[1..])),
        Some("profile") => return cmd_profile(parse_flags(&args[1..])),
        Some("peak") => cmd_peak(parse_flags(&args[1..])),
        Some("memory") => cmd_memory(parse_flags(&args[1..])),
        Some("headroom") => cmd_headroom(parse_flags(&args[1..])),
        Some("serve") => return cmd_serve(parse_flags(&args[1..])),
        Some("fleet") => return cmd_fleet(&args[1..]),
        _ => usage(),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_collects_pairs() {
        let f = parse_flags(&args(&["--model", "resnet-50", "--batch", "8"]));
        assert_eq!(f["model"], "resnet-50");
        assert_eq!(f["batch"], "8");
    }

    #[test]
    fn parse_flags_handles_valueless_trace() {
        // --trace consumes no value: the flag after it must still be parsed
        let f = parse_flags(&args(&["--trace", "--model", "resnet-50"]));
        assert_eq!(f["trace"], "true");
        assert_eq!(f["model"], "resnet-50");
        // trailing position works too
        let f = parse_flags(&args(&["--model", "resnet-50", "--trace"]));
        assert_eq!(f["trace"], "true");
    }

    #[test]
    fn precision_parser_accepts_the_three_precisions() {
        assert_eq!(parse_precision("fp32"), DType::F32);
        assert_eq!(parse_precision("fp16"), DType::F16);
        assert_eq!(parse_precision("int8"), DType::I8);
    }

    #[test]
    fn model_loading_by_slug_and_by_file() {
        let f = parse_flags(&args(&["--model", "mobilenetv2-0.5", "--batch", "2"]));
        let g = load_model(&f, 2);
        assert_eq!(g.batch_size(), 2);
        // through a JSON model file
        let path = std::env::temp_dir().join("proof_cli_test_model.json");
        std::fs::write(&path, g.to_json()).unwrap();
        let f2 = parse_flags(&args(&["--model-file", path.to_str().unwrap()]));
        let g2 = load_model(&f2, 2);
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn platform_loading_accepts_aliases() {
        let f = parse_flags(&args(&["--platform", "orin-nx"]));
        assert_eq!(load_platform(&f).id, PlatformId::OrinNx);
    }
}
