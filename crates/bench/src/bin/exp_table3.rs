//! Regenerates paper **Table 3**: the model inventory — ONNX node count,
//! parameter count, and theoretical GFLOP at batch size 1, from PRoof's
//! analytical model.

use proof_bench::{fmt_pct, pct_diff, save_artifact};
use proof_core::AnalyzeRepr;
use proof_ir::DType;
use proof_models::ModelId;
use rayon::prelude::*;

fn main() {
    println!("Table 3: models for evaluation (analytical model, bs=1)\n");
    println!(
        "{:>2} {:<20} {:<6} {:>6} {:>9} {:>10} | {:>6} {:>9} {:>10} {:>9}",
        "#",
        "Model",
        "Type",
        "Nodes",
        "Params(M)",
        "GFLOP",
        "pNodes",
        "pParams",
        "pGFLOP",
        "dGFLOP"
    );

    let rows: Vec<(u32, String)> = ModelId::ALL
        .par_iter()
        .map(|&m| {
            let t3 = m.table3();
            let g = m.build(1);
            let analysis = AnalyzeRepr::new(&g, DType::F32);
            let gflop = analysis.gflops();
            let params_m = g.param_count() as f64 / 1e6;
            let line = format!(
                "{:>2} {:<20} {:<6} {:>6} {:>9.1} {:>10.3} | {:>6} {:>9.1} {:>10.3} {:>9}",
                t3.index,
                t3.name,
                t3.kind,
                g.node_count(),
                params_m,
                gflop,
                t3.paper_nodes,
                t3.paper_params_m,
                t3.paper_gflop,
                fmt_pct(pct_diff(gflop, t3.paper_gflop)),
            );
            (t3.index, line)
        })
        .collect();

    let mut rows = rows;
    rows.sort_by_key(|r| r.0);
    let mut csv =
        String::from("index,model,nodes,params_m,gflop,paper_nodes,paper_params_m,paper_gflop\n");
    for (_, line) in &rows {
        println!("{line}");
    }
    for &m in &ModelId::ALL {
        let t3 = m.table3();
        let g = m.build(1);
        let a = AnalyzeRepr::new(&g, DType::F32);
        csv.push_str(&format!(
            "{},{},{},{:.3},{:.3},{},{},{}\n",
            t3.index,
            t3.name,
            g.node_count(),
            g.param_count() as f64 / 1e6,
            a.gflops(),
            t3.paper_nodes,
            t3.paper_params_m,
            t3.paper_gflop
        ));
    }
    save_artifact("table3.csv", &csv);
}
