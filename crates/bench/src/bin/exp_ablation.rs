//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Fusion-aware memory prediction** (the `_FusedOp` boundary rule)
//!    vs naively summing unfused per-node traffic — the paper's §3.2.3
//!    claim that the boundary rule "can significantly improve accuracy".
//! 2. **Strided-conv partial-read rule** on/off (§3.2.1).
//! 3. **The NCU Tensor-Core FLOP correction** on/off (§4.2): without it,
//!    measured FLOP on Ampere are ~8× low.
//!
//! Errors are measured against the runtime's hardware truth.

use proof_bench::{fmt_pct, pct_diff, save_artifact};
use proof_core::{map_layers, AnalyzeRepr, CostOptions, FlopTable, OptimizedRepr};
use proof_counters::profile_with_counters;
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{compile, BackendFlavor, SessionConfig};

fn main() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let models = [
        ModelId::ResNet50,
        ModelId::MobileNetV2x10,
        ModelId::EfficientNetV2T,
        ModelId::ViTTiny,
        ModelId::ShuffleNetV2x10,
    ];
    println!("Ablation 1+2: memory-prediction error vs hardware truth (A100, fp16, bs=32)\n");
    println!(
        "{:<20} {:>12} | {:>12} {:>12} {:>12}",
        "Model", "truth (MB)", "fusion-aware", "naive sum", "no-stride-rule"
    );
    let mut csv = String::from("model,truth_mb,fused_err_pct,naive_err_pct,nostride_err_pct\n");
    for m in models {
        let g = m.build(32);
        let compiled = compile(&g, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
        let (_, truth_bytes) = compiled.hw_totals();

        // fusion-aware (the PRoof pipeline)
        let mapping = map_layers(
            OptimizedRepr::new(AnalyzeRepr::new(&g, cfg.precision)),
            &compiled.builtin_profile(),
            BackendFlavor::TrtLike,
        );
        let fused_bytes = mapping.repr.total_cost().memory_bytes();

        // naive: sum of unfused node traffic
        let naive_bytes = AnalyzeRepr::new(&g, cfg.precision).total().memory_bytes();

        // fusion-aware but without the strided-conv rule
        let nostride = OptimizedRepr::new(AnalyzeRepr::with_config(
            &g,
            cfg.precision,
            FlopTable::default(),
            CostOptions {
                strided_conv_rule: false,
                ..CostOptions::default()
            },
        ));
        let nostride_mapping = map_layers(
            nostride,
            &compiled.builtin_profile(),
            BackendFlavor::TrtLike,
        );
        let nostride_bytes = nostride_mapping.repr.total_cost().memory_bytes();

        let e = |v: u64| fmt_pct(pct_diff(v as f64, truth_bytes as f64));
        println!(
            "{:<20} {:>12.1} | {:>12} {:>12} {:>12}",
            m.table3().name,
            truth_bytes as f64 / 1e6,
            e(fused_bytes),
            e(naive_bytes),
            e(nostride_bytes),
        );
        csv.push_str(&format!(
            "{},{:.1},{:.2},{:.2},{:.2}\n",
            m.slug(),
            truth_bytes as f64 / 1e6,
            pct_diff(fused_bytes as f64, truth_bytes as f64),
            pct_diff(naive_bytes as f64, truth_bytes as f64),
            pct_diff(nostride_bytes as f64, truth_bytes as f64),
        ));
    }
    save_artifact("ablation_memory.csv", &csv);

    println!("\nAblation 3: Tensor-Core FLOP with and without the NCU correction (A100)\n");
    println!(
        "{:<20} {:>12} | {:>14} {:>14}",
        "Model", "truth GFLOP", "uncorrected", "corrected"
    );
    for m in [ModelId::ResNet50, ModelId::ViTTiny] {
        let g = m.build(32);
        let compiled = compile(&g, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
        let (truth_flops, _) = compiled.hw_totals();
        let ncu = profile_with_counters(&compiled, cfg.seed);
        let raw: u64 = ncu.total_reported_flops();
        let corrected: u64 = ncu
            .kernels
            .iter()
            .map(|k| proof_core::ncu_fix::corrected_kernel_flops(k, platform.arch, cfg.precision))
            .sum();
        println!(
            "{:<20} {:>12.1} | {:>13} {:>13}",
            m.table3().name,
            truth_flops as f64 / 1e9,
            fmt_pct(pct_diff(raw as f64, truth_flops as f64)),
            fmt_pct(pct_diff(corrected as f64, truth_flops as f64)),
        );
    }
}
