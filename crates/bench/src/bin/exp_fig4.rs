//! Regenerates paper **Figure 4**: end-to-end roofline analysis of the
//! model zoo on all seven platforms (each model = one point per platform
//! chart, numbered by its Table 3 index).
//!
//! Per the paper: Transformer/diffusion models are skipped on edge/CPU
//! platforms; each platform uses its preferred batch size and dtype; the
//! SD UNet runs one UNet iteration at a 128×128 latent with batch 4; NPU
//! compile failures are reported (most models fail there, §4.3).

use proof_bench::save_artifact;
use proof_core::roofline::LayerCategory;
use proof_core::{
    profile_model, render_roofline_svg, MetricMode, RooflineCeiling, RooflineChart, RooflinePoint,
    SvgOptions,
};
use proof_hw::{Platform, PlatformId};
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use rayon::prelude::*;

/// Table-3 index, display name, and (latency, gflops, gbs, intensity, batch)
/// when the model profiles successfully on the platform.
type ModelRow = (u32, String, Option<(f64, f64, f64, f64, u64)>);

fn batch_for(model: ModelId, platform: &Platform) -> u64 {
    if model == ModelId::StableDiffusionUnet {
        4 // paper footnote 5
    } else {
        platform.preferred_batch()
    }
}

fn runs_on(model: ModelId, id: PlatformId) -> bool {
    match id {
        PlatformId::A100 | PlatformId::Rtx4090 => true,
        // "all models except Transformer and diffusion models on the edge
        // platform" — and the same exclusion applies to CPUs in Figure 4
        _ => model.runs_on_edge(),
    }
}

fn main() {
    let mut csv = String::from(
        "platform,model_index,model,batch,dtype,latency_ms,gflops,gbs,intensity,status\n",
    );
    for id in PlatformId::ALL {
        let platform = id.spec();
        let flavor = BackendFlavor::for_platform(&platform);
        let dtype = platform.preferred_dtype();
        println!("\n=== {} [{}] {} ===", platform.name, flavor.name(), dtype);
        let results: Vec<ModelRow> = ModelId::ALL
            .par_iter()
            .filter(|&&m| runs_on(m, id))
            .map(|&m| {
                let batch = batch_for(m, &platform);
                let g = m.build(batch);
                let cfg = SessionConfig::new(dtype);
                match profile_model(&g, &platform, flavor, &cfg, MetricMode::Predicted) {
                    Ok(r) => (
                        m.table3().index,
                        m.table3().name.to_string(),
                        Some((
                            r.total_latency_ms,
                            r.achieved_gflops(),
                            r.achieved_bw_gbs(),
                            r.intensity(),
                            batch,
                        )),
                    ),
                    Err(_) => (m.table3().index, m.table3().name.to_string(), None),
                }
            })
            .collect();
        let mut results = results;
        results.sort_by_key(|r| r.0);

        let mut chart = RooflineChart::new(
            format!("End-to-end roofline: {} ({dtype})", platform.name),
            RooflineCeiling::theoretical(&platform, dtype),
        );
        for (idx, name, r) in &results {
            match r {
                Some((lat, gflops, gbs, ai, batch)) => {
                    println!(
                        "  #{idx:<2} {name:<20} bs={batch:<4} {lat:>9.3} ms  {gflops:>10.1} GFLOP/s  {gbs:>8.1} GB/s  AI {ai:>7.2}"
                    );
                    csv.push_str(&format!(
                        "{},{},{},{},{},{:.3},{:.1},{:.1},{:.3},ok\n",
                        platform.name, idx, name, batch, dtype, lat, gflops, gbs, ai
                    ));
                    chart.points.push(RooflinePoint {
                        label: format!("{idx}"),
                        category: LayerCategory::Other,
                        flops: (*gflops * *lat * 1e6) as u64,
                        bytes: (*gbs * *lat * 1e6) as u64,
                        latency_us: *lat * 1e3,
                        latency_share: 0.0,
                    });
                }
                None => {
                    println!("  #{idx:<2} {name:<20} FAILED to compile (unsupported)");
                    csv.push_str(&format!(
                        "{},{},{},,,,,,,compile_failed\n",
                        platform.name, idx, name
                    ));
                }
            }
        }
        chart.finalize();
        let svg = render_roofline_svg(
            &chart,
            &SvgOptions {
                label_points: true,
                ..SvgOptions::default()
            },
        );
        save_artifact(&format!("fig4_{:?}.svg", id).to_lowercase(), &svg);
    }
    save_artifact("fig4_end_to_end.csv", &csv);
}
