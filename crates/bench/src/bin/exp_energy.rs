//! Extension experiment: energy per inference across the Table 7 power
//! profiles (J/image = power × latency / batch) — the quantity an edge
//! deployment actually minimizes under a battery budget. Shows that the
//! paper's latency-optimal 612/2133 MHz point is also near energy-optimal,
//! while the stock TPC-gated "15W" profile wastes energy.

use proof_bench::save_artifact;
use proof_core::{profile_model, MetricMode};
use proof_hw::{ClockConfig, JetsonPowerProfile, OrinNx, PlatformId};
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};

fn main() {
    let orin = OrinNx::new();
    let batch = 128u64;
    let g = ModelId::EfficientNetV2T.build(batch);
    let cc = |gpu, mem| ClockConfig::new(gpu, mem).with_tpc_mask(240);
    let profiles: Vec<(String, ClockConfig)> = vec![
        ("stock MAXN".into(), JetsonPowerProfile::MaxN.clocks()),
        (
            "stock 15W (TPC-gated)".into(),
            JetsonPowerProfile::Stock15W.clocks(),
        ),
        ("stock 25W".into(), JetsonPowerProfile::Stock25W.clocks()),
        ("918/2133".into(), cc(918, 2133)),
        ("612/3199".into(), cc(612, 3199)),
        ("optimal 612/2133".into(), cc(612, 2133)),
        ("510/2133".into(), cc(510, 2133)),
        ("306/665".into(), cc(306, 665)),
    ];
    println!("Energy per inference: EfficientNetV2-T (fp16, bs={batch}) on Orin NX\n");
    println!(
        "{:<24} {:>9} {:>8} {:>12} {:>12}",
        "Profile", "lat(ms)", "P(W)", "img/s", "mJ/image"
    );
    let mut csv =
        String::from("profile,gpu_mhz,mem_mhz,latency_ms,power_w,images_per_s,mj_per_image\n");
    let mut best: Option<(String, f64)> = None;
    for (label, clocks) in &profiles {
        let platform = PlatformId::OrinNx.spec().with_clocks(*clocks);
        let r = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .expect("profile");
        let power = orin.power.power_w(clocks, r.util_gpu, r.util_mem);
        let mj_per_img = power * (r.total_latency_ms / 1e3) / batch as f64 * 1e3;
        println!(
            "{:<24} {:>9.1} {:>8.1} {:>12.0} {:>12.2}",
            label,
            r.total_latency_ms,
            power,
            r.throughput_per_s(),
            mj_per_img
        );
        csv.push_str(&format!(
            "{label},{},{},{:.1},{:.2},{:.0},{:.3}\n",
            clocks.gpu_mhz,
            clocks.mem_mhz,
            r.total_latency_ms,
            power,
            r.throughput_per_s(),
            mj_per_img
        ));
        if best.as_ref().is_none_or(|(_, b)| mj_per_img < *b) {
            best = Some((label.clone(), mj_per_img));
        }
    }
    let (best_label, best_mj) = best.unwrap();
    println!("\nenergy-optimal profile: {best_label} ({best_mj:.2} mJ/image)");
    save_artifact("energy_profiles.csv", &csv);
}
