//! Extension experiment: int8 vs fp16 on the datacenter GPUs (the paper's
//! Figure 4 runs "a data type that fully utilizes the hardware" per
//! platform and footnote 5 notes the SD UNet fails int8 conversion —
//! reproduced here). Shows who actually benefits from int8's doubled peak:
//! compute-bound models gain, bandwidth-bound ones gain less.

use proof_bench::save_artifact;
use proof_core::{profile_model, MetricMode};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use rayon::prelude::*;

fn main() {
    let platform = PlatformId::A100.spec();
    println!("int8 vs fp16 on A100 (TensorRT-like, bs=128; SD at bs=4)\n");
    println!(
        "{:<20} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "Model", "fp16 (ms)", "TFLOP/s", "int8 (ms)", "TOP/s", "speedup"
    );
    let mut csv = String::from("model,fp16_ms,fp16_tflops,int8_ms,int8_tops,speedup\n");
    let rows: Vec<(u32, String)> = ModelId::ALL
        .par_iter()
        .map(|&m| {
            let batch = if m == ModelId::StableDiffusionUnet {
                4
            } else {
                128
            };
            let g = m.build(batch);
            let run = |d: DType| {
                profile_model(
                    &g,
                    &platform,
                    BackendFlavor::TrtLike,
                    &SessionConfig::new(d),
                    MetricMode::Predicted,
                )
            };
            let fp16 = run(DType::F16).expect("fp16 always converts");
            let line = match run(DType::I8) {
                Ok(int8) => format!(
                    "{:<20} | {:>10.3} {:>10.1} | {:>10.3} {:>10.1} | {:>7.2}x",
                    m.table3().name,
                    fp16.total_latency_ms,
                    fp16.achieved_gflops() / 1e3,
                    int8.total_latency_ms,
                    int8.achieved_gflops() / 1e3,
                    fp16.total_latency_ms / int8.total_latency_ms,
                ),
                Err(e) => format!(
                    "{:<20} | {:>10.3} {:>10.1} | int8 conversion FAILED ({e})",
                    m.table3().name,
                    fp16.total_latency_ms,
                    fp16.achieved_gflops() / 1e3,
                ),
            };
            (m.table3().index, line)
        })
        .collect();
    let mut rows = rows;
    rows.sort_by_key(|r| r.0);
    for (_, line) in &rows {
        println!("{line}");
    }
    for &m in &ModelId::ALL {
        let batch = if m == ModelId::StableDiffusionUnet {
            4
        } else {
            128
        };
        let g = m.build(batch);
        let fp16 = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap();
        match profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::I8),
            MetricMode::Predicted,
        ) {
            Ok(i8r) => csv.push_str(&format!(
                "{},{:.3},{:.1},{:.3},{:.1},{:.3}\n",
                m.slug(),
                fp16.total_latency_ms,
                fp16.achieved_gflops() / 1e3,
                i8r.total_latency_ms,
                i8r.achieved_gflops() / 1e3,
                fp16.total_latency_ms / i8r.total_latency_ms
            )),
            Err(_) => csv.push_str(&format!(
                "{},{:.3},{:.1},,,conversion_failed\n",
                m.slug(),
                fp16.total_latency_ms,
                fp16.achieved_gflops() / 1e3
            )),
        }
    }
    save_artifact("int8_sweep.csv", &csv);
}
