//! Regenerates paper **Table 6**: achieved roofline peaks (via the pseudo
//! MatMul+memcpy model on the TensorRT-like backend) and power at five
//! GPU/memory clock pairs on the Jetson Orin NX.

use proof_bench::save_artifact;
use proof_core::measure_achieved_peak;
use proof_hw::{ClockConfig, OrinNx, PlatformId};
use proof_ir::DType;
use proof_runtime::BackendFlavor;

fn main() {
    let orin = OrinNx::new();
    let rows = [
        (1, 918u32, 3199u32, 13.620, 87.879, 23.6),
        (2, 918, 2133, 13.601, 62.031, 21.3),
        (3, 510, 3199, 7.433, 54.002, 15.7),
        (4, 510, 2133, 7.426, 53.017, 13.6),
        (5, 510, 665, 7.359, 15.177, 11.5),
    ];
    println!("Table 6: achieved roofline peak and power vs clocks (Orin NX, fp16)\n");
    println!(
        "{:>2} {:>9} {:>9} | {:>9} {:>10} {:>8} | paper: {:>8} {:>9} {:>7}",
        "#",
        "GPU(MHz)",
        "EMC(MHz)",
        "TFLOP/s",
        "BW(GB/s)",
        "Power(W)",
        "TFLOP/s",
        "BW(GB/s)",
        "P(W)"
    );
    let mut csv = String::from(
        "row,gpu_mhz,mem_mhz,tflops,bw_gbs,power_w,paper_tflops,paper_bw,paper_power\n",
    );
    for (i, gpu, mem, p_tf, p_bw, p_w) in rows {
        let clocks = ClockConfig::new(gpu, mem);
        let platform = PlatformId::OrinNx.spec().with_clocks(clocks);
        let peak = measure_achieved_peak(&platform, BackendFlavor::TrtLike, DType::F16)
            .expect("peak measurement");
        // the peak test saturates both compute and memory phases
        let power = orin.power.power_w(&clocks, 1.0, 1.0);
        println!(
            "{i:>2} {gpu:>9} {mem:>9} | {:>9.3} {:>10.3} {:>8.1} | paper: {:>8.3} {:>9.3} {:>7.1}",
            peak.gflops / 1e3,
            peak.bw_gbs,
            power,
            p_tf,
            p_bw,
            p_w
        );
        csv.push_str(&format!(
            "{i},{gpu},{mem},{:.3},{:.3},{:.2},{p_tf},{p_bw},{p_w}\n",
            peak.gflops / 1e3,
            peak.bw_gbs,
            power
        ));
    }
    save_artifact("table6.csv", &csv);
}
