//! Regenerates paper **Table 4**: accuracy of the analytical FLOP/memory
//! prediction against the (simulated) Nsight Compute measurement, on the
//! five representative models — NVIDIA A100, fp16, batch 128 (batch 4 for
//! the huge SD-free subset stays as in the paper).

use proof_bench::{fmt_pct, pct_diff, save_artifact};
use proof_core::profile_both_modes;
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use rayon::prelude::*;

struct PaperRow {
    model: ModelId,
    /// Paper latency (ms) — shown for reference in table4.csv consumers.
    #[allow(dead_code)]
    latency_ms: f64,
    gflop: (f64, f64),  // analytical, ncu
    mem_mb: (f64, f64), // analytical, ncu
    /// Paper profiling time (s).
    #[allow(dead_code)]
    prof_s: f64,
}

fn paper_rows() -> Vec<PaperRow> {
    vec![
        PaperRow {
            model: ModelId::EfficientNetV2S,
            latency_ms: 16.644,
            gflop: (771.794, 962.575),
            mem_mb: (11669.419, 11820.696),
            prof_s: 1327.0,
        },
        PaperRow {
            model: ModelId::MobileNetV2x10,
            latency_ms: 3.894,
            gflop: (79.452, 104.492),
            mem_mb: (3521.010, 3474.114),
            prof_s: 343.0,
        },
        PaperRow {
            model: ModelId::ResNet50,
            latency_ms: 8.918,
            gflop: (1050.435, 1072.227),
            mem_mb: (7052.921, 7150.855),
            prof_s: 395.0,
        },
        PaperRow {
            model: ModelId::SwinSmall,
            latency_ms: 43.935,
            gflop: (2268.528, 2414.215),
            mem_mb: (28897.395, 31431.407),
            prof_s: 1930.0,
        },
        PaperRow {
            model: ModelId::ViTTiny,
            latency_ms: 5.308,
            gflop: (327.382, 298.195),
            mem_mb: (4059.092, 3826.516),
            prof_s: 483.0,
        },
    ]
}

fn main() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    println!("Table 4: analytical model vs simulated NCU (A100, fp16, bs=128)\n");
    println!(
        "{:<18} {:>8} {:>6} | {:>10} {:>12} | {:>10} {:>12} {:>9} | {:>9} {:>8} | paper diffs",
        "Model",
        "lat(ms)",
        "nodes",
        "GFLOP",
        "Mem(MB)",
        "ncuGFLOP",
        "ncuMem(MB)",
        "prof(s)",
        "dFLOP",
        "dMem"
    );

    // One staged-pipeline run per model: the compile/profile/map prefix is
    // shared and only the metric stages differ between the two modes.
    let rows: Vec<(String, String)> = paper_rows()
        .par_iter()
        .map(|row| {
            let g = row.model.build(128);
            let (pred, meas) =
                profile_both_modes(&g, &platform, BackendFlavor::TrtLike, &cfg)
                    .expect("profile both modes");
            let (pg, pm) = (pred.total_flops as f64 / 1e9, pred.total_memory_bytes as f64 / 1e6);
            let (mg, mm) = (meas.total_flops as f64 / 1e9, meas.total_memory_bytes as f64 / 1e6);
            let line = format!(
                "{:<18} {:>8.3} {:>6} | {:>10.1} {:>12.1} | {:>10.1} {:>12.1} {:>9.0} | {:>9} {:>8} | paper {} / {}",
                row.model.table3().name,
                pred.total_latency_ms,
                g.node_count(),
                pg,
                pm,
                mg,
                mm,
                meas.metric_collection_s,
                fmt_pct(pct_diff(pg, mg)),
                fmt_pct(pct_diff(pm, mm)),
                fmt_pct(pct_diff(row.gflop.0, row.gflop.1)),
                fmt_pct(pct_diff(row.mem_mb.0, row.mem_mb.1)),
            );
            let csv_line = format!(
                "{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1},{:.2},{:.2}\n",
                row.model.slug(),
                pred.total_latency_ms,
                pg,
                pm,
                mg,
                mm,
                meas.metric_collection_s,
                pct_diff(pred.total_flops as f64, meas.total_flops as f64),
                pct_diff(
                    pred.total_memory_bytes as f64,
                    meas.total_memory_bytes as f64
                ),
            );
            (line, csv_line)
        })
        .collect();

    let mut csv = String::from("model,latency_ms,pred_gflop,pred_mem_mb,ncu_gflop,ncu_mem_mb,prof_time_s,flop_diff_pct,mem_diff_pct\n");
    for (line, csv_line) in &rows {
        println!("{line}");
        csv.push_str(csv_line);
    }
    save_artifact("table4.csv", &csv);
    println!("\n(negative dFLOP = analytical below measured Hardware FLOP, as in the paper)");
}
