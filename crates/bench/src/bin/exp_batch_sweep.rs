//! Extension experiment: batch-size sweeps on the A100 for the ShuffleNet
//! pair — justifying the paper's choice of bs=2048 as "the batch size
//! \[that\] reached maximum throughput for both models" (Table 5), and
//! showing where the throughput knee sits for latency-sensitive serving.

use proof_bench::save_artifact;
use proof_core::sweep::{pow2_grid, sweep_batches};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};

fn main() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    println!("batch sweep on A100 (fp16): throughput saturation\n");
    for model in [
        ModelId::ShuffleNetV2x10,
        ModelId::ShuffleNetV2x10Mod,
        ModelId::ResNet50,
    ] {
        let sweep = sweep_batches(
            |b| model.build(b),
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            &pow2_grid(4096),
        )
        .expect("sweep");
        let peak = sweep.max_throughput().expect("non-empty sweep grid");
        let knee = sweep.knee(0.9).expect("non-empty sweep grid");
        println!(
            "{:<22} peak {:>7.0} img/s at bs={:<5} (90% knee at bs={}, {:.2} ms)",
            model.table3().name,
            peak.throughput_per_s,
            peak.batch,
            knee.batch,
            knee.latency_ms
        );
        save_artifact(
            &format!("batch_sweep_{}.csv", model.slug().replace('.', "_")),
            &sweep.to_csv(),
        );
    }
    println!("\n(the paper ran Table 5 at bs=2048 — the saturation region for both ShuffleNets)");
}
