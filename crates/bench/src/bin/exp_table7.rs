//! Regenerates paper **Table 7** and **Figure 8**: EfficientNetV2-T (fp16,
//! batch 128) on the Jetson Orin NX under ten power profiles, plus the
//! §4.6 procedure — pick the memory clock from the layer-wise roofline,
//! then binary-search the GPU clock under the 15 W budget.

use proof_bench::save_artifact;
use proof_core::report::chart_to_csv;
use proof_core::{profile_model, render_roofline_svg, MetricMode, SvgOptions};
use proof_hw::{ClockConfig, JetsonPowerProfile, OrinNx, PlatformId};
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};

fn run(clocks: ClockConfig) -> (f64, f64, f64) {
    let platform = PlatformId::OrinNx.spec().with_clocks(clocks);
    let g = ModelId::EfficientNetV2T.build(128);
    let r = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .expect("profile");
    (r.total_latency_ms, r.util_gpu, r.util_mem)
}

fn main() {
    let orin = OrinNx::new();
    let cc = |gpu, mem| {
        ClockConfig::new(gpu, mem)
            .with_cpus(Some(729), None)
            .with_tpc_mask(240)
    };
    // (profile label, #, clocks, paper latency ms, paper power W)
    let rows: Vec<(&str, u32, ClockConfig, f64, f64)> = vec![
        (
            "stock \"MAXN\"",
            1,
            JetsonPowerProfile::MaxN.clocks(),
            211.4,
            23.2,
        ),
        (
            "stock \"15W\"*",
            2,
            JetsonPowerProfile::Stock15W.clocks(),
            514.5,
            13.6,
        ),
        (
            "stock \"25W\"",
            3,
            JetsonPowerProfile::Stock25W.clocks(),
            462.1,
            14.2,
        ),
        ("comparison", 4, cc(918, 3199), 211.3, 22.5),
        ("comparison", 5, cc(918, 2133), 232.7, 19.2),
        ("comparison", 6, cc(918, 665), 568.0, 12.4),
        ("comparison", 7, cc(612, 3199), 317.5, 16.6),
        ("comparison", 8, cc(612, 665), 584.6, 10.9),
        ("comparison", 9, cc(510, 3199), 378.1, 15.1),
        ("optimal (ours)", 10, cc(612, 2133), 320.1, 14.7),
    ];

    println!("Table 7: EfficientNetV2-T (fp16, bs=128) under power profiles (Orin NX)\n");
    println!(
        "{:<15} {:>2} {:>9} {:>5} {:>5} {:>5} | {:>9} {:>8} | paper: {:>8} {:>6}",
        "Profile", "#", "CPU", "GPU", "EMC", "TPC", "lat(ms)", "P(W)", "lat(ms)", "P(W)"
    );
    let mut csv = String::from(
        "row,profile,gpu_mhz,mem_mhz,tpcs,latency_ms,power_w,paper_latency_ms,paper_power_w\n",
    );
    for (label, i, clocks, p_lat, p_w) in &rows {
        let (lat, ug, um) = run(*clocks);
        let power = orin.power.power_w(clocks, ug, um);
        let cpu = clocks
            .cpu_mhz
            .iter()
            .map(|c| c.map(|v| v.to_string()).unwrap_or_else(|| "off".into()))
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{label:<15} {i:>2} {cpu:>9} {:>5} {:>5} {:>5} | {lat:>9.1} {power:>8.1} | paper: {p_lat:>8.1} {p_w:>6.1}",
            clocks.gpu_mhz,
            clocks.mem_mhz,
            clocks.enabled_tpcs(4)
        );
        csv.push_str(&format!(
            "{i},{label},{},{},{},{lat:.1},{power:.2},{p_lat},{p_w}\n",
            clocks.gpu_mhz,
            clocks.mem_mhz,
            clocks.enabled_tpcs(4)
        ));
    }
    save_artifact("table7.csv", &csv);

    // ---- the §4.6 selection procedure ----
    // Figure 8: layer-wise roofline at max clocks with the two candidate
    // memory-clock bandwidth lines overlaid
    let maxn = PlatformId::OrinNx.spec().with_clocks(cc(918, 3199));
    let g = ModelId::EfficientNetV2T.build(128);
    let report = profile_model(
        &g,
        &maxn,
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16),
        MetricMode::Predicted,
    )
    .unwrap();
    let bw_2133 = maxn.with_clocks(cc(918, 2133)).achievable_bw() / 1e9;
    let bw_665 = maxn.with_clocks(cc(918, 665)).achievable_bw() / 1e9;
    let mut chart = report.layerwise_chart("EfficientNetV2-T on Orin NX (fp16, bs=128)");
    chart.ceiling = chart
        .ceiling
        .with_extra_bw("EMC 2133", bw_2133)
        .with_extra_bw("EMC 665", bw_665);
    // how many layers each memory downclock would slow (above the new line)
    for (label, bw) in [("2133 MHz", bw_2133), ("665 MHz", bw_665)] {
        let affected = chart
            .points
            .iter()
            .filter(|p| p.achieved_gflops() > bw * p.intensity())
            .count();
        println!(
            "fig8: lowering EMC to {label} affects {affected}/{} layers",
            chart.points.len()
        );
    }
    save_artifact(
        "fig8_effnetv2t_orin.svg",
        &render_roofline_svg(&chart, &SvgOptions::default()),
    );
    save_artifact("fig8_effnetv2t_orin.csv", &chart_to_csv(&chart));

    // binary search the GPU clock under 15 W at EMC 2133 (paper finds 612)
    let found = orin.search_gpu_clock_under_budget(2133, 15.0, |clocks| {
        let (_, ug, um) = run(clocks);
        (ug, um)
    });
    println!(
        "\n15 W budget search at EMC 2133: GPU clock = {:?} MHz (paper: 612)",
        found
    );
}
