//! Regenerates the ShuffleNetV2 case study (paper §4.5): **Table 5**
//! (original vs modified model at batch 1/128/2048) and **Figure 6** (the
//! two layer-wise rooflines at batch 2048, prediction mode).
//!
//! ImageNet accuracies are echoed from the paper (68.9 % → 70.1 %): training
//! is out of scope here; every performance column is reproduced.

use proof_bench::save_artifact;
use proof_core::report::chart_to_csv;
use proof_core::roofline::LayerCategory;
use proof_core::{profile_model, render_roofline_svg, MetricMode, SvgOptions};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};

struct Row {
    batch: u64,
    gflop: f64,
    latency_ms: f64,
    throughput: f64,
    gflops: f64,
    gbs: f64,
}

fn measure(model: ModelId, batch: u64) -> Row {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = model.build(batch);
    let r = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .expect("profile");
    Row {
        batch,
        gflop: r.total_flops as f64 / 1e9,
        latency_ms: r.total_latency_ms,
        throughput: r.throughput_per_s(),
        gflops: r.achieved_gflops(),
        gbs: r.achieved_bw_gbs(),
    }
}

fn main() {
    println!("Table 5: original vs modified ShuffleNetV2 x1.0 on A100 (fp16)\n");
    println!(
        "{:<9} {:>9} {:>8} {:>6} {:>9} {:>9} {:>12} {:>11} {:>9} {:>8}",
        "Model",
        "Params(M)",
        "Top-1(%)",
        "bs",
        "GFLOP",
        "lat(ms)",
        "thr(img/s)",
        "GFLOP/s",
        "GB/s",
        "speedup"
    );
    let mut table: Vec<(&str, f64, f64, Vec<Row>)> = Vec::new();
    for (label, model, acc) in [
        ("Original", ModelId::ShuffleNetV2x10, 68.9),
        ("Modified", ModelId::ShuffleNetV2x10Mod, 70.1),
    ] {
        let params_m = model.build(1).param_count() as f64 / 1e6;
        let rows: Vec<Row> = [1u64, 128, 2048]
            .iter()
            .map(|&b| measure(model, b))
            .collect();
        table.push((label, params_m, acc, rows));
    }
    let mut csv = String::from("model,batch,gflop,latency_ms,throughput,gflops,gbs,speedup\n");
    for i in 0..table.len() {
        let (label, params, acc, rows) = &table[i];
        for (j, r) in rows.iter().enumerate() {
            let speedup = if i == 1 {
                let orig = &table[0].3[j];
                format!("{:.2}x", orig.latency_ms / r.latency_ms)
            } else {
                "-".to_string()
            };
            println!(
                "{:<9} {:>9.3} {:>8.1} {:>6} {:>9.3} {:>9.3} {:>12.0} {:>11.1} {:>9.1} {:>8}",
                if j == 0 { label } else { "" },
                if j == 0 { *params } else { f64::NAN },
                if j == 0 { *acc } else { f64::NAN },
                r.batch,
                r.gflop,
                r.latency_ms,
                r.throughput,
                r.gflops,
                r.gbs,
                speedup
            );
            csv.push_str(&format!(
                "{label},{},{:.3},{:.3},{:.0},{:.1},{:.1},{speedup}\n",
                r.batch, r.gflop, r.latency_ms, r.throughput, r.gflops, r.gbs
            ));
        }
    }
    save_artifact("table5.csv", &csv);

    // paper headline: +64.45% throughput at bs=2048 (30.1 ms vs 49.5 ms)
    let orig = &table[0].3[2];
    let modi = &table[1].3[2];
    println!(
        "\nbs=2048 throughput gain: {:+.2}% (paper: +64.45%) | latency {:.1} ms vs {:.1} ms (paper: 30.1 vs 49.5)",
        100.0 * (modi.throughput / orig.throughput - 1.0),
        modi.latency_ms,
        orig.latency_ms
    );

    // Figure 6: layer-wise rooflines at bs=2048 (prediction mode, as in the
    // paper), plus the share of time in transpose/data-copy layers
    for (panel, model) in [
        ("a", ModelId::ShuffleNetV2x10),
        ("b", ModelId::ShuffleNetV2x10Mod),
    ] {
        let g = model.build(2048);
        let platform = PlatformId::A100.spec();
        let r = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap();
        let shuffle_share: f64 = r
            .layers
            .iter()
            .filter(|l| {
                matches!(
                    l.category,
                    LayerCategory::Transpose | LayerCategory::DataCopy
                )
            })
            .map(|l| l.latency_us)
            .sum::<f64>()
            / (r.total_latency_ms * 1e3);
        println!(
            "fig6({panel}) {}: transpose+copy layers = {:.1}% of latency",
            model.slug(),
            100.0 * shuffle_share
        );
        let chart = r.layerwise_chart(&format!(
            "({panel}) {} on A100 (fp16, bs=2048)",
            model.table3().name
        ));
        let slug = model.slug().replace('.', "_");
        save_artifact(
            &format!("fig6{panel}_{slug}.svg"),
            &render_roofline_svg(&chart, &SvgOptions::default()),
        );
        save_artifact(&format!("fig6{panel}_{slug}.csv"), &chart_to_csv(&chart));
    }
}
