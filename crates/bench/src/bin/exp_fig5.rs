//! Regenerates paper **Figure 5**: layer-wise roofline analysis of
//! ResNet-50, ViT tiny, EfficientNet B4 and EfficientNetV2-T on the A100
//! (fp16, batch 128). Prints each model's end-to-end TFLOP/s — the paper's
//! §4.4 comparison is EfficientNet B4 ≈ 17.2 TFLOP/s vs EfficientNetV2-T ≈
//! 37.6 TFLOP/s, the depth-wise-convolution story.

use proof_bench::save_artifact;
use proof_core::report::chart_to_csv;
use proof_core::roofline::LayerCategory;
use proof_core::{profile_model, render_roofline_svg, MetricMode, SvgOptions};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};

fn main() {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let subjects = [
        ("a", ModelId::ResNet50),
        ("b", ModelId::ViTTiny),
        ("c", ModelId::EfficientNetB4),
        ("d", ModelId::EfficientNetV2T),
    ];
    println!("Figure 5: layer-wise rooflines on A100 (fp16, bs=128)\n");
    for (panel, model) in subjects {
        let g = model.build(128);
        let report = profile_model(
            &g,
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Predicted,
        )
        .expect("profile");
        let chart = report.layerwise_chart(&format!(
            "({panel}) {} on A100 (fp16, bs=128)",
            model.table3().name
        ));
        // dominant category by latency (the paper's narrative hook)
        let mut by_cat: std::collections::HashMap<LayerCategory, f64> = Default::default();
        for l in &report.layers {
            *by_cat.entry(l.category).or_default() += l.latency_us;
        }
        let dominant = by_cat
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, t)| {
                format!(
                    "{} ({:.1}%)",
                    c.label(),
                    100.0 * t / (report.total_latency_ms * 1e3)
                )
            })
            .unwrap_or_default();
        println!(
            "({panel}) {:<18} {:>8.3} ms | {:>7.3} TFLOP/s | {:>7.1} GB/s | {} layers | busiest: {}",
            model.table3().name,
            report.total_latency_ms,
            report.achieved_gflops() / 1e3,
            report.achieved_bw_gbs(),
            report.layers.len(),
            dominant
        );
        let slug = model.slug().replace('.', "_");
        save_artifact(
            &format!("fig5{panel}_{slug}.svg"),
            &render_roofline_svg(&chart, &SvgOptions::default()),
        );
        save_artifact(&format!("fig5{panel}_{slug}.csv"), &chart_to_csv(&chart));
    }
    println!("\npaper reference: (c) EfficientNet B4 17.242 TFLOP/s, (d) EfficientNetV2-T 37.586 TFLOP/s");
}
