//! # proof-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§4):
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_table3` | Table 3 — model inventory (nodes/params/GFLOP) |
//! | `exp_table4` | Table 4 — analytical vs measured FLOP/memory + prof. time |
//! | `exp_fig4` | Figure 4 — end-to-end rooflines, all models × 7 platforms |
//! | `exp_fig5` | Figure 5 — layer-wise rooflines on A100 |
//! | `exp_table5` | Table 5 + Figures 6/7 — the ShuffleNetV2 case study |
//! | `exp_table6` | Table 6 — achieved roofline peaks & power vs clocks |
//! | `exp_table7` | Table 7 + Figure 8 — power profiles & the 15 W search |
//! | `exp_ablation` | design-choice ablations (fusion-aware memory, strided-conv rule) |
//! | `exp_int8` | extension: int8 vs fp16 sweep (incl. the SD conversion failure) |
//! | `exp_energy` | extension: energy/inference across the Table 7 power profiles |
//! | `exp_batch_sweep` | extension: throughput-saturation sweeps behind Table 5's bs=2048 |
//!
//! Each binary prints a paper-style table to stdout and writes CSV/SVG
//! artifacts under `results/`.

use std::path::{Path, PathBuf};

/// Output directory for CSV/SVG artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Save an artifact and report where it went.
pub fn save_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write artifact");
    println!("  wrote {}", path.display());
}

/// Signed percentage difference of `ours` relative to `reference`.
pub fn pct_diff(ours: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return 0.0;
    }
    100.0 * (ours - reference) / reference
}

/// Format a signed percentage like the paper ("-19.82%", "+1.35%").
pub fn fmt_pct(p: f64) -> String {
    format!("{}{:.2}%", if p >= 0.0 { "+" } else { "" }, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_signs() {
        assert!((pct_diff(80.0, 100.0) + 20.0).abs() < 1e-12);
        assert!((pct_diff(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(pct_diff(5.0, 0.0), 0.0);
    }

    #[test]
    fn fmt_pct_matches_paper_style() {
        assert_eq!(fmt_pct(-19.824), "-19.82%");
        assert_eq!(fmt_pct(1.347), "+1.35%");
    }

    #[test]
    fn results_dir_is_creatable() {
        assert!(results_dir().is_dir());
    }

    /// Guardrail for the `obs_overhead` bench's premise: collecting spans
    /// must not change what the pipeline computes, and the tracing path
    /// must stay far below report granularity (reports quote milliseconds;
    /// a run opens ~6 spans).
    #[test]
    fn tracing_overhead_is_unmeasurable_at_report_granularity() {
        use proof_core::{profile_model, MetricMode};
        use proof_hw::PlatformId;
        use proof_ir::DType;
        use proof_models::ModelId;
        use proof_runtime::{BackendFlavor, SessionConfig};
        use std::time::Instant;

        let profile_once = || {
            let g = ModelId::MobileNetV2x05.build(1);
            let platform = PlatformId::A100.spec();
            let cfg = SessionConfig::new(DType::F16);
            profile_model(
                &g,
                &platform,
                BackendFlavor::TrtLike,
                &cfg,
                MetricMode::Predicted,
            )
            .unwrap()
            .to_json()
        };
        let time_once = || {
            let t = Instant::now();
            let json = profile_once();
            (t.elapsed(), json)
        };

        // default tracer: disabled no-op collector
        let (_, noop_json) = time_once();
        let noop_best = (0..5).map(|_| time_once().0).min().unwrap();

        // same pipeline with every span recorded into the shared ring
        let (_, ring) = proof_obs::shared_ring_tracer();
        let (_, ring_json) = time_once();
        let ring_best = (0..5).map(|_| time_once().0).min().unwrap();
        ring.clear();

        // identical output bytes: observation never perturbs the result
        assert_eq!(noop_json, ring_json);
        // generous margin — this catches pathological regressions (a lock
        // or allocation on every kernel), not scheduler noise
        assert!(
            ring_best <= noop_best * 10 + std::time::Duration::from_millis(5),
            "ring-collector run {ring_best:?} vastly slower than no-op {noop_best:?}"
        );
    }
}
