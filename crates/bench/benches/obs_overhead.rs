//! Tracing-overhead bench: `profile_model` with the default disabled
//! tracer (no-op collector) vs the shared ring collector. The disabled
//! path should be indistinguishable from the seed's untraced pipeline; the
//! ring adds a handful of lock-protected pushes per run.
//!
//! Group order matters: the no-op group runs first, because installing the
//! shared ring tracer is process-global and irreversible.

use criterion::{criterion_group, criterion_main, Criterion};
use proof_core::{profile_model, MetricMode};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use std::hint::black_box;

fn profile_once() {
    let g = ModelId::MobileNetV2x05.build(1);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    black_box(
        profile_model(
            black_box(&g),
            &platform,
            BackendFlavor::TrtLike,
            &cfg,
            MetricMode::Predicted,
        )
        .unwrap(),
    );
}

fn bench_noop_collector(c: &mut Criterion) {
    assert!(
        !proof_obs::global().collector_enabled(),
        "no-op group must run before the ring tracer is installed"
    );
    c.bench_function("obs/profile_mobilenetv2_noop_collector", |b| {
        b.iter(profile_once)
    });
}

fn bench_ring_collector(c: &mut Criterion) {
    let (_, ring) = proof_obs::shared_ring_tracer();
    c.bench_function("obs/profile_mobilenetv2_ring_collector", |b| {
        b.iter(|| {
            let trace = proof_obs::new_trace_id();
            let span = proof_obs::span_in(trace, "bench");
            profile_once();
            drop(span);
        })
    });
    ring.clear();
}

criterion_group!(noop, bench_noop_collector);
criterion_group!(ring, bench_ring_collector);
criterion_main!(noop, ring);
