//! Criterion benches for the analytical model — the quantitative backing
//! for the paper's claim that prediction has "negligible analytical
//! overhead" (a few milliseconds here vs the minutes of counter-replay
//! profiling measured in Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proof_core::{AnalyzeRepr, OptimizedRepr};
use proof_ir::DType;
use proof_models::ModelId;
use std::hint::black_box;

fn bench_analyze_repr(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze_repr");
    for (name, model, batch) in [
        ("resnet50_bs128", ModelId::ResNet50, 128),
        ("vit_base_bs128", ModelId::ViTBase, 128),
        ("swin_small_bs128", ModelId::SwinSmall, 128),
        ("sd_unet_bs4", ModelId::StableDiffusionUnet, 4),
    ] {
        let graph = model.build(batch);
        g.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| {
                let a = AnalyzeRepr::new(black_box(graph), DType::F16);
                black_box(a.total())
            })
        });
    }
    g.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_build");
    for (name, model) in [
        ("resnet50", ModelId::ResNet50),
        ("swin_small", ModelId::SwinSmall),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(model.build(black_box(8)))));
    }
    g.finish();
}

fn bench_fused_cost(c: &mut Criterion) {
    let graph = ModelId::ResNet50.build(128);
    c.bench_function("optimized_repr_total_cost/resnet50_bs128", |b| {
        b.iter(|| {
            let repr = OptimizedRepr::new(AnalyzeRepr::new(black_box(&graph), DType::F16));
            black_box(repr.total_cost())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analyze_repr, bench_model_build, bench_fused_cost
}
criterion_main!(benches);
