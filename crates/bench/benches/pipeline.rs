//! Criterion benches over the full PRoof pipeline stages: backend fusion,
//! compilation, layer mapping, end-to-end profiling (predicted and
//! measured), the individual staged-pipeline stages, and SVG rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use proof_core::{
    map_layers, prepare_stages, profile_model, render_roofline_svg, run_metric_stages,
    stage_assemble, stage_builtin_profile, stage_map, stage_metrics, AnalyzeRepr, MetricMode,
    OptimizedRepr, SvgOptions,
};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{compile, fusion, BackendFlavor, SessionConfig};
use std::hint::black_box;

fn bench_fusion(c: &mut Criterion) {
    let g = ModelId::SwinSmall.build(8);
    c.bench_function("fusion/swin_small_trt_policy", |b| {
        b.iter(|| black_box(fusion::fuse(black_box(&g), &fusion::FusionPolicy::trt())))
    });
}

fn bench_compile(c: &mut Criterion) {
    let g = ModelId::ResNet50.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    c.bench_function("compile/resnet50_a100", |b| {
        b.iter(|| {
            black_box(compile(black_box(&g), BackendFlavor::TrtLike, &platform, &cfg).unwrap())
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let g = ModelId::ViTTiny.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let compiled = compile(&g, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
    let profile = compiled.builtin_profile();
    c.bench_function("mapping/vit_tiny_trt_with_myelin", |b| {
        b.iter(|| {
            let repr = OptimizedRepr::new(AnalyzeRepr::new(&g, DType::F16));
            black_box(map_layers(
                repr,
                black_box(&profile),
                BackendFlavor::TrtLike,
            ))
        })
    });
}

fn bench_full_profile(c: &mut Criterion) {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::ResNet50.build(8);
    c.bench_function("profile/resnet50_predicted", |b| {
        b.iter(|| {
            black_box(
                profile_model(
                    &g,
                    &platform,
                    BackendFlavor::TrtLike,
                    &cfg,
                    MetricMode::Predicted,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("profile/resnet50_measured", |b| {
        b.iter(|| {
            black_box(
                profile_model(
                    &g,
                    &platform,
                    BackendFlavor::TrtLike,
                    &cfg,
                    MetricMode::Measured,
                )
                .unwrap(),
            )
        })
    });
}

/// Per-stage costs of the staged pipeline on pre-built upstream artifacts,
/// plus the marginal cost of a second mode off a cached prefix.
fn bench_pipeline_stages(c: &mut Criterion) {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::ResNet50.build(8);
    let prep = prepare_stages(&g, &platform, BackendFlavor::TrtLike, &cfg).unwrap();
    let compiled = &prep.compiled;
    let profile = &prep.profile;
    let mapping = &prep.mapping;

    c.bench_function("stage/builtin_profile_resnet50", |b| {
        b.iter(|| black_box(stage_builtin_profile(black_box(compiled))))
    });
    c.bench_function("stage/map_resnet50", |b| {
        b.iter(|| {
            black_box(stage_map(
                &g,
                black_box(profile),
                BackendFlavor::TrtLike,
                &cfg,
            ))
        })
    });
    c.bench_function("stage/metrics_resnet50_predicted", |b| {
        b.iter(|| {
            black_box(stage_metrics(
                black_box(compiled),
                black_box(mapping),
                MetricMode::Predicted,
            ))
        })
    });
    c.bench_function("stage/metrics_resnet50_measured", |b| {
        b.iter(|| {
            black_box(stage_metrics(
                black_box(compiled),
                black_box(mapping),
                MetricMode::Measured,
            ))
        })
    });
    let metrics = stage_metrics(compiled, mapping, MetricMode::Predicted);
    c.bench_function("stage/assemble_resnet50", |b| {
        b.iter(|| {
            black_box(stage_assemble(
                black_box(compiled),
                black_box(profile),
                black_box(mapping),
                black_box(&metrics),
            ))
        })
    });
    // the stage-cache fast path: everything after a prefix hit
    c.bench_function("stage/metric_suffix_resnet50_predicted", |b| {
        b.iter(|| black_box(run_metric_stages(black_box(&prep), MetricMode::Predicted).unwrap()))
    });
}

fn bench_svg(c: &mut Criterion) {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::SwinTiny.build(8);
    let report = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .unwrap();
    let chart = report.layerwise_chart("bench");
    c.bench_function("svg_render/swin_tiny_layerwise", |b| {
        b.iter(|| {
            black_box(render_roofline_svg(
                black_box(&chart),
                &SvgOptions::default(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fusion, bench_compile, bench_mapping, bench_full_profile, bench_pipeline_stages, bench_svg
}
criterion_main!(benches);
