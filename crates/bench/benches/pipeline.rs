//! Criterion benches over the full PRoof pipeline stages: backend fusion,
//! compilation, layer mapping, end-to-end profiling (predicted and
//! measured) and SVG rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use proof_core::{
    map_layers, profile_model, render_roofline_svg, AnalyzeRepr, MetricMode, OptimizedRepr,
    SvgOptions,
};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{compile, fusion, BackendFlavor, SessionConfig};
use std::hint::black_box;

fn bench_fusion(c: &mut Criterion) {
    let g = ModelId::SwinSmall.build(8);
    c.bench_function("fusion/swin_small_trt_policy", |b| {
        b.iter(|| black_box(fusion::fuse(black_box(&g), &fusion::FusionPolicy::trt())))
    });
}

fn bench_compile(c: &mut Criterion) {
    let g = ModelId::ResNet50.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    c.bench_function("compile/resnet50_a100", |b| {
        b.iter(|| {
            black_box(compile(black_box(&g), BackendFlavor::TrtLike, &platform, &cfg).unwrap())
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let g = ModelId::ViTTiny.build(8);
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let compiled = compile(&g, BackendFlavor::TrtLike, &platform, &cfg).unwrap();
    let profile = compiled.builtin_profile();
    c.bench_function("mapping/vit_tiny_trt_with_myelin", |b| {
        b.iter(|| {
            let repr = OptimizedRepr::new(AnalyzeRepr::new(&g, DType::F16));
            black_box(map_layers(
                repr,
                black_box(&profile),
                BackendFlavor::TrtLike,
            ))
        })
    });
}

fn bench_full_profile(c: &mut Criterion) {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::ResNet50.build(8);
    c.bench_function("profile/resnet50_predicted", |b| {
        b.iter(|| {
            black_box(
                profile_model(
                    &g,
                    &platform,
                    BackendFlavor::TrtLike,
                    &cfg,
                    MetricMode::Predicted,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("profile/resnet50_measured", |b| {
        b.iter(|| {
            black_box(
                profile_model(
                    &g,
                    &platform,
                    BackendFlavor::TrtLike,
                    &cfg,
                    MetricMode::Measured,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_svg(c: &mut Criterion) {
    let platform = PlatformId::A100.spec();
    let cfg = SessionConfig::new(DType::F16);
    let g = ModelId::SwinTiny.build(8);
    let report = profile_model(
        &g,
        &platform,
        BackendFlavor::TrtLike,
        &cfg,
        MetricMode::Predicted,
    )
    .unwrap();
    let chart = report.layerwise_chart("bench");
    c.bench_function("svg_render/swin_tiny_layerwise", |b| {
        b.iter(|| {
            black_box(render_roofline_svg(
                black_box(&chart),
                &SvgOptions::default(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fusion, bench_compile, bench_mapping, bench_full_profile, bench_svg
}
criterion_main!(benches);
