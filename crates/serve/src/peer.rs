//! HTTP transport for the store's remote-peer tier.
//!
//! `proof-store` defines [`PeerClient`] without any transport; this is the
//! implementation over proof-serve's own `/cache/<key>` surface, so every
//! daemon doubles as a cache peer for every other daemon. Requests carry a
//! short timeout — a slow peer must cost less than the rebuild it is
//! trying to save — and one attempt only: the store's degradation counters
//! make peer flakiness visible, the local build makes it harmless.

use crate::client::request_full_timeout;
use proof_store::{ArtifactKey, PeerClient, TierError};
use std::net::SocketAddr;
use std::time::Duration;

/// A peer daemon's cache endpoint.
pub struct HttpPeer {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpPeer {
    pub fn new(addr: SocketAddr, timeout: Duration) -> HttpPeer {
        HttpPeer { addr, timeout }
    }
}

impl PeerClient for HttpPeer {
    fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    fn fetch(&self, key: &ArtifactKey) -> Result<Option<String>, TierError> {
        let reply = request_full_timeout(
            self.addr,
            "GET",
            &format!("/cache/{key}"),
            None,
            Some(self.timeout),
        )
        .map_err(|e| TierError::Unavailable(format!("{}: {e}", self.addr)))?;
        match reply.status {
            200 => Ok(Some(reply.body)),
            404 => Ok(None),
            429 | 503 => Err(TierError::Busy),
            s => Err(TierError::Unavailable(format!(
                "{}: unexpected status {s}",
                self.addr
            ))),
        }
    }

    fn publish(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError> {
        let reply = request_full_timeout(
            self.addr,
            "PUT",
            &format!("/cache/{key}"),
            Some(artifact),
            Some(self.timeout),
        )
        .map_err(|e| TierError::Unavailable(format!("{}: {e}", self.addr)))?;
        match reply.status {
            200 | 201 => Ok(()),
            429 | 503 => Err(TierError::Busy),
            s => Err(TierError::Unavailable(format!(
                "{}: unexpected status {s}",
                self.addr
            ))),
        }
    }
}
