//! Typed analysis-job specification, canonicalization, and cache keys.
//!
//! A job arrives as loosely-typed JSON (aliases allowed: `"trt"`,
//! `"tensorrt"`, `"f16"`, ...). Parsing normalizes it into [`AnalysisJob`];
//! re-serializing that into sorted-key compact JSON gives a *canonical spec*
//! that is independent of field order and alias spelling, so hashing it
//! yields a stable content address for the artifact cache.

use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use serde_json::{Map, Value};

/// The default simulation seed (mirrors `SessionConfig::default`).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Fully-resolved job specification. Two specs that differ in any field —
/// including `seed` — get distinct cache keys. `timeout_ms` and
/// `trace_parent` are the exceptions: they are execution/observability
/// metadata (how long the submitter will wait; which distributed trace the
/// work belongs to), not artifact identity, so they are deliberately
/// excluded from the canonical spec and every cache key — the same work
/// under a different deadline or trace must still coalesce onto one
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisJob {
    pub model: ModelId,
    pub backend: BackendFlavor,
    pub hardware: PlatformId,
    pub batch: u64,
    pub dtype: DType,
    pub mode: proof_core::MetricMode,
    pub seed: u64,
    /// Per-job deadline override; `None` defers to the server default.
    pub timeout_ms: Option<u64>,
    /// Distributed trace context from the submitter (`"trace:span"` in the
    /// spec, mirroring the `X-Proof-Trace` header): the job records its
    /// spans under this trace id instead of allocating a fresh one.
    pub trace_parent: Option<(u64, u64)>,
}

/// Canonical CLI-style token for a platform (round-trips via
/// `PlatformId::parse`, which ignores separators).
pub fn platform_slug(p: PlatformId) -> &'static str {
    match p {
        PlatformId::A100 => "a100",
        PlatformId::Rtx4090 => "rtx-4090",
        PlatformId::Xeon6330 => "xeon-6330",
        PlatformId::XavierNx => "xavier-nx",
        PlatformId::OrinNx => "orin-nx",
        PlatformId::RaspberryPi4 => "raspberry-pi-4",
        PlatformId::Npu3720 => "npu-3720",
    }
}

fn parse_dtype(s: &str) -> Option<DType> {
    match s.to_ascii_lowercase().as_str() {
        "fp32" | "f32" | "float32" => Some(DType::F32),
        "fp16" | "f16" | "float16" => Some(DType::F16),
        "bf16" | "bfloat16" => Some(DType::BF16),
        "int8" | "i8" => Some(DType::I8),
        _ => None,
    }
}

fn parse_mode(s: &str) -> Option<proof_core::MetricMode> {
    match s.to_ascii_lowercase().as_str() {
        "predicted" | "predict" | "analytical" => Some(proof_core::MetricMode::Predicted),
        "measured" | "measure" | "counters" => Some(proof_core::MetricMode::Measured),
        _ => None,
    }
}

fn mode_token(m: proof_core::MetricMode) -> &'static str {
    match m {
        proof_core::MetricMode::Predicted => "predicted",
        proof_core::MetricMode::Measured => "measured",
    }
}

fn str_field<'a>(obj: &'a Map<String, Value>, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.as_str())),
        Some(other) => Err(format!("field '{key}' must be a string, got {other}")),
    }
}

fn u64_field(obj: &Map<String, Value>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer, got {v}")),
    }
}

impl AnalysisJob {
    /// Parse a request body. `model` and `hardware` are required; everything
    /// else has a sensible default (backend: the platform's native flavor,
    /// batch 1, fp16, predicted, [`DEFAULT_SEED`]).
    pub fn from_value(v: &Value) -> Result<AnalysisJob, String> {
        let obj = match v {
            Value::Object(m) => m,
            _ => return Err("job spec must be a JSON object".to_string()),
        };
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "model"
                    | "backend"
                    | "hardware"
                    | "platform"
                    | "batch"
                    | "dtype"
                    | "precision"
                    | "mode"
                    | "seed"
                    | "timeout_ms"
                    | "trace_parent"
            ) {
                return Err(format!("unknown field '{key}' in job spec"));
            }
        }
        let model_s =
            str_field(obj, "model")?.ok_or_else(|| "missing required field 'model'".to_string())?;
        let model = ModelId::parse(model_s)
            .ok_or_else(|| format!("unknown model '{model_s}' (see GET /models)"))?;
        let hw_s = str_field(obj, "hardware")?
            .or(str_field(obj, "platform")?)
            .ok_or_else(|| "missing required field 'hardware'".to_string())?;
        let hardware =
            PlatformId::parse(hw_s).ok_or_else(|| format!("unknown hardware platform '{hw_s}'"))?;
        let backend = match str_field(obj, "backend")? {
            Some(s) => BackendFlavor::parse(s).ok_or_else(|| format!("unknown backend '{s}'"))?,
            None => BackendFlavor::for_platform(&hardware.spec()),
        };
        let dtype_s = str_field(obj, "dtype")?.or(str_field(obj, "precision")?);
        let dtype = match dtype_s {
            Some(s) => parse_dtype(s).ok_or_else(|| format!("unknown dtype '{s}'"))?,
            None => DType::F16,
        };
        let mode = match str_field(obj, "mode")? {
            Some(s) => parse_mode(s).ok_or_else(|| format!("unknown mode '{s}'"))?,
            None => proof_core::MetricMode::Predicted,
        };
        let batch = u64_field(obj, "batch")?.unwrap_or(1);
        if batch == 0 || batch > 1 << 20 {
            return Err(format!("batch {batch} out of range [1, 2^20]"));
        }
        let seed = u64_field(obj, "seed")?.unwrap_or(DEFAULT_SEED);
        let timeout_ms = u64_field(obj, "timeout_ms")?;
        if timeout_ms == Some(0) {
            return Err("timeout_ms must be positive".to_string());
        }
        let trace_parent = match str_field(obj, "trace_parent")? {
            Some(s) => Some(
                crate::http::parse_trace_header(s)
                    .ok_or_else(|| format!("bad trace_parent '{s}' (expected 'trace:span')"))?,
            ),
            None => None,
        };
        Ok(AnalysisJob {
            model,
            backend,
            hardware,
            batch,
            dtype,
            mode,
            seed,
            timeout_ms,
            trace_parent,
        })
    }

    /// The fully-resolved spec as a JSON object (canonical tokens, all
    /// defaults filled in). Keys serialize sorted, so this is canonical.
    /// `timeout_ms` and `trace_parent` are excluded on purpose — see the
    /// type docs.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("model".to_string(), Value::String(self.model.slug().into()));
        m.insert(
            "backend".to_string(),
            Value::String(self.backend.name().into()),
        );
        m.insert(
            "hardware".to_string(),
            Value::String(platform_slug(self.hardware).into()),
        );
        m.insert("batch".to_string(), Value::from(self.batch));
        m.insert(
            "dtype".to_string(),
            Value::String(self.dtype.short_name().into()),
        );
        m.insert(
            "mode".to_string(),
            Value::String(mode_token(self.mode).into()),
        );
        m.insert("seed".to_string(), Value::from(self.seed));
        Value::Object(m)
    }

    /// Compact canonical JSON of the resolved spec (sorted keys).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("canonical spec")
    }

    /// Content address of this job's artifact: FNV-1a/64 over the canonical
    /// JSON, hex-encoded. Field order and alias spelling in the original
    /// request cannot affect it; the seed (and every other field) does.
    pub fn cache_key(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// The runtime session configuration this spec resolves to.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::new(self.dtype).with_seed(self.seed)
    }

    /// Key of this spec's mode-independent pipeline prefix. Everything that
    /// feeds compile/profile/map participates — including the seed, which
    /// shapes the built-in profiler's simulated latency noise — while `mode`
    /// deliberately does not: it only affects the metric stage, which is
    /// exactly the reuse the stage cache exists to exploit.
    pub fn stage_cache_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.model.slug(),
            self.backend.name(),
            platform_slug(self.hardware),
            self.batch,
            self.dtype.short_name(),
            self.seed
        )
    }

    /// Build this spec's pipeline prefix (compile + built-in profile + map).
    pub fn prepare(&self) -> Result<proof_core::PreparedStages, proof_core::ProofError> {
        self.prepare_ctx(&proof_core::RunCtx::unbounded(self.seed))
    }

    /// [`AnalysisJob::prepare`] under a [`proof_core::RunCtx`] (deadline +
    /// fault checkpoints between stages).
    pub fn prepare_ctx(
        &self,
        ctx: &proof_core::RunCtx,
    ) -> Result<proof_core::PreparedStages, proof_core::ProofError> {
        let graph = self.model.build(self.batch);
        let platform = self.hardware.spec();
        proof_core::prepare_stages_ctx(&graph, &platform, self.backend, &self.session_config(), ctx)
    }

    /// Run the full profiling pipeline for this spec.
    pub fn execute(&self) -> Result<proof_core::ProfileReport, proof_core::ProofError> {
        let graph = self.model.build(self.batch);
        let platform = self.hardware.spec();
        proof_core::profile_model(
            &graph,
            &platform,
            self.backend,
            &self.session_config(),
            self.mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<AnalysisJob, String> {
        AnalysisJob::from_value(&serde_json::from_str(s).unwrap())
    }

    #[test]
    fn cache_key_ignores_field_order_and_aliases() {
        let a = parse(r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"f16","seed":7}"#).unwrap();
        let b = parse(r#"{"seed":7,"dtype":"fp16","batch":8,"backend":"tensorrt","platform":"A100","model":"resnet-50"}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn timeout_is_execution_metadata_not_identity() {
        // identical work under different deadlines must share one artifact:
        // timeout_ms stays out of the canonical spec and the cache key
        let a = parse(r#"{"model":"resnet-50","hardware":"a100","timeout_ms":250}"#).unwrap();
        let b = parse(r#"{"model":"resnet-50","hardware":"a100"}"#).unwrap();
        assert_eq!(a.timeout_ms, Some(250));
        assert_eq!(b.timeout_ms, None);
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","timeout_ms":0}"#).is_err());
    }

    #[test]
    fn trace_parent_is_observability_metadata_not_identity() {
        // the same work dispatched under different distributed traces must
        // share one artifact: trace_parent stays out of the canonical spec
        let a = parse(r#"{"model":"resnet-50","hardware":"a100","trace_parent":"42:7"}"#).unwrap();
        let b = parse(r#"{"model":"resnet-50","hardware":"a100"}"#).unwrap();
        assert_eq!(a.trace_parent, Some((42, 7)));
        assert_eq!(b.trace_parent, None);
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.stage_cache_key(), b.stage_cache_key());
        // malformed context in the body is a spec error (unlike the header,
        // which is transport metadata and silently dropped)
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","trace_parent":"nope"}"#).is_err());
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","trace_parent":"0:7"}"#).is_err());
    }

    #[test]
    fn seed_differentiates_cache_keys() {
        let a = parse(r#"{"model":"resnet-50","hardware":"a100","seed":1}"#).unwrap();
        let b = parse(r#"{"model":"resnet-50","hardware":"a100","seed":2}"#).unwrap();
        let c = parse(r#"{"model":"resnet-50","hardware":"a100"}"#).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(c.seed, DEFAULT_SEED);
    }

    #[test]
    fn every_field_feeds_the_key() {
        let base = r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"fp16","mode":"predicted","seed":7}"#;
        let variants = [
            r#"{"model":"resnet-34","hardware":"a100","backend":"trt","batch":8,"dtype":"fp16","mode":"predicted","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"rtx-4090","backend":"trt","batch":8,"dtype":"fp16","mode":"predicted","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"a100","backend":"ort","batch":8,"dtype":"fp16","mode":"predicted","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":16,"dtype":"fp16","mode":"predicted","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"fp32","mode":"predicted","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"fp16","mode":"measured","seed":7}"#,
            r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"fp16","mode":"predicted","seed":8}"#,
        ];
        let key = parse(base).unwrap().cache_key();
        for v in variants {
            assert_ne!(parse(v).unwrap().cache_key(), key, "{v}");
        }
    }

    #[test]
    fn stage_cache_key_ignores_mode_but_not_seed() {
        let p = parse(r#"{"model":"resnet-50","hardware":"a100","mode":"predicted","seed":7}"#)
            .unwrap();
        let m =
            parse(r#"{"model":"resnet-50","hardware":"a100","mode":"measured","seed":7}"#).unwrap();
        let s = parse(r#"{"model":"resnet-50","hardware":"a100","mode":"predicted","seed":8}"#)
            .unwrap();
        // mode pairs share a prefix (the whole point of the stage cache)...
        assert_eq!(p.stage_cache_key(), m.stage_cache_key());
        // ...but still get distinct artifacts
        assert_ne!(p.cache_key(), m.cache_key());
        // the seed shapes the built-in profile, so it splits prefixes
        assert_ne!(p.stage_cache_key(), s.stage_cache_key());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse(r#"{"hardware":"a100"}"#).is_err()); // no model
        assert!(parse(r#"{"model":"resnet-50"}"#).is_err()); // no hardware
        assert!(parse(r#"{"model":"nope","hardware":"a100"}"#).is_err());
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","batch":0}"#).is_err());
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","bogus":1}"#).is_err());
        assert!(parse(r#"{"model":"resnet-50","hardware":"a100","batch":"x"}"#).is_err());
    }

    #[test]
    fn defaults_resolve_to_platform_native_backend() {
        let j = parse(r#"{"model":"resnet-50","hardware":"a100"}"#).unwrap();
        assert_eq!(j.backend, BackendFlavor::TrtLike);
        assert_eq!(j.batch, 1);
        assert_eq!(j.dtype, DType::F16);
    }
}
