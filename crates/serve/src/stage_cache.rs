//! In-process cache of mode-independent pipeline prefixes.
//!
//! The first three pipeline stages (compile → built-in profile → map)
//! depend only on (model, backend, platform, precision, batch, seed) — not
//! on the [`proof_core::MetricMode`]. Workers cache the resulting
//! [`PreparedStages`] under that prefix key, so resubmitting a spec with a
//! different mode (or re-running a sweep grid in the other mode) re-executes
//! only the metric and assembly stages.
//!
//! Unlike the artifact cache this holds live Rust structs, not JSON, and is
//! purely in-memory with a bounded entry count (FIFO eviction — prefix
//! reuse is bursty and short-lived, so recency tracking buys little).
//! Concurrent misses on the same key may build the prefix twice; both
//! builds are deterministic and identical, so the race is benign and only
//! costs the duplicated work.

use proof_core::PreparedStages;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters exposed through `GET /metrics` as `stage_cache`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
}

struct Inner {
    map: HashMap<String, Arc<PreparedStages>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<String>,
}

/// Bounded map of prefix key → shared [`PreparedStages`].
pub struct StageCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageCache {
    pub fn new(capacity: usize) -> StageCache {
        StageCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a prefix; counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<PreparedStages>> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(prep) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(prep))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly built prefix, evicting the oldest entry when full.
    pub fn insert(&self, key: String, prep: Arc<PreparedStages>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key.clone(), prep).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    pub fn stats(&self) -> StageCacheStats {
        let inner = self.inner.lock().unwrap();
        StageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AnalysisJob;

    fn prep(spec: &str) -> Arc<PreparedStages> {
        let job = AnalysisJob::from_value(&serde_json::from_str(spec).unwrap()).unwrap();
        Arc::new(job.prepare().unwrap())
    }

    #[test]
    fn get_insert_and_counters() {
        let c = StageCache::new(4);
        assert!(c.get("k").is_none());
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        c.insert("k".to_string(), Arc::clone(&p));
        let got = c.get("k").unwrap();
        assert!(Arc::ptr_eq(&got, &p));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_fifo_beyond_capacity() {
        let c = StageCache::new(2);
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        for k in ["a", "b", "c"] {
            c.insert(k.to_string(), Arc::clone(&p));
        }
        assert!(c.get("a").is_none(), "oldest entry must be evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn reinserting_same_key_does_not_grow_order() {
        let c = StageCache::new(2);
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        c.insert("a".to_string(), Arc::clone(&p));
        c.insert("a".to_string(), Arc::clone(&p));
        c.insert("b".to_string(), Arc::clone(&p));
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_some());
    }
}
