//! In-process cache of mode-independent pipeline prefixes.
//!
//! The first three pipeline stages (compile → built-in profile → map)
//! depend only on (model, backend, platform, precision, batch, seed) — not
//! on the [`proof_core::MetricMode`]. Workers cache the resulting
//! [`PreparedStages`] under that prefix key, so resubmitting a spec with a
//! different mode (or re-running a sweep grid in the other mode) re-executes
//! only the metric and assembly stages.
//!
//! Unlike the artifact store this holds live Rust structs, not JSON, and is
//! purely in-memory with a bounded entry count. It is built from the same
//! proof-store components as the artifact tier: a [`MemoryLru`] weighed
//! 1-per-entry (O(log n) recency instead of the old FIFO ring) and a
//! [`KeyedFlight`] single-flighting the builds — concurrent misses on one
//! key now coalesce onto a single prepare instead of racing to build the
//! prefix twice.

use proof_core::PreparedStages;
use proof_obs::Counter;
use proof_store::{Claim, FlightGuard, KeyedFlight, MemoryLru};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exposed through `GET /metrics` as `stage_cache`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
}

/// The two outcomes of [`StageCache::lookup_or_begin`].
pub enum StageLookup<'a> {
    /// A cached prefix (either already present or filled by a coalesced
    /// builder this caller waited on).
    Hit(Arc<PreparedStages>),
    /// This caller owns the build; fulfill (or drop, on failure) the guard.
    Miss(StageGuard<'a>),
}

/// Exclusive right to build one prefix. Dropping without
/// [`StageGuard::fulfill`] (prepare failed or panicked) releases the
/// waiters to claim the build themselves.
pub struct StageGuard<'a> {
    cache: &'a StageCache,
    key: String,
    guard: Option<FlightGuard<'a>>,
}

impl StageGuard<'_> {
    /// Insert the built prefix and wake coalesced waiters.
    pub fn fulfill(mut self, prep: Arc<PreparedStages>) -> Arc<PreparedStages> {
        self.cache.lru.insert(&self.key, Arc::clone(&prep));
        if let Some(g) = self.guard.take() {
            g.complete();
        }
        prep
    }
}

/// Bounded, single-flighted map of prefix key → shared [`PreparedStages`].
pub struct StageCache {
    lru: MemoryLru<PreparedStages>,
    flight: KeyedFlight,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl StageCache {
    pub fn new(capacity: usize) -> StageCache {
        let capacity = capacity.max(1);
        StageCache {
            // entry-weighed LRU; evictions are uninteresting here, so the
            // counter stays private to the cache
            lru: MemoryLru::new(capacity, |_| 1, Arc::new(Counter::default())),
            flight: KeyedFlight::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    /// Look up a prefix, coalescing concurrent builders: exactly one caller
    /// per key gets [`StageLookup::Miss`] at a time; everyone else blocks
    /// until the build resolves and then hits.
    pub fn lookup_or_begin(&self, key: &str) -> StageLookup<'_> {
        loop {
            if let Some(prep) = self.lru.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return StageLookup::Hit(prep);
            }
            let guard = match self.flight.claim(key) {
                Claim::Claimed(g) => g,
                Claim::Released => continue,
            };
            if let Some(prep) = self.lru.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                guard.complete();
                return StageLookup::Hit(prep);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            return StageLookup::Miss(StageGuard {
                cache: self,
                key: key.to_string(),
                guard: Some(guard),
            });
        }
    }

    pub fn stats(&self) -> StageCacheStats {
        StageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lru.entries(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AnalysisJob;
    use std::sync::atomic::AtomicUsize;

    fn prep(spec: &str) -> Arc<PreparedStages> {
        let job = AnalysisJob::from_value(&serde_json::from_str(spec).unwrap()).unwrap();
        Arc::new(job.prepare().unwrap())
    }

    fn fill(c: &StageCache, key: &str, p: &Arc<PreparedStages>) {
        match c.lookup_or_begin(key) {
            StageLookup::Miss(g) => {
                g.fulfill(Arc::clone(p));
            }
            StageLookup::Hit(_) => panic!("expected a miss for {key}"),
        }
    }

    #[test]
    fn get_insert_and_counters() {
        let c = StageCache::new(4);
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        fill(&c, "k", &p);
        match c.lookup_or_begin("k") {
            StageLookup::Hit(got) => assert!(Arc::ptr_eq(&got, &p)),
            StageLookup::Miss(_) => panic!("must hit after fulfill"),
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_lru_beyond_capacity() {
        let c = StageCache::new(2);
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        for k in ["a", "b", "c"] {
            fill(&c, k, &p);
        }
        assert!(
            matches!(c.lookup_or_begin("a"), StageLookup::Miss(_)),
            "oldest entry must be evicted"
        );
        assert!(matches!(c.lookup_or_begin("b"), StageLookup::Hit(_)));
        assert!(matches!(c.lookup_or_begin("c"), StageLookup::Hit(_)));
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn concurrent_misses_build_once() {
        let c = Arc::new(StageCache::new(4));
        let p = prep(r#"{"model":"mobilenetv2-0.5","hardware":"a100"}"#);
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let c = Arc::clone(&c);
                let p = Arc::clone(&p);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || match c.lookup_or_begin("shared") {
                    StageLookup::Hit(_) => {}
                    StageLookup::Miss(g) => {
                        builds.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(15));
                        g.fulfill(p);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "the double-build race is closed"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (5, 1));
    }

    #[test]
    fn failed_build_releases_waiters() {
        let c = Arc::new(StageCache::new(4));
        let guard = match c.lookup_or_begin("doomed") {
            StageLookup::Miss(g) => g,
            StageLookup::Hit(_) => panic!(),
        };
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || matches!(c.lookup_or_begin("doomed"), StageLookup::Miss(_)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // prepare failed
        assert!(waiter.join().unwrap(), "waiter gets its own build claim");
    }
}
