//! Bounded FIFO job queue with blocking producers/consumers and
//! close-and-drain shutdown semantics.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock, recovering from poisoning: a worker panicking while holding the
/// queue lock (now isolated by `catch_unwind`) must not wedge every other
/// producer/consumer — the queue's invariants hold at every await point,
/// so the inner state is always safe to reuse.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Push failed because the queue was closed (shutdown in progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> JobQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, blocking while the queue is full. Fails once closed.
    pub fn push(&self, item: T) -> Result<(), Closed> {
        let mut inner = lock_clean(&self.inner);
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        if inner.closed {
            return Err(Closed);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue only if there is room right now.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = lock_clean(&self.inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. Returns `None` only once the queue is
    /// closed **and** drained — so no accepted job is ever dropped.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_clean(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop accepting new items; consumers drain what remains.
    pub fn close(&self) {
        lock_clean(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn depth(&self) -> usize {
        lock_clean(&self.inner).items.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q = Arc::new(JobQueue::new(1));
        q.push(1).unwrap();
        assert_eq!(q.try_push(9), Err(9));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1); // producer still blocked
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }
}
