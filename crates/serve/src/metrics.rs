//! Service metrics: job/pipeline-stage latency histograms and worker
//! utilization.

use proof_core::{PipelineStage, StageTiming};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of log2 buckets: bucket `i` counts samples in `[2^i, 2^(i+1))` µs,
/// bucket 0 additionally covers sub-microsecond samples. 2^39 µs ≈ 6 days,
/// far beyond any job latency.
const BUCKETS: usize = 40;

/// A log2-bucketed latency histogram (microseconds).
pub struct Histogram {
    inner: Mutex<HistInner>,
}

struct HistInner {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

/// Serializable snapshot: only non-empty buckets, as `(le_us, count)` pairs
/// with cumulative-friendly upper bounds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
    pub mean_us: f64,
    /// `[upper_bound_us, count]` per occupied log2 bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                counts: [0; BUCKETS],
                count: 0,
                sum_us: 0,
                max_us: 0,
            }),
        }
    }
}

impl Histogram {
    pub fn record_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        let mut h = self.inner.lock().unwrap();
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum_us += us;
        h.max_us = h.max_us.max(us);
    }

    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.inner.lock().unwrap();
        HistogramSnapshot {
            count: h.count,
            sum_us: h.sum_us,
            max_us: h.max_us,
            mean_us: if h.count == 0 {
                0.0
            } else {
                h.sum_us as f64 / h.count as f64
            },
            buckets: h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (1u64 << (i + 1), c))
                .collect(),
        }
    }
}

/// One latency histogram per pipeline stage, fed from the [`StageTiming`]s
/// of traces the workers actually execute (cached prefix stages are
/// recorded once, when built — not again on every reuse).
pub struct StageHistograms {
    hists: [Histogram; PipelineStage::ALL.len()],
}

impl Default for StageHistograms {
    fn default() -> Self {
        StageHistograms {
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl StageHistograms {
    fn index(stage: PipelineStage) -> usize {
        PipelineStage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage in ALL")
    }

    /// Record a batch of executed stage timings.
    pub fn record<'a>(&self, timings: impl IntoIterator<Item = &'a StageTiming>) {
        for t in timings {
            self.hists[Self::index(t.stage)].record_us(t.duration_us.round().max(0.0) as u64);
        }
    }

    /// Per-stage snapshots as `(name, snapshot)`, in pipeline order.
    pub fn snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        PipelineStage::ALL
            .iter()
            .map(|&s| (s.name(), self.hists[Self::index(s)].snapshot()))
            .collect()
    }
}

/// Wall-clock-busy accounting for the worker pool.
pub struct WorkerMetrics {
    started: Instant,
    workers: usize,
    busy_us: AtomicU64,
    busy_now: AtomicU64,
    jobs_executed: AtomicU64,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerSnapshot {
    pub count: usize,
    /// Workers currently executing a job.
    pub busy: u64,
    pub jobs_executed: u64,
    /// Busy-time fraction of total worker-uptime, in `[0, 1]`.
    pub utilization: f64,
}

impl WorkerMetrics {
    pub fn new(workers: usize) -> WorkerMetrics {
        WorkerMetrics {
            started: Instant::now(),
            workers,
            busy_us: AtomicU64::new(0),
            busy_now: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
        }
    }

    /// RAII span covering one job execution.
    pub fn busy_span(&self) -> BusySpan<'_> {
        self.busy_now.fetch_add(1, Ordering::Relaxed);
        BusySpan {
            metrics: self,
            started: Instant::now(),
        }
    }

    pub fn snapshot(&self) -> WorkerSnapshot {
        let uptime_us = self.started.elapsed().as_micros().max(1) as f64;
        let busy_us = self.busy_us.load(Ordering::Relaxed) as f64;
        WorkerSnapshot {
            count: self.workers,
            busy: self.busy_now.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            utilization: (busy_us / (uptime_us * self.workers.max(1) as f64)).min(1.0),
        }
    }
}

pub struct BusySpan<'a> {
    metrics: &'a WorkerMetrics,
    started: Instant,
}

impl Drop for BusySpan<'_> {
    fn drop(&mut self) {
        let us = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.busy_us.fetch_add(us, Ordering::Relaxed);
        self.metrics.busy_now.fetch_sub(1, Ordering::Relaxed);
        self.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record_us(0); // clamped into bucket 0
        h.record_us(1);
        h.record_us(3);
        h.record_us(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max_us, 1000);
        // 0 and 1 land in [1,2), 3 in [2,4), 1000 in [512,1024)
        assert_eq!(s.buckets, vec![(2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn stage_histograms_key_by_stage_name() {
        let h = StageHistograms::default();
        h.record(&[
            StageTiming {
                stage: PipelineStage::Compile,
                duration_us: 100.0,
            },
            StageTiming {
                stage: PipelineStage::Metrics,
                duration_us: 7.0,
            },
            StageTiming {
                stage: PipelineStage::Metrics,
                duration_us: 9.0,
            },
        ]);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 5);
        let by_name = |n: &str| snap.iter().find(|(k, _)| *k == n).unwrap().1.clone();
        assert_eq!(by_name("compile").count, 1);
        assert_eq!(by_name("metrics").count, 2);
        assert_eq!(by_name("metrics").sum_us, 16);
        assert_eq!(by_name("assemble").count, 0);
    }

    #[test]
    fn worker_utilization_tracks_busy_spans() {
        let m = WorkerMetrics::new(2);
        {
            let _span = m.busy_span();
            assert_eq!(m.snapshot().busy, 1);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let s = m.snapshot();
        assert_eq!(s.busy, 0);
        assert_eq!(s.jobs_executed, 1);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0);
    }
}
