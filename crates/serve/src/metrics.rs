//! Service metrics on the `proof-obs` registry: job/pipeline-stage latency
//! histograms and worker utilization.
//!
//! The log2 [`Histogram`] itself now lives in `proof_obs::metrics` (it is
//! re-exported here unchanged); this module keeps the serve-specific
//! instruments — per-stage histograms registered under `stage_<name>_us`,
//! worker busy accounting — and the JSON rendering used by `GET /metrics`.

use proof_core::{PipelineStage, StageTiming};
use proof_obs::MetricsRegistry;
pub use proof_obs::{Histogram, HistogramSnapshot};
use serde::Serialize;
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Render a histogram snapshot as the `/metrics` JSON shape (`proof-obs`
/// types can't implement the vendored `Serialize` from here, so the value
/// is built by hand — same shape as the old derive).
pub fn hist_value(snap: &HistogramSnapshot) -> Value {
    let mut m = Map::new();
    m.insert("count".to_string(), Value::from(snap.count));
    m.insert("sum_us".to_string(), Value::from(snap.sum_us));
    m.insert("max_us".to_string(), Value::from(snap.max_us));
    m.insert("mean_us".to_string(), Value::from(snap.mean_us));
    // quantile estimates from the log2 buckets (exact to within one power
    // of two); the Prometheus exposition is unchanged — scrapers derive
    // quantiles from the cumulative buckets themselves
    m.insert("p50_us".to_string(), Value::from(snap.quantile_us(0.5)));
    m.insert("p99_us".to_string(), Value::from(snap.quantile_us(0.99)));
    m.insert(
        "buckets".to_string(),
        Value::Array(
            snap.buckets
                .iter()
                .map(|&(le, c)| Value::Array(vec![Value::from(le), Value::from(c)]))
                .collect(),
        ),
    );
    Value::Object(m)
}

/// One latency histogram per pipeline stage, fed from the [`StageTiming`]s
/// of traces the workers actually execute (cached prefix stages are
/// recorded once, when built — not again on every reuse). The histograms
/// are registered as `stage_<name>_us`, so the Prometheus exposition picks
/// them up from the registry snapshot.
pub struct StageHistograms {
    hists: [Arc<Histogram>; PipelineStage::ALL.len()],
}

impl Default for StageHistograms {
    fn default() -> Self {
        StageHistograms::register(&MetricsRegistry::new())
    }
}

impl StageHistograms {
    /// Register the five stage histograms in `registry`.
    pub fn register(registry: &MetricsRegistry) -> StageHistograms {
        StageHistograms {
            hists: PipelineStage::ALL
                .map(|s| registry.histogram(&format!("stage_{}_us", s.name()))),
        }
    }

    fn index(stage: PipelineStage) -> usize {
        PipelineStage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage in ALL")
    }

    /// Record a batch of executed stage timings.
    pub fn record<'a>(&self, timings: impl IntoIterator<Item = &'a StageTiming>) {
        for t in timings {
            self.hists[Self::index(t.stage)].record_us(t.duration_us.round().max(0.0) as u64);
        }
    }

    /// Per-stage snapshots as `(name, snapshot)`, in pipeline order.
    pub fn snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        PipelineStage::ALL
            .iter()
            .map(|&s| (s.name(), self.hists[Self::index(s)].snapshot()))
            .collect()
    }
}

/// Wall-clock-busy accounting for the worker pool.
pub struct WorkerMetrics {
    started: Instant,
    workers: usize,
    busy_us: AtomicU64,
    busy_now: AtomicU64,
    jobs_executed: AtomicU64,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerSnapshot {
    pub count: usize,
    /// Workers currently executing a job.
    pub busy: u64,
    pub jobs_executed: u64,
    /// Busy-time fraction of total worker-uptime, in `[0, 1]`.
    pub utilization: f64,
}

impl WorkerMetrics {
    pub fn new(workers: usize) -> WorkerMetrics {
        WorkerMetrics {
            started: Instant::now(),
            workers,
            busy_us: AtomicU64::new(0),
            busy_now: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
        }
    }

    /// RAII span covering one job execution.
    pub fn busy_span(&self) -> BusySpan<'_> {
        self.busy_now.fetch_add(1, Ordering::Relaxed);
        BusySpan {
            metrics: self,
            started: Instant::now(),
        }
    }

    pub fn snapshot(&self) -> WorkerSnapshot {
        let uptime_us = self.started.elapsed().as_micros().max(1) as f64;
        let busy_us = self.busy_us.load(Ordering::Relaxed) as f64;
        WorkerSnapshot {
            count: self.workers,
            busy: self.busy_now.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            utilization: (busy_us / (uptime_us * self.workers.max(1) as f64)).min(1.0),
        }
    }
}

pub struct BusySpan<'a> {
    metrics: &'a WorkerMetrics,
    started: Instant,
}

impl Drop for BusySpan<'_> {
    fn drop(&mut self) {
        let us = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.busy_us.fetch_add(us, Ordering::Relaxed);
        self.metrics.busy_now.fetch_sub(1, Ordering::Relaxed);
        self.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record_us(0); // clamped into bucket 0
        h.record_us(1);
        h.record_us(3);
        h.record_us(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max_us, 1000);
        // 0 and 1 land in [1,2), 3 in [2,4), 1000 in [512,1024)
        assert_eq!(s.buckets, vec![(2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn hist_value_keeps_the_metrics_json_shape() {
        let h = Histogram::default();
        h.record_us(3);
        h.record_us(5);
        let v = hist_value(&h.snapshot());
        assert_eq!(v["count"].as_u64(), Some(2));
        assert_eq!(v["sum_us"].as_u64(), Some(8));
        assert_eq!(v["mean_us"].as_f64(), Some(4.0));
        assert_eq!(v["p50_us"].as_u64(), Some(4)); // 3 lands in [2,4)
        assert_eq!(v["p99_us"].as_u64(), Some(5)); // clamped to max_us
        let buckets = v["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].as_array().unwrap()[0].as_u64(), Some(4));
    }

    #[test]
    fn stage_histograms_key_by_stage_name() {
        let h = StageHistograms::default();
        h.record(&[
            StageTiming {
                stage: PipelineStage::Compile,
                duration_us: 100.0,
            },
            StageTiming {
                stage: PipelineStage::Metrics,
                duration_us: 7.0,
            },
            StageTiming {
                stage: PipelineStage::Metrics,
                duration_us: 9.0,
            },
        ]);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 5);
        let by_name = |n: &str| snap.iter().find(|(k, _)| *k == n).unwrap().1.clone();
        assert_eq!(by_name("compile").count, 1);
        assert_eq!(by_name("metrics").count, 2);
        assert_eq!(by_name("metrics").sum_us, 16);
        assert_eq!(by_name("assemble").count, 0);
    }

    #[test]
    fn stage_histograms_share_the_registry_instruments() {
        let registry = MetricsRegistry::new();
        let stages = StageHistograms::register(&registry);
        stages.record(&[StageTiming {
            stage: PipelineStage::Map,
            duration_us: 42.0,
        }]);
        let snap = registry.snapshot();
        let map_hist = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "stage_map_us")
            .expect("registered under stage_map_us");
        assert_eq!(map_hist.1.count, 1);
        assert_eq!(snap.histograms.len(), 5);
    }

    #[test]
    fn worker_utilization_tracks_busy_spans() {
        let m = WorkerMetrics::new(2);
        {
            let _span = m.busy_span();
            assert_eq!(m.snapshot().busy, 1);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let s = m.snapshot();
        assert_eq!(s.busy, 0);
        assert_eq!(s.jobs_executed, 1);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0);
    }
}
