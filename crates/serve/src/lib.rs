//! proof-serve: profiling-as-a-service on top of the PRoof pipeline.
//!
//! A daemon that accepts analysis jobs over a minimal HTTP/1.1 JSON API,
//! schedules them on a bounded FIFO queue drained by a worker pool, runs
//! the existing pipeline (proof-models → proof-runtime → proof-core), and
//! content-addresses every artifact by the stable hash of its canonical job
//! spec — identical submissions cost exactly one simulation.
//!
//! Artifacts live in a `proof-store` [`TieredStore`] (memory LRU → disk →
//! remote peers); the daemon exposes its local tiers to other daemons via
//! `GET/PUT /cache/<key>`, so a fleet of proof-serve nodes shares one
//! logical cache.
//!
//! ```no_run
//! use proof_serve::{Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let body = r#"{"model":"resnet-50","hardware":"a100","batch":8}"#;
//! let (status, reply) = proof_serve::client::post(server.addr(), "/jobs", body).unwrap();
//! assert_eq!(status, 201);
//! println!("{reply}");
//! server.shutdown(); // drains every accepted job first
//! ```

pub mod client;
pub mod http;
pub mod job;
pub mod metrics;
pub mod peer;
pub mod queue;
pub mod server;
pub mod stage_cache;

pub use client::{Response, RetryPolicy};
pub use job::{AnalysisJob, DEFAULT_SEED};
pub use metrics::{Histogram, HistogramSnapshot, StageHistograms, WorkerMetrics, WorkerSnapshot};
pub use peer::HttpPeer;
pub use proof_store::{ArtifactKey, HitTier, Lookup, StoreStats, TieredStore};
pub use queue::JobQueue;
pub use server::{JobStatus, ServeConfig, Server, ShutdownReport};
pub use stage_cache::{StageCache, StageCacheStats, StageGuard, StageLookup};
