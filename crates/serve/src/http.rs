//! Minimal HTTP/1.1 support over `std::net`: just enough request parsing
//! and response writing for the JSON API, plus a tiny blocking client used
//! by the CLI walkthroughs and the integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request. Bodies are read eagerly (Content-Length only; no
/// chunked encoding — every client this daemon targets sends sized bodies).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (no '?'), empty if absent.
    pub query: String,
    pub body: String,
}

/// Read one request from the stream. `Ok(None)` means the peer closed the
/// connection before sending anything.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };
    let mut content_length = 0usize;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a JSON response and flush. Connections are single-request
/// (`Connection: close`), which keeps lifecycle handling trivial.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

/// [`write_response`] with an explicit Content-Type (the Prometheus
/// exposition endpoint serves `text/plain`).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot client: send `method path` with an optional JSON body,
/// return `(status, body)`.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

/// `GET path` convenience wrapper.
pub fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` convenience wrapper.
pub fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}
