//! Minimal HTTP/1.1 server support over `std::net`: just enough request
//! parsing and response writing for the JSON API. The matching blocking
//! client lives in [`crate::client`] and reuses the same capped readers.
//!
//! Every read from the peer is capped (`MAX_HEADER_BYTES` for the request
//! line + headers, `MAX_BODY_BYTES` for bodies) **while reading**, not
//! after: an earlier version buffered an arbitrarily long request line via
//! `read_line` before checking any limit, which let a single connection
//! exhaust memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request. Bodies are read eagerly (Content-Length only; no
/// chunked encoding — every client this daemon targets sends sized bodies).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (no '?'), empty if absent.
    pub query: String,
    pub body: String,
    /// Parsed `X-Proof-Trace: <trace>:<span>` header, if present and
    /// well-formed: the caller's (trace id, parent span id) context that
    /// dispatched work should adopt. Malformed values are ignored — trace
    /// context is observability metadata and must never fail a request.
    pub trace_parent: Option<(u64, u64)>,
}

/// Parse an `X-Proof-Trace` header value: two decimal u64s as
/// `<trace>:<span>`, trace non-zero.
pub fn parse_trace_header(value: &str) -> Option<(u64, u64)> {
    let (trace, span) = value.trim().split_once(':')?;
    let trace: u64 = trace.trim().parse().ok()?;
    let span: u64 = span.trim().parse().ok()?;
    if trace == 0 {
        return None;
    }
    Some((trace, span))
}

/// Read one `\n`-terminated line into `buf`, consuming at most
/// `budget` bytes. Returns the number of bytes consumed; `Ok(0)` means
/// clean EOF before any byte. Errors as soon as the budget is exhausted
/// without buffering the oversized line.
pub(crate) fn read_line_capped<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    budget: usize,
) -> std::io::Result<usize> {
    let mut consumed = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(consumed); // EOF
        }
        let limit = available.len().min(budget - consumed + 1);
        match available[..limit].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if consumed + pos + 1 > budget {
                    return Err(bad("line too long"));
                }
                buf.extend_from_slice(&available[..=pos]);
                reader.consume(pos + 1);
                return Ok(consumed + pos + 1);
            }
            None => {
                let take = available.len();
                if consumed + take > budget {
                    return Err(bad("line too long"));
                }
                buf.extend_from_slice(&available[..take]);
                reader.consume(take);
                consumed += take;
            }
        }
    }
}

/// Read one request from the stream. `Ok(None)` means the peer closed the
/// connection before sending anything.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let mut raw_line = Vec::new();
    let n = read_line_capped(&mut reader, &mut raw_line, budget)?;
    if n == 0 {
        return Ok(None);
    }
    budget -= n;
    let request_line = String::from_utf8(raw_line).map_err(|_| bad("request line is not UTF-8"))?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };
    let mut content_length = 0usize;
    let mut trace_parent = None;
    loop {
        let mut raw = Vec::new();
        let n = read_line_capped(&mut reader, &mut raw, budget)?;
        if n == 0 {
            return Err(bad("connection closed inside headers"));
        }
        budget -= n;
        let line = String::from_utf8(raw).map_err(|_| bad("header is not UTF-8"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("x-proof-trace") {
                trace_parent = parse_trace_header(value);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        trace_parent,
    }))
}

pub(crate) fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// The value of the first `key=...` param in a raw query string (the
/// [`Request::query`] field: no leading '?', params separated by '&').
/// `None` when the key is absent; a valueless `key` (no '=') is `None` too.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// True when the query string carries `key=value` as one of its
/// `&`-separated params, in any position. Both daemons route format
/// selectors (`format=prometheus`, `format=spans`) and mode selectors
/// (`mode=async`) through this, so `?format=prometheus&x=1` works the same
/// everywhere — an earlier coordinator build compared the whole raw query
/// against `format=prometheus` and silently fell back to JSON when any
/// other param rode along.
pub fn query_has(query: &str, key: &str, value: &str) -> bool {
    query_param(query, key) == Some(value)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a JSON response and flush. Connections are single-request
/// (`Connection: close`), which keeps lifecycle handling trivial.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_full(stream, status, "application/json", None, body)
}

/// [`write_response`] with an explicit Content-Type (the Prometheus
/// exposition endpoint serves `text/plain`).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_full(stream, status, content_type, None, body)
}

/// The full-control response writer: explicit Content-Type and an optional
/// `Retry-After` (seconds) header, sent with 429/503 backpressure replies.
pub fn write_response_full(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    retry_after_s: Option<u64>,
    body: &str,
) -> std::io::Result<()> {
    let retry = match retry_after_s {
        Some(s) => format!("Retry-After: {s}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        retry
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_line_reads_short_lines() {
        let mut r = Cursor::new(b"GET / HTTP/1.1\r\nrest".to_vec());
        let mut buf = Vec::new();
        let n = read_line_capped(&mut r, &mut buf, 64).unwrap();
        assert_eq!(n, 16);
        assert_eq!(buf, b"GET / HTTP/1.1\r\n");
    }

    #[test]
    fn capped_line_rejects_oversized_line_without_buffering_it() {
        let big = vec![b'a'; 1024];
        let mut r = Cursor::new(big);
        let mut buf = Vec::new();
        let err = read_line_capped(&mut r, &mut buf, 100).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(buf.len() <= 100, "must not buffer past the cap");
    }

    #[test]
    fn capped_line_eof_is_zero() {
        let mut r = Cursor::new(Vec::new());
        let mut buf = Vec::new();
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), 0);
    }

    #[test]
    fn query_params_match_in_any_position() {
        assert!(query_has("format=prometheus", "format", "prometheus"));
        assert!(query_has("format=prometheus&x=1", "format", "prometheus"));
        assert!(query_has("x=1&format=prometheus", "format", "prometheus"));
        assert!(!query_has("format=spans", "format", "prometheus"));
        assert!(!query_has("", "format", "prometheus"));
        // valueless or prefix-colliding keys never match
        assert!(!query_has("format", "format", "prometheus"));
        assert!(!query_has("xformat=prometheus", "format", "prometheus"));
        assert_eq!(query_param("since=12&format=spans", "since"), Some("12"));
        assert_eq!(query_param("since=12", "format"), None);
        assert_eq!(query_param("since", "since"), None);
    }

    #[test]
    fn trace_header_parses_or_is_ignored() {
        assert_eq!(parse_trace_header("42:7"), Some((42, 7)));
        assert_eq!(parse_trace_header(" 42 : 7 "), Some((42, 7)));
        assert_eq!(parse_trace_header("42:0"), Some((42, 0)));
        // malformed or zero-trace values are dropped, never an error
        assert_eq!(parse_trace_header("0:7"), None);
        assert_eq!(parse_trace_header("42"), None);
        assert_eq!(parse_trace_header("a:b"), None);
        assert_eq!(parse_trace_header(""), None);
    }
}
