//! Minimal HTTP/1.1 support over `std::net`: just enough request parsing
//! and response writing for the JSON API, plus a tiny blocking client used
//! by the CLI walkthroughs and the integration tests.
//!
//! Every read from the peer is capped (`MAX_HEADER_BYTES` for the request
//! line + headers, `MAX_BODY_BYTES` for bodies) **while reading**, not
//! after: an earlier version buffered an arbitrarily long request line via
//! `read_line` before checking any limit, which let a single connection
//! exhaust memory. The client side mirrors the same caps, and
//! [`RetryPolicy`] adds deterministic (seed-keyed) exponential backoff that
//! honors `Retry-After` from a backpressuring server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request. Bodies are read eagerly (Content-Length only; no
/// chunked encoding — every client this daemon targets sends sized bodies).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (no '?'), empty if absent.
    pub query: String,
    pub body: String,
}

/// Read one `\n`-terminated line into `buf`, consuming at most
/// `budget` bytes. Returns the number of bytes consumed; `Ok(0)` means
/// clean EOF before any byte. Errors as soon as the budget is exhausted
/// without buffering the oversized line.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    budget: usize,
) -> std::io::Result<usize> {
    let mut consumed = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(consumed); // EOF
        }
        let limit = available.len().min(budget - consumed + 1);
        match available[..limit].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if consumed + pos + 1 > budget {
                    return Err(bad("line too long"));
                }
                buf.extend_from_slice(&available[..=pos]);
                reader.consume(pos + 1);
                return Ok(consumed + pos + 1);
            }
            None => {
                let take = available.len();
                if consumed + take > budget {
                    return Err(bad("line too long"));
                }
                buf.extend_from_slice(&available[..take]);
                reader.consume(take);
                consumed += take;
            }
        }
    }
}

/// Read one request from the stream. `Ok(None)` means the peer closed the
/// connection before sending anything.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let mut raw_line = Vec::new();
    let n = read_line_capped(&mut reader, &mut raw_line, budget)?;
    if n == 0 {
        return Ok(None);
    }
    budget -= n;
    let request_line = String::from_utf8(raw_line).map_err(|_| bad("request line is not UTF-8"))?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };
    let mut content_length = 0usize;
    loop {
        let mut raw = Vec::new();
        let n = read_line_capped(&mut reader, &mut raw, budget)?;
        if n == 0 {
            return Err(bad("connection closed inside headers"));
        }
        budget -= n;
        let line = String::from_utf8(raw).map_err(|_| bad("header is not UTF-8"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a JSON response and flush. Connections are single-request
/// (`Connection: close`), which keeps lifecycle handling trivial.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_full(stream, status, "application/json", None, body)
}

/// [`write_response`] with an explicit Content-Type (the Prometheus
/// exposition endpoint serves `text/plain`).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_full(stream, status, content_type, None, body)
}

/// The full-control response writer: explicit Content-Type and an optional
/// `Retry-After` (seconds) header, sent with 429/503 backpressure replies.
pub fn write_response_full(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    retry_after_s: Option<u64>,
    body: &str,
) -> std::io::Result<()> {
    let retry = match retry_after_s {
        Some(s) => format!("Retry-After: {s}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        retry
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A client response: status, body, and the parsed `Retry-After` seconds
/// if the server sent one.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub retry_after_s: Option<u64>,
}

/// Blocking one-shot client: send `method path` with an optional JSON body,
/// return `(status, body)`.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let r = request_full(addr, method, path, body)?;
    Ok((r.status, r.body))
}

/// [`request`] keeping the response headers the retry layer needs. Reads
/// are capped like the server side: headers to `MAX_HEADER_BYTES`, body to
/// `MAX_BODY_BYTES` whether or not the server declared a length.
pub fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let mut raw_status = Vec::new();
    let n = read_line_capped(&mut reader, &mut raw_status, budget)?;
    if n == 0 {
        return Err(bad("connection closed before status line"));
    }
    budget -= n;
    let status_line = String::from_utf8(raw_status).map_err(|_| bad("status line is not UTF-8"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = None;
    let mut retry_after_s = None;
    loop {
        let mut raw = Vec::new();
        let n = read_line_capped(&mut reader, &mut raw, budget)?;
        if n == 0 {
            return Err(bad("connection closed inside headers"));
        }
        budget -= n;
        let line = String::from_utf8(raw).map_err(|_| bad("header is not UTF-8"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after_s = value.trim().parse::<u64>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) if n > MAX_BODY_BYTES => return Err(bad("body too large")),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"))?;
        }
        None => {
            let mut limited = reader.take(MAX_BODY_BYTES as u64 + 1);
            limited.read_to_string(&mut body)?;
            if body.len() > MAX_BODY_BYTES {
                return Err(bad("body too large"));
            }
        }
    }
    Ok(Response {
        status,
        body,
        retry_after_s,
    })
}

/// `GET path` convenience wrapper.
pub fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` convenience wrapper.
pub fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// Deterministic retry schedule for 429/503 backpressure: exponential
/// backoff with seed-keyed jitter. Given the same seed the delay sequence
/// is byte-for-byte reproducible, so tests and CI scripts that exercise
/// backpressure stay deterministic; a `Retry-After` hint from the server
/// raises (never lowers under) the computed delay.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt total).
    pub max_retries: u32,
    /// Base delay for the first retry; doubles each retry.
    pub base_ms: u64,
    /// Ceiling for any single delay (pre-`Retry-After`).
    pub max_delay_ms: u64,
    /// Jitter key; same seed → same delays.
    pub seed: u64,
}

impl RetryPolicy {
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_ms: 25,
            max_delay_ms: 2_000,
            seed,
        }
    }

    /// The delay before retry `attempt` (1-based), ignoring `Retry-After`:
    /// `base * 2^(attempt-1)`, capped, plus 0–25% deterministic jitter.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32))
            .min(self.max_delay_ms);
        let jitter = proof_obs::fault::mix64(self.seed ^ u64::from(attempt)) % (exp / 4 + 1);
        exp + jitter
    }

    /// The delay actually slept before retry `attempt`, honoring the
    /// server's `Retry-After` hint (seconds) as a floor.
    pub fn effective_delay_ms(&self, attempt: u32, retry_after_s: Option<u64>) -> u64 {
        let hinted = retry_after_s.map_or(0, |s| s.saturating_mul(1_000));
        self.delay_ms(attempt).max(hinted)
    }
}

/// [`request`] with retries on 429/503 (and connect errors), backing off
/// per `policy`. Returns the last response once it is not retryable or
/// retries are exhausted.
pub fn request_with_retry(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    let mut attempt = 0u32;
    loop {
        match request_full(addr, method, path, body) {
            Ok(r) if (r.status == 429 || r.status == 503) && attempt < policy.max_retries => {
                attempt += 1;
                let ms = policy.effective_delay_ms(attempt, r.retry_after_s);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Ok(r) => return Ok((r.status, r.body)),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => return Err(e),
            Err(_) if attempt < policy.max_retries => {
                attempt += 1;
                let ms = policy.effective_delay_ms(attempt, None);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Err(e) => return Err(e),
        }
    }
}

/// `POST path` with backpressure-aware retries.
pub fn post_with_retry(
    addr: std::net::SocketAddr,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "POST", path, Some(body), policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_line_reads_short_lines() {
        let mut r = Cursor::new(b"GET / HTTP/1.1\r\nrest".to_vec());
        let mut buf = Vec::new();
        let n = read_line_capped(&mut r, &mut buf, 64).unwrap();
        assert_eq!(n, 16);
        assert_eq!(buf, b"GET / HTTP/1.1\r\n");
    }

    #[test]
    fn capped_line_rejects_oversized_line_without_buffering_it() {
        let big = vec![b'a'; 1024];
        let mut r = Cursor::new(big);
        let mut buf = Vec::new();
        let err = read_line_capped(&mut r, &mut buf, 100).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(buf.len() <= 100, "must not buffer past the cap");
    }

    #[test]
    fn capped_line_eof_is_zero() {
        let mut r = Cursor::new(Vec::new());
        let mut buf = Vec::new();
        assert_eq!(read_line_capped(&mut r, &mut buf, 16).unwrap(), 0);
    }

    #[test]
    fn retry_delays_are_deterministic_and_exponential() {
        let p = RetryPolicy::new(42);
        let a: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        let b: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // exponential base under the jitter: delay(i) within [base*2^(i-1), base*2^(i-1)*1.25]
        for (i, &d) in a.iter().enumerate() {
            let base = p.base_ms << i;
            assert!(d >= base && d <= base + base / 4, "attempt {i}: {d}");
        }
        let q = RetryPolicy::new(43);
        assert_ne!(
            (1..=4).map(|i| q.delay_ms(i)).collect::<Vec<_>>(),
            a,
            "different seed, different jitter"
        );
    }

    #[test]
    fn retry_after_is_a_floor_not_a_cap() {
        let p = RetryPolicy::new(7);
        assert_eq!(p.effective_delay_ms(1, Some(3)), 3_000.max(p.delay_ms(1)));
        assert_eq!(p.effective_delay_ms(1, None), p.delay_ms(1));
        // a tiny hint never lowers the computed backoff
        assert!(p.effective_delay_ms(2, Some(0)) >= p.delay_ms(2));
    }

    #[test]
    fn delay_caps_at_max() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ms: 100,
            max_delay_ms: 400,
            seed: 1,
        };
        assert!(p.delay_ms(10) <= 400 + 100, "capped plus <=25% jitter");
    }
}
