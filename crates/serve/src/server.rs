//! The daemon: TCP acceptor, worker pool, job registry, and HTTP routing.
//!
//! Lifecycle: `Server::start` binds the listener (port 0 picks an ephemeral
//! port), spawns the acceptor and `workers` pipeline workers, and returns.
//! `shutdown` stops accepting, waits for live connection handlers, closes
//! the queue, and joins the workers — which drain every queued and
//! in-flight job before exiting, so no accepted job is ever dropped.

use crate::http::{read_request, write_response, write_response_full, Request};
use crate::job::AnalysisJob;
use crate::metrics::{hist_value, Histogram, StageHistograms, WorkerMetrics};
use crate::peer::HttpPeer;
use crate::queue::JobQueue;
use crate::stage_cache::{StageCache, StageLookup};
use proof_core::{
    merged_chrome_trace, run_metric_stages_ctx, PipelineStage, PreparedStages, ProfileReport,
    ProofError, RunCtx,
};
use proof_models::ModelId;
use proof_obs::export::prometheus_text;
use proof_obs::{
    Counter, FieldValue, FlightRecorder, Level, MetricsRegistry, RingCollector, Tracer,
    DEFAULT_FLIGHT_CAPACITY,
};
use proof_store::{ArtifactKey, HitTier, Lookup, StoreConfig, TieredStore};
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Retry-After` seconds sent with 429/503 backpressure responses. One
/// second is deliberate: the client's seeded exponential backoff treats the
/// hint as a floor, so short hints keep retry storms cheap to test while
/// real congestion is still paced by the exponential schedule.
const RETRY_AFTER_S: u64 = 1;

/// Daemon configuration (see `proof serve --help` for the CLI mapping).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Pipeline worker threads.
    pub workers: usize,
    /// Byte budget for memory-resident artifacts.
    pub cache_budget_bytes: usize,
    /// Optional persistent artifact store directory.
    pub cache_dir: Option<PathBuf>,
    /// Bounded job-queue capacity; submissions beyond it get 429 with a
    /// `Retry-After` hint (backpressure, not failure).
    pub queue_capacity: usize,
    /// Entry budget for the in-process stage cache (pipeline prefixes kept
    /// live so mode pairs and sweep resubmissions skip compile/profile/map).
    pub stage_cache_capacity: usize,
    /// Default per-job deadline, measured from submission (queue wait
    /// counts). A job's own `timeout_ms` overrides it; `None` means
    /// unbounded.
    pub job_timeout_ms: Option<u64>,
    /// How many times a worker retries a job whose failure is
    /// [`ProofError::Transient`] before marking it failed.
    pub max_retries: u32,
    /// Base delay of the worker's retry backoff (doubles per retry, with
    /// seed-keyed jitter so reruns are reproducible).
    pub retry_base_ms: u64,
    /// Peer daemons whose caches back this daemon's remote tier. More can
    /// arrive at runtime via `POST /cache/peers` (fleet advertisement).
    pub peer_cache: Vec<SocketAddr>,
    /// Per-request bound on peer cache traffic — a slow peer must cost
    /// less than the rebuild it is trying to save.
    pub peer_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_budget_bytes: 64 << 20,
            cache_dir: None,
            queue_capacity: 256,
            stage_cache_capacity: 32,
            job_timeout_ms: None,
            max_retries: 2,
            retry_base_ms: 25,
            peer_cache: Vec::new(),
            peer_timeout_ms: 2000,
        }
    }
}

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    /// The job's deadline expired before it finished; reported separately
    /// from `Failed` so clients can tell "retry with a bigger budget" from
    /// "the spec is broken".
    TimedOut,
}

impl JobStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::TimedOut => "timed_out",
        }
    }
}

struct JobRecord {
    spec: AnalysisJob,
    key: String,
    status: JobStatus,
    group: Option<u64>,
    /// Observability trace id: every span the job's execution opens carries
    /// it, and `GET /trace/<id>` renders the collected result. Locally
    /// allocated unless the submitter supplied trace context (job-spec
    /// `trace_parent` or `X-Proof-Trace` header), in which case the job
    /// adopts the caller's trace id.
    trace: u64,
    /// The submitter's parent span id when the trace was adopted; recorded
    /// as a `remote_parent` field on the job span so a cross-node merge can
    /// re-parent this subtree under the dispatching span.
    remote_parent: Option<u64>,
    /// Whether the artifact came from the cache (set when finished).
    cache_hit: Option<bool>,
    /// Which tier served a hit (`"memory"`/`"disk"`/`"remote"`), or
    /// `"built"` on a miss; `None` until the job finishes.
    cache_tier: Option<&'static str>,
    error: Option<String>,
    artifact: Option<Arc<String>>,
    /// Merged Chrome-trace JSON, rendered eagerly when the job finishes (the
    /// ring buffer may evict the spans long before a client asks).
    trace_json: Option<Arc<String>>,
    submitted: Instant,
    queue_wait_us: Option<u64>,
    execute_us: Option<u64>,
    /// Pipeline attempts actually made (1 + transient retries); 0 until the
    /// job runs, stays 0 on a cache hit.
    attempts: u32,
    /// The deadline budget this job ran under (its own `timeout_ms` or the
    /// server default), for post-mortem visibility in status JSON.
    timeout_ms: Option<u64>,
}

impl JobRecord {
    fn to_value(&self, id: u64) -> Value {
        let mut m = Map::new();
        m.insert("id".to_string(), Value::from(id));
        m.insert("spec".to_string(), self.spec.to_value());
        m.insert("key".to_string(), Value::from(self.key.as_str()));
        m.insert("trace".to_string(), Value::from(self.trace));
        m.insert(
            "remote_parent".to_string(),
            self.remote_parent.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert("status".to_string(), Value::from(self.status.as_str()));
        m.insert(
            "group".to_string(),
            self.group.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert(
            "cache_hit".to_string(),
            self.cache_hit.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert(
            "cache_tier".to_string(),
            self.cache_tier.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert(
            "error".to_string(),
            self.error
                .as_deref()
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
        m.insert(
            "queue_wait_us".to_string(),
            self.queue_wait_us.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert(
            "execute_us".to_string(),
            self.execute_us.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert("attempts".to_string(), Value::from(self.attempts));
        m.insert(
            "timeout_ms".to_string(),
            self.timeout_ms.map(Value::from).unwrap_or(Value::Null),
        );
        Value::Object(m)
    }
}

/// Tracks live connection-handler threads so shutdown can wait for them.
#[derive(Default)]
struct ConnGate {
    count: Mutex<usize>,
    idle: Condvar,
}

impl ConnGate {
    fn enter(&self) {
        *lock_clean(&self.count) += 1;
    }
    fn exit(&self) {
        let mut n = lock_clean(&self.count);
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }
    fn wait_idle(&self) {
        let mut n = lock_clean(&self.count);
        while *n > 0 {
            n = self.idle.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Lock, recovering from poisoning. Workers run jobs under `catch_unwind`,
/// but a handler thread could still die between lock and unlock; the shared
/// maps stay structurally valid at every lock release, so recovery is safe
/// and keeps one bad request from wedging the daemon.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Shared {
    queue: JobQueue<u64>,
    registry: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    next_group: AtomicU64,
    cache: TieredStore,
    stage_cache: StageCache,
    worker_metrics: WorkerMetrics,
    /// The process-shared ring tracer: job spans land here, and the
    /// pipeline stages (which trace through the global facade) join them.
    tracer: Arc<Tracer>,
    ring: Arc<RingCollector>,
    /// Named instruments behind `GET /metrics` (both formats).
    metrics: MetricsRegistry,
    http_requests: Arc<Counter>,
    hist_queue_wait: Arc<Histogram>,
    hist_execute: Arc<Histogram>,
    hist_total: Arc<Histogram>,
    stage_hists: StageHistograms,
    /// Transient-stage retries performed by workers.
    retries_total: Arc<Counter>,
    /// Jobs that hit their deadline.
    timeouts_total: Arc<Counter>,
    /// Worker panics caught and converted into per-job failures.
    panics_total: Arc<Counter>,
    /// Submissions bounced with 429 (queue full).
    rejected_total: Arc<Counter>,
    job_timeout_ms: Option<u64>,
    max_retries: u32,
    retry_base_ms: u64,
    /// Timeout applied to peers added at runtime via `POST /cache/peers`.
    peer_timeout: Duration,
    /// Flight recorder: recent submissions, completions, retries, rejects,
    /// and cache-tier outcomes, served at `GET /debug/events` and dumped to
    /// stderr when a worker catches a panic.
    flight: Arc<FlightRecorder>,
    /// The bound address, recorded on every job span: the ring tracer is
    /// process-wide, so when several daemons share one process (embedded
    /// fleet nodes) this field is what attributes a span subtree to the
    /// daemon that actually executed it.
    local_addr: SocketAddr,
    /// Process start, for the `/healthz` uptime report.
    started: Instant,
    running: AtomicBool,
    conns: ConnGate,
}

impl Shared {
    fn reg(&self) -> MutexGuard<'_, HashMap<u64, JobRecord>> {
        lock_clean(&self.registry)
    }
}

/// What a graceful shutdown drained: every accepted job must be accounted
/// for as `done` or `failed`; `dropped` (still queued/running at exit) must
/// be zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownReport {
    pub done: usize,
    pub failed: usize,
    pub timed_out: usize,
    pub dropped: usize,
}

/// A running proof-serve daemon.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (tracer, ring) = proof_obs::shared_ring_tracer();
        let metrics = MetricsRegistry::new();
        let peer_timeout = Duration::from_millis(config.peer_timeout_ms.max(1));
        let cache = TieredStore::new(
            StoreConfig {
                memory_budget_bytes: config.cache_budget_bytes,
                disk_dir: config.cache_dir.clone(),
            },
            &metrics,
        )?;
        for &peer in &config.peer_cache {
            cache.add_peer(Arc::new(HttpPeer::new(peer, peer_timeout)));
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            registry: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            next_group: AtomicU64::new(1),
            cache,
            stage_cache: StageCache::new(config.stage_cache_capacity),
            worker_metrics: WorkerMetrics::new(config.workers.max(1)),
            tracer,
            ring,
            http_requests: metrics.counter("http_requests_total"),
            hist_queue_wait: metrics.histogram("job_queue_wait_us"),
            hist_execute: metrics.histogram("job_execute_us"),
            hist_total: metrics.histogram("job_total_us"),
            stage_hists: StageHistograms::register(&metrics),
            retries_total: metrics.counter("retries_total"),
            timeouts_total: metrics.counter("timeouts_total"),
            panics_total: metrics.counter("panics_total"),
            rejected_total: metrics.counter("rejected_total"),
            metrics,
            job_timeout_ms: config.job_timeout_ms,
            max_retries: config.max_retries,
            retry_base_ms: config.retry_base_ms,
            peer_timeout,
            flight: Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)),
            local_addr,
            started: Instant::now(),
            running: AtomicBool::new(true),
            conns: ConnGate::default(),
        });

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("proof-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("proof-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener))?
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: drains in-flight connections and every accepted
    /// job before returning an accounting of the drain.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop()
    }

    fn stop(&mut self) -> ShutdownReport {
        if !self.shared.running.swap(false, Ordering::SeqCst) {
            return ShutdownReport::default();
        }
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // let live request handlers finish (they may still enqueue)
        self.shared.conns.wait_idle();
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let reg = self.shared.reg();
        let count = |s: JobStatus| reg.values().filter(|r| r.status == s).count();
        ShutdownReport {
            done: count(JobStatus::Done),
            failed: count(JobStatus::Failed),
            timed_out: count(JobStatus::TimedOut),
            dropped: count(JobStatus::Queued) + count(JobStatus::Running),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.conns.enter();
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("proof-serve-conn".to_string())
            .spawn(move || {
                handle_connection(&shared, stream);
                shared.conns.exit();
            });
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        execute_job(shared, id);
    }
}

/// How one job execution ended short of success.
enum JobFailure {
    /// Deadline expired (status `timed_out`, report endpoint returns 504).
    TimedOut(String),
    /// Everything else — permanent errors, exhausted retries, panics.
    Failed(String),
}

/// Best-effort text of a caught panic payload (`panic!` with a string or
/// format message covers everything this codebase can raise).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker-side retry backoff: exponential in the retry number, jittered
/// deterministically by the job seed so a rerun of the same job sleeps the
/// same schedule.
fn backoff_ms(base: u64, retry: u32, seed: u64) -> u64 {
    let exp = base.saturating_mul(1u64 << u64::from(retry.saturating_sub(1).min(16)));
    exp + proof_obs::fault::mix64(seed ^ u64::from(retry)) % (exp / 4 + 1)
}

fn execute_job(shared: &Arc<Shared>, id: u64) {
    let timeout_ms;
    let (spec, key, submitted, trace_id, remote_parent) = {
        let mut reg = shared.reg();
        // A missing record means the registry was mutated out from under
        // the queue (should not happen); skip rather than kill the worker.
        let Some(rec) = reg.get_mut(&id) else { return };
        rec.status = JobStatus::Running;
        timeout_ms = rec.spec.timeout_ms.or(shared.job_timeout_ms);
        rec.timeout_ms = timeout_ms;
        let wait_us = rec.submitted.elapsed().as_micros() as u64;
        rec.queue_wait_us = Some(wait_us);
        shared.hist_queue_wait.record_us(wait_us);
        (
            rec.spec,
            rec.key.clone(),
            rec.submitted,
            rec.trace,
            rec.remote_parent,
        )
    };
    // The deadline counts from submission: a job that starved in the queue
    // past its budget fails fast at the first pipeline checkpoint.
    let ctx = RunCtx {
        deadline: timeout_ms.and_then(|ms| submitted.checked_add(Duration::from_millis(ms))),
        seed: spec.seed,
    };

    let _busy = shared.worker_metrics.busy_span();
    let exec_start = Instant::now();
    // Root span of the job's trace; the pipeline stages (tracing through
    // the global facade) nest under it because they run on this thread.
    let mut span = shared.tracer.span_in(trace_id, "job");
    span.field("job", id);
    // The ring tracer is process-wide: when several daemons share a process
    // the bound address is what ties this span subtree to this daemon.
    span.field("addr", shared.local_addr.to_string());
    // The dispatching span on the remote coordinator, if this job adopted a
    // caller's trace: a cross-node merge resolves it against the caller's
    // spans (process-local span ids cannot be compared directly).
    if let Some(parent) = remote_parent {
        span.field("remote_parent", parent);
    }
    // The prepared prefix used for this execution (if any), so the trace
    // export can merge the kernel timeline of the compiled model.
    let mut prep_used: Option<Arc<PreparedStages>> = None;
    let mut attempts = 0u32;
    let akey = ArtifactKey::new(&key).expect("cache_key emits valid artifact keys");
    // Single-flight: concurrent identical jobs wait here and then hit.
    // A hit can come from any tier — memory, disk, or a fleet peer's cache.
    let outcome: Result<(Arc<String>, Option<HitTier>), JobFailure> =
        match shared.cache.lookup_or_begin(&akey) {
            Lookup::Hit(artifact, tier) => Ok((artifact, Some(tier))),
            Lookup::Miss(guard) => {
                // Panic isolation + transient retry. `catch_unwind` converts a
                // panicking stage into a per-job failure (the daemon and its
                // sibling jobs keep running); transient errors retry with
                // deterministic backoff, timeouts and permanent errors do not.
                let run = loop {
                    attempts += 1;
                    match catch_unwind(AssertUnwindSafe(|| run_staged(shared, &spec, &ctx))) {
                        Err(payload) => {
                            shared.panics_total.inc();
                            let msg = panic_message(payload.as_ref());
                            shared.flight.record(
                                "panic",
                                format!("job {id} panicked: {msg}"),
                                vec![("job", FieldValue::U64(id))],
                            );
                            // the recorder's whole purpose: the history
                            // leading up to a panic survives in the log
                            shared.flight.dump_stderr("worker caught a panic");
                            break Err(JobFailure::Failed(format!("panicked: {msg}")));
                        }
                        Ok(Ok(ok)) => break Ok(ok),
                        Ok(Err(e)) if e.is_timeout() => {
                            shared.timeouts_total.inc();
                            break Err(JobFailure::TimedOut(e.to_string()));
                        }
                        Ok(Err(e)) if e.is_transient() && attempts <= shared.max_retries => {
                            shared.retries_total.inc();
                            shared.flight.record(
                                "retry",
                                format!("job {id} retrying transient failure: {e}"),
                                vec![
                                    ("job", FieldValue::U64(id)),
                                    ("attempt", FieldValue::U64(u64::from(attempts))),
                                ],
                            );
                            std::thread::sleep(Duration::from_millis(backoff_ms(
                                shared.retry_base_ms,
                                attempts,
                                spec.seed,
                            )));
                        }
                        Ok(Err(e)) => break Err(JobFailure::Failed(e.to_string())),
                    }
                };
                match run {
                    Ok((report, prep)) => {
                        prep_used = Some(prep);
                        // try_to_json instead of to_json: a non-finite value
                        // fails the job instead of aborting the worker thread.
                        match report.try_to_json() {
                            Ok(json) => Ok((guard.fulfill(json), None)),
                            Err(e) => Err(JobFailure::Failed(e.to_string())),
                        }
                    }
                    // dropping the guard lets a coalesced waiter retry the build
                    Err(f) => Err(f),
                }
            }
        };
    let execute_us = exec_start.elapsed().as_micros() as u64;
    shared.hist_execute.record_us(execute_us);
    shared
        .hist_total
        .record_us(submitted.elapsed().as_micros() as u64);

    span.field("cache_hit", matches!(outcome, Ok((_, Some(_)))));
    if let Ok((_, tier)) = &outcome {
        span.field("cache_tier", tier.map(|t| t.as_str()).unwrap_or("built"));
    }
    let status = match &outcome {
        Ok(_) => "done",
        Err(JobFailure::TimedOut(_)) => "timed_out",
        Err(JobFailure::Failed(_)) => "failed",
    };
    span.field("status", status);
    span.finish();
    let (level, message) = match &outcome {
        Ok(_) => (Level::Info, format!("job {id} {status}")),
        Err(JobFailure::TimedOut(e)) => (Level::Warn, format!("job {id} timed out: {e}")),
        Err(JobFailure::Failed(e)) => (Level::Warn, format!("job {id} failed: {e}")),
    };
    shared.tracer.event(
        level,
        "proof_serve::worker",
        message,
        vec![
            ("job", FieldValue::U64(id)),
            ("execute_us", FieldValue::U64(execute_us)),
            ("attempts", FieldValue::U64(u64::from(attempts))),
        ],
    );
    let tier = match &outcome {
        Ok((_, tier)) => tier.map(|t| t.as_str()).unwrap_or("built"),
        Err(_) => "none",
    };
    shared.flight.record(
        "job",
        format!("job {id} {status}"),
        vec![
            ("job", FieldValue::U64(id)),
            ("status", FieldValue::Str(status.to_string())),
            ("cache_tier", FieldValue::Str(tier.to_string())),
            ("execute_us", FieldValue::U64(execute_us)),
        ],
    );
    // Render the merged trace now: the ring buffer may evict these spans
    // long before a client asks for them. `addr` (ephemeral port) and
    // `remote_parent` (a foreign process-local span id) vary run to run, so
    // they stay out of the byte-reproducible chrome export; the raw
    // `?format=spans` listing keeps both for cross-node merging.
    let mut trace_spans = shared.ring.trace_spans(trace_id);
    for s in &mut trace_spans {
        s.fields
            .retain(|(k, _)| *k != "addr" && *k != "remote_parent");
    }
    let trace_json = merged_chrome_trace(
        &trace_spans,
        prep_used.as_deref().map(|p| &p.compiled.compiled),
    );

    let mut reg = shared.reg();
    let Some(rec) = reg.get_mut(&id) else { return };
    rec.execute_us = Some(execute_us);
    rec.attempts = attempts;
    rec.trace_json = Some(Arc::new(trace_json));
    match outcome {
        Ok((artifact, tier)) => {
            rec.status = JobStatus::Done;
            rec.cache_hit = Some(tier.is_some());
            rec.cache_tier = Some(tier.map(|t| t.as_str()).unwrap_or("built"));
            rec.artifact = Some(artifact);
        }
        Err(JobFailure::TimedOut(msg)) => {
            rec.status = JobStatus::TimedOut;
            rec.error = Some(msg);
        }
        Err(JobFailure::Failed(msg)) => {
            rec.status = JobStatus::Failed;
            rec.error = Some(msg);
        }
    }
}

/// Run a job through the staged pipeline, reusing the mode-independent
/// prefix (compile → built-in profile → map) from the stage cache when the
/// same spec — under any metric mode — was prepared before. Prefix stage
/// timings are recorded into the stage histograms once, when built; the
/// metric/assembly stages are recorded on every execution. The `ctx`
/// carries the job deadline and seed into the per-stage checkpoints.
fn run_staged(
    shared: &Shared,
    spec: &AnalysisJob,
    ctx: &RunCtx,
) -> Result<(ProfileReport, Arc<PreparedStages>), ProofError> {
    let skey = spec.stage_cache_key();
    // Single-flight: concurrent misses on one prefix coalesce onto a
    // single prepare. A failed prepare drops the guard (releasing any
    // waiters to build themselves); a panic unwinds through here and the
    // guard's Drop does the same.
    let prep = match shared.stage_cache.lookup_or_begin(&skey) {
        StageLookup::Hit(prep) => prep,
        StageLookup::Miss(guard) => {
            let prep = Arc::new(spec.prepare_ctx(ctx)?);
            shared.stage_hists.record(&prep.trace.stages);
            guard.fulfill(prep)
        }
    };
    let report = run_metric_stages_ctx(&prep, spec.mode, ctx)?;
    shared.stage_hists.record(
        report
            .trace
            .stages
            .iter()
            .filter(|t| matches!(t.stage, PipelineStage::Metrics | PipelineStage::Assemble)),
    );
    Ok((report, prep))
}

/// Why a submission was not accepted; maps to the HTTP reply.
enum SubmitError {
    /// Shutdown in progress — 503, do not retry against this instance.
    ShuttingDown,
    /// Bounded queue is full — 429 with `Retry-After` (backpressure).
    QueueFull,
}

impl SubmitError {
    fn reply(&self, shared: &Shared) -> (u16, String, Option<u64>) {
        match self {
            SubmitError::ShuttingDown => (503, error_body("server is shutting down"), None),
            SubmitError::QueueFull => {
                shared.rejected_total.inc();
                shared.flight.record(
                    "reject",
                    "submission bounced: queue full",
                    vec![("queue_depth", FieldValue::U64(shared.queue.depth() as u64))],
                );
                (429, error_body("job queue is full"), Some(RETRY_AFTER_S))
            }
        }
    }
}

/// Register + enqueue one parsed job. Returns `(job id, trace id)`.
/// `trace_ctx` is the submitter's distributed trace context: the job-spec
/// `trace_parent` field wins, then the transport-level `X-Proof-Trace`
/// header, then a locally allocated trace id.
fn submit(
    shared: &Shared,
    spec: AnalysisJob,
    group: Option<u64>,
    trace_ctx: Option<(u64, u64)>,
) -> Result<(u64, u64), SubmitError> {
    if !shared.running.load(Ordering::SeqCst) {
        return Err(SubmitError::ShuttingDown);
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let (trace, remote_parent) = match spec.trace_parent.or(trace_ctx) {
        Some((trace, span)) => (trace, Some(span)),
        None => (proof_obs::new_trace_id(), None),
    };
    let record = JobRecord {
        spec,
        key: spec.cache_key(),
        status: JobStatus::Queued,
        group,
        trace,
        remote_parent,
        cache_hit: None,
        cache_tier: None,
        error: None,
        artifact: None,
        trace_json: None,
        submitted: Instant::now(),
        queue_wait_us: None,
        execute_us: None,
        attempts: 0,
        timeout_ms: None,
    };
    shared.reg().insert(id, record);
    if shared.queue.try_push(id).is_err() {
        shared.reg().remove(&id);
        return Err(SubmitError::QueueFull);
    }
    shared.flight.record(
        "submit",
        format!("job {id} queued"),
        vec![
            ("job", FieldValue::U64(id)),
            ("trace", FieldValue::U64(trace)),
            ("adopted_trace", FieldValue::Bool(remote_parent.is_some())),
        ],
    );
    Ok((id, trace))
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.http_requests.inc();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let request = match read_request(&mut stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            access_log(shared, &peer, "-", "-", 400);
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()));
            return;
        }
    };
    let (status, body, retry_after_s) = route(shared, &request);
    access_log(shared, &peer, &request.method, &request.path, status);
    // The Prometheus exposition is the one non-JSON response body.
    let content_type = if request.path == "/metrics" && status == 200 && body.starts_with('#') {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    let _ = write_response_full(&mut stream, status, content_type, retry_after_s, &body);
}

/// One structured access-log event per request (stderr when `PROOF_LOG`
/// allows `info`, and into the shared ring collector).
fn access_log(shared: &Shared, peer: &str, method: &str, path: &str, status: u16) {
    shared.tracer.event(
        Level::Info,
        "proof_serve::http",
        format!("{method} {path} -> {status}"),
        vec![
            ("peer", FieldValue::Str(peer.to_string())),
            ("status", FieldValue::U64(u64::from(status))),
        ],
    );
}

fn error_body(msg: &str) -> String {
    let mut m = Map::new();
    m.insert("error".to_string(), Value::from(msg));
    Value::Object(m).to_string()
}

fn route(shared: &Shared, req: &Request) -> (u16, String, Option<u64>) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    // The submission endpoints are the only ones that backpressure (and so
    // the only ones that attach Retry-After).
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => return post_job(shared, &req.body, req.trace_parent),
        ("POST", ["sweep"]) => return post_sweep(shared, &req.body, req.trace_parent),
        _ => {}
    }
    let (status, body) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["jobs", id]) => get_job(shared, id),
        ("GET", ["jobs", id, "report"]) => get_report(shared, id),
        ("GET", ["sweep", gid]) => get_sweep(shared, gid),
        ("GET", ["trace", tid]) => get_trace(shared, tid, &req.query),
        ("GET", ["cache", key]) => get_cache(shared, key),
        ("PUT", ["cache", key]) => put_cache(shared, key, &req.body),
        ("POST", ["cache", "peers"]) => post_cache_peers(shared, &req.body),
        ("GET", ["metrics"]) => (200, metrics_body(shared, &req.query)),
        ("GET", ["models"]) => (200, models_body()),
        ("GET", ["healthz"]) => (200, healthz_body(shared)),
        ("GET", ["debug", "events"]) => (200, shared.flight.to_json()),
        ("GET" | "POST" | "PUT", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    };
    (status, body, None)
}

/// The fleet probe target: liveness plus the load signals a coordinator
/// needs for capacity-weighted dispatch — queue depth/capacity, worker
/// count, and workers busy right now — plus uptime, build version, and a
/// per-tier cache hit/miss summary for operators eyeballing a node.
fn healthz_body(shared: &Shared) -> String {
    let workers = shared.worker_metrics.snapshot();
    let mut m = Map::new();
    m.insert("status".to_string(), Value::from("ok"));
    m.insert(
        "version".to_string(),
        Value::from(env!("CARGO_PKG_VERSION")),
    );
    m.insert(
        "uptime_s".to_string(),
        Value::from(shared.started.elapsed().as_secs()),
    );
    m.insert(
        "queue_depth".to_string(),
        Value::from(shared.queue.depth() as u64),
    );
    m.insert(
        "queue_capacity".to_string(),
        Value::from(shared.queue.capacity() as u64),
    );
    m.insert("workers".to_string(), Value::from(workers.count as u64));
    m.insert("in_flight".to_string(), Value::from(workers.busy));
    m.insert("cache".to_string(), cache_tier_summary(shared));
    Value::Object(m).to_string()
}

/// Per-tier cache hit counters plus the shared miss count, read from the
/// registry instruments the tiered store keeps live.
fn cache_tier_summary(shared: &Shared) -> Value {
    let mut m = Map::new();
    for (label, counter) in [
        ("memory_hits", "cache_memory_hits_total"),
        ("disk_hits", "cache_disk_hits_total"),
        ("remote_hits", "cache_remote_hits_total"),
        ("misses", "cache_misses_total"),
    ] {
        m.insert(
            label.to_string(),
            Value::from(shared.metrics.counter(counter).get()),
        );
    }
    Value::Object(m)
}

fn post_job(
    shared: &Shared,
    body: &str,
    trace_ctx: Option<(u64, u64)>,
) -> (u16, String, Option<u64>) {
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}")), None),
    };
    let spec = match AnalysisJob::from_value(&value) {
        Ok(s) => s,
        Err(e) => return (400, error_body(&e), None),
    };
    match submit(shared, spec, None, trace_ctx) {
        Ok((id, trace)) => {
            let mut m = Map::new();
            m.insert("id".to_string(), Value::from(id));
            m.insert("key".to_string(), Value::from(spec.cache_key()));
            m.insert("trace".to_string(), Value::from(trace));
            m.insert("status".to_string(), Value::from("queued"));
            (201, Value::Object(m).to_string(), None)
        }
        Err(e) => e.reply(shared),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn get_job(shared: &Shared, id: &str) -> (u16, String) {
    let Some(id) = parse_id(id) else {
        return (400, error_body("job id must be an integer"));
    };
    let reg = shared.reg();
    match reg.get(&id) {
        Some(rec) => (200, rec.to_value(id).to_string()),
        None => (404, error_body("no such job")),
    }
}

fn get_report(shared: &Shared, id: &str) -> (u16, String) {
    let Some(id) = parse_id(id) else {
        return (400, error_body("job id must be an integer"));
    };
    let reg = shared.reg();
    match reg.get(&id) {
        None => (404, error_body("no such job")),
        Some(rec) => match (rec.status, &rec.artifact) {
            (JobStatus::Done, Some(artifact)) => (200, artifact.as_str().to_string()),
            (JobStatus::Failed, _) => (
                500,
                error_body(rec.error.as_deref().unwrap_or("job failed")),
            ),
            (JobStatus::TimedOut, _) => (
                504,
                error_body(rec.error.as_deref().unwrap_or("job deadline exceeded")),
            ),
            _ => (409, error_body("job not finished yet")),
        },
    }
}

/// `GET /trace/<trace-id>` — the merged Chrome-trace JSON of a finished
/// job's execution (pipeline-stage spans + kernel timeline on one clock).
/// The id is the `trace` field of the job-submission reply and job status.
///
/// `?format=spans` returns the raw span records of the trace from the ring
/// collector instead: `{"trace":id,"spans":[...]}`, sorted by logical start
/// time. This is the cross-node merge surface — a fleet coordinator that
/// propagated its trace id into dispatched jobs pulls every node's share of
/// the trace here and re-assembles one document, which a pre-rendered
/// per-job chrome trace could not support (an adopted trace spans many
/// jobs).
fn get_trace(shared: &Shared, tid: &str, query: &str) -> (u16, String) {
    let Some(tid) = parse_id(tid) else {
        return (400, error_body("trace id must be an integer"));
    };
    if crate::http::query_has(query, "format", "spans") {
        return trace_spans_body(shared, tid);
    }
    let reg = shared.reg();
    match reg.values().find(|r| r.trace == tid) {
        None => (404, error_body("no such trace")),
        Some(rec) => match &rec.trace_json {
            Some(json) => (200, json.as_str().to_string()),
            None => (409, error_body("job not finished yet")),
        },
    }
}

fn field_value_json(v: &FieldValue) -> Value {
    match v {
        FieldValue::U64(n) => Value::from(*n),
        FieldValue::I64(n) => Value::from(*n),
        FieldValue::F64(x) if x.is_finite() => Value::from(*x),
        FieldValue::F64(_) => Value::Null,
        FieldValue::Bool(b) => Value::from(*b),
        FieldValue::Str(s) => Value::from(s.as_str()),
    }
}

/// The `?format=spans` body: every span of `tid` still held by the ring,
/// sorted by (logical start, id) so the listing is deterministic.
fn trace_spans_body(shared: &Shared, tid: u64) -> (u16, String) {
    let mut spans = shared.ring.trace_spans(tid);
    if spans.is_empty() {
        return (404, error_body("no such trace"));
    }
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
    let mut arr = Vec::with_capacity(spans.len());
    for s in &spans {
        let mut m = Map::new();
        m.insert("id".to_string(), Value::from(s.id));
        m.insert("parent".to_string(), Value::from(s.parent));
        m.insert("name".to_string(), Value::from(s.name));
        m.insert("start_us".to_string(), Value::from(s.start_us));
        m.insert("end_us".to_string(), Value::from(s.end_us));
        m.insert("wall_us".to_string(), Value::from(s.wall_us));
        let mut fields = Map::new();
        for (k, v) in &s.fields {
            fields.insert(k.to_string(), field_value_json(v));
        }
        m.insert("fields".to_string(), Value::Object(fields));
        arr.push(Value::Object(m));
    }
    let mut m = Map::new();
    m.insert("trace".to_string(), Value::from(tid));
    m.insert("spans".to_string(), Value::Array(arr));
    (200, Value::Object(m).to_string())
}

/// `GET /cache/<key>` — the peer-cache read surface. Serves only the
/// *local* tiers (memory, then disk): a peer asking us must never make us
/// ask our own peers, or two cold nodes would chase each other's remote
/// tiers for a key neither has.
fn get_cache(shared: &Shared, key: &str) -> (u16, String) {
    let key = match ArtifactKey::new(key) {
        Ok(k) => k,
        Err(e) => return (400, error_body(&e)),
    };
    match shared.cache.get_local(&key) {
        Some(artifact) => (200, artifact.as_str().to_string()),
        None => (404, error_body("no such cache entry")),
    }
}

/// `PUT /cache/<key>` — the peer-cache write surface (publish-on-build
/// replication). The body must parse as JSON; anything else is rejected so
/// a confused peer cannot poison the local tiers.
fn put_cache(shared: &Shared, key: &str, body: &str) -> (u16, String) {
    let key = match ArtifactKey::new(key) {
        Ok(k) => k,
        Err(e) => return (400, error_body(&e)),
    };
    match shared.cache.insert_local(&key, body.to_string()) {
        Ok(bytes) => {
            let mut m = Map::new();
            m.insert("key".to_string(), Value::from(key.as_str()));
            m.insert("bytes".to_string(), Value::from(bytes as u64));
            (201, Value::Object(m).to_string())
        }
        Err(e) => (400, error_body(&e.to_string())),
    }
}

/// `POST /cache/peers` — fleet advertisement: `{"peers":["ip:port",...]}`
/// attaches (or refreshes) peer cache endpoints on the remote tier.
fn post_cache_peers(shared: &Shared, body: &str) -> (u16, String) {
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}"))),
    };
    let Some(peers) = value.get("peers").and_then(Value::as_array) else {
        return (
            400,
            error_body("body must be {\"peers\": [\"ip:port\", ...]}"),
        );
    };
    let mut added = 0u64;
    for peer in peers {
        let Some(addr) = peer.as_str().and_then(|s| s.parse::<SocketAddr>().ok()) else {
            return (400, error_body(&format!("invalid peer address: {peer}")));
        };
        shared
            .cache
            .add_peer(Arc::new(HttpPeer::new(addr, shared.peer_timeout)));
        added += 1;
    }
    let mut m = Map::new();
    m.insert("added".to_string(), Value::from(added));
    m.insert(
        "peers".to_string(),
        Value::from(shared.cache.peer_count() as u64),
    );
    (200, Value::Object(m).to_string())
}

/// Expand a sweep request into its model × batch × dtype grid.
fn sweep_grid(body: &Value) -> Result<Vec<Value>, String> {
    let obj = body
        .as_object()
        .ok_or_else(|| "sweep spec must be a JSON object".to_string())?;
    let scalar_or_list = |scalar: &str, list: &str| -> Result<Vec<Value>, String> {
        if let Some(v) = obj.get(list) {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("field '{list}' must be an array"))?;
            if arr.is_empty() {
                return Err(format!("field '{list}' must not be empty"));
            }
            Ok(arr.clone())
        } else if let Some(v) = obj.get(scalar) {
            Ok(vec![v.clone()])
        } else {
            Ok(vec![Value::Null])
        }
    };
    let models = scalar_or_list("model", "models")?;
    let batches = scalar_or_list("batch", "batches")?;
    let dtypes = scalar_or_list("dtype", "dtypes")?;
    if models.len() * batches.len() * dtypes.len() > 4096 {
        return Err("sweep grid larger than 4096 points".to_string());
    }
    let mut base = Map::new();
    for (k, v) in obj {
        if !matches!(
            k.as_str(),
            "model" | "models" | "batch" | "batches" | "dtype" | "dtypes"
        ) {
            base.insert(k.clone(), v.clone());
        }
    }
    let mut grid = Vec::new();
    for model in &models {
        for dtype in &dtypes {
            for batch in &batches {
                let mut point = base.clone();
                for (key, v) in [("model", model), ("batch", batch), ("dtype", dtype)] {
                    if !v.is_null() {
                        point.insert(key.to_string(), v.clone());
                    }
                }
                grid.push(Value::Object(point));
            }
        }
    }
    Ok(grid)
}

fn post_sweep(
    shared: &Shared,
    body: &str,
    trace_ctx: Option<(u64, u64)>,
) -> (u16, String, Option<u64>) {
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("invalid JSON: {e}")), None),
    };
    let grid = match sweep_grid(&value) {
        Ok(g) => g,
        Err(e) => return (400, error_body(&e), None),
    };
    // validate the whole grid before enqueueing anything
    let mut specs = Vec::with_capacity(grid.len());
    for point in &grid {
        match AnalysisJob::from_value(point) {
            Ok(s) => specs.push(s),
            Err(e) => return (400, error_body(&e), None),
        }
    }
    if shared.queue.capacity() - shared.queue.depth() < specs.len() {
        shared.rejected_total.inc();
        return (
            429,
            error_body("job queue cannot hold the whole sweep"),
            Some(RETRY_AFTER_S),
        );
    }
    let group = shared.next_group.fetch_add(1, Ordering::SeqCst);
    let mut ids = Vec::with_capacity(specs.len());
    for spec in specs {
        match submit(shared, spec, Some(group), trace_ctx) {
            Ok((id, _)) => ids.push(Value::from(id)),
            Err(e) => return e.reply(shared),
        }
    }
    let mut m = Map::new();
    m.insert("group".to_string(), Value::from(group));
    m.insert("submitted".to_string(), Value::from(ids.len()));
    m.insert("jobs".to_string(), Value::Array(ids));
    (201, Value::Object(m).to_string(), None)
}

fn get_sweep(shared: &Shared, gid: &str) -> (u16, String) {
    let Some(gid) = parse_id(gid) else {
        return (400, error_body("sweep group id must be an integer"));
    };
    let reg = shared.reg();
    let mut members: Vec<(u64, &JobRecord)> = reg
        .iter()
        .filter(|(_, r)| r.group == Some(gid))
        .map(|(&id, r)| (id, r))
        .collect();
    if members.is_empty() {
        return (404, error_body("no such sweep group"));
    }
    members.sort_by_key(|(id, _)| *id);
    let count = |s: JobStatus| members.iter().filter(|(_, r)| r.status == s).count();
    let mut m = Map::new();
    m.insert("group".to_string(), Value::from(gid));
    m.insert("total".to_string(), Value::from(members.len()));
    m.insert("queued".to_string(), Value::from(count(JobStatus::Queued)));
    m.insert(
        "running".to_string(),
        Value::from(count(JobStatus::Running)),
    );
    m.insert("done".to_string(), Value::from(count(JobStatus::Done)));
    m.insert("failed".to_string(), Value::from(count(JobStatus::Failed)));
    m.insert(
        "timed_out".to_string(),
        Value::from(count(JobStatus::TimedOut)),
    );
    m.insert(
        "jobs".to_string(),
        Value::Array(members.iter().map(|(id, r)| r.to_value(*id)).collect()),
    );
    (200, Value::Object(m).to_string())
}

fn metrics_body(shared: &Shared, query: &str) -> String {
    if crate::http::query_has(query, "format", "prometheus") {
        return prometheus_body(shared);
    }
    let mut queue = Map::new();
    queue.insert("depth".to_string(), Value::from(shared.queue.depth()));
    queue.insert("capacity".to_string(), Value::from(shared.queue.capacity()));

    let mut jobs = Map::new();
    {
        let reg = shared.reg();
        let count = |s: JobStatus| reg.values().filter(|r| r.status == s).count();
        jobs.insert("total".to_string(), Value::from(reg.len()));
        jobs.insert("queued".to_string(), Value::from(count(JobStatus::Queued)));
        jobs.insert(
            "running".to_string(),
            Value::from(count(JobStatus::Running)),
        );
        jobs.insert("done".to_string(), Value::from(count(JobStatus::Done)));
        jobs.insert("failed".to_string(), Value::from(count(JobStatus::Failed)));
        jobs.insert(
            "timed_out".to_string(),
            Value::from(count(JobStatus::TimedOut)),
        );
    }

    let mut latency = Map::new();
    latency.insert(
        "queue_wait_us".to_string(),
        hist_value(&shared.hist_queue_wait.snapshot()),
    );
    latency.insert(
        "execute_us".to_string(),
        hist_value(&shared.hist_execute.snapshot()),
    );
    latency.insert(
        "total_us".to_string(),
        hist_value(&shared.hist_total.snapshot()),
    );

    let mut stages = Map::new();
    for (name, snap) in shared.stage_hists.snapshot() {
        stages.insert(format!("{name}_us"), hist_value(&snap));
    }

    let mut m = Map::new();
    m.insert("queue".to_string(), Value::Object(queue));
    m.insert("jobs".to_string(), Value::Object(jobs));
    m.insert(
        "workers".to_string(),
        serde_json::to_value(&shared.worker_metrics.snapshot()),
    );
    m.insert(
        "cache".to_string(),
        serde_json::to_value(&shared.cache.stats()),
    );
    m.insert(
        "stage_cache".to_string(),
        serde_json::to_value(&shared.stage_cache.stats()),
    );
    m.insert("latency".to_string(), Value::Object(latency));
    m.insert("stages".to_string(), Value::Object(stages));
    Value::Object(m).to_string()
}

/// `GET /metrics?format=prometheus` — text exposition of every registry
/// instrument plus scrape-time derived series (queue/job/worker/cache
/// state), all under the `proof_serve_` prefix.
fn prometheus_body(shared: &Shared) -> String {
    let mut snap = shared.metrics.snapshot();

    let reg = shared.reg();
    let jobs = |s: JobStatus| reg.values().filter(|r| r.status == s).count() as u64;
    let workers = shared.worker_metrics.snapshot();
    let cache = shared.cache.stats();
    let stage_cache = shared.stage_cache.stats();
    // Per-tier cache counters (cache_memory_hits_total, cache_disk_hits_total,
    // cache_remote_hits_total, cache_misses_total, cache_evictions_total, ...)
    // are registered live on the registry by the store, so the snapshot
    // already carries them; only the aggregate and non-registry series are
    // derived here.
    snap.counters.extend([
        ("jobs_done_total".to_string(), jobs(JobStatus::Done)),
        ("jobs_failed_total".to_string(), jobs(JobStatus::Failed)),
        (
            "jobs_timed_out_total".to_string(),
            jobs(JobStatus::TimedOut),
        ),
        ("jobs_submitted_total".to_string(), reg.len() as u64),
        ("jobs_executed_total".to_string(), workers.jobs_executed),
        ("cache_hits_total".to_string(), cache.hits),
        ("stage_cache_hits_total".to_string(), stage_cache.hits),
        ("stage_cache_misses_total".to_string(), stage_cache.misses),
        (
            "trace_spans_dropped_total".to_string(),
            shared.ring.dropped(),
        ),
    ]);
    snap.gauges.extend([
        ("queue_depth".to_string(), shared.queue.depth() as f64),
        ("queue_capacity".to_string(), shared.queue.capacity() as f64),
        ("jobs_queued".to_string(), jobs(JobStatus::Queued) as f64),
        ("jobs_running".to_string(), jobs(JobStatus::Running) as f64),
        ("workers".to_string(), workers.count as f64),
        ("workers_busy".to_string(), workers.busy as f64),
        ("worker_utilization".to_string(), workers.utilization),
        ("cache_entries".to_string(), cache.entries as f64),
        ("cache_bytes".to_string(), cache.bytes as f64),
        ("cache_budget_bytes".to_string(), cache.budget_bytes as f64),
        ("cache_peers".to_string(), cache.peers as f64),
        (
            "stage_cache_entries".to_string(),
            stage_cache.entries as f64,
        ),
    ]);
    drop(reg);
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    prometheus_text(&snap, "proof_serve_")
}

fn models_body() -> String {
    let mut m = Map::new();
    m.insert(
        "models".to_string(),
        Value::Array(
            ModelId::ALL
                .iter()
                .map(|id| Value::from(id.slug()))
                .collect(),
        ),
    );
    Value::Object(m).to_string()
}
