//! The blocking HTTP client for proof-serve's JSON API — the one
//! implementation shared by the fleet coordinator, the CLI walkthroughs,
//! and the integration tests.
//!
//! Promoted out of `http` (where it started life as test-adjacent helpers)
//! into a public module: [`request_full`] is the primitive (status + body +
//! parsed `Retry-After`), [`RetryPolicy`] adds deterministic seed-keyed
//! exponential backoff that honors a backpressuring server's `Retry-After`
//! hint as a floor, and every read mirrors the server-side caps so a
//! misbehaving peer cannot exhaust client memory. All entry points have a
//! `*_timeout` variant that bounds connect/read/write — the fleet
//! dispatcher uses those to tell a dead or wedged node from a slow one.

use crate::http::{bad, read_line_capped, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client response: status, body, and the parsed `Retry-After` seconds
/// if the server sent one.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub retry_after_s: Option<u64>,
}

/// Blocking one-shot client: send `method path` with an optional JSON body,
/// return `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let r = request_full(addr, method, path, body)?;
    Ok((r.status, r.body))
}

/// [`request`] keeping the response headers the retry layer needs. Reads
/// are capped like the server side: headers to `MAX_HEADER_BYTES`, body to
/// `MAX_BODY_BYTES` whether or not the server declared a length.
pub fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    request_full_timeout(addr, method, path, body, None)
}

/// [`request_full`] with an optional wall-clock bound applied to the
/// connect and to every read/write on the socket. A `None` timeout blocks
/// indefinitely (the pre-fleet behavior); with `Some(d)`, a node that
/// accepts the connection but never answers surfaces as a timeout error
/// instead of hanging the caller.
pub fn request_full_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Option<Duration>,
) -> std::io::Result<Response> {
    request_full_timeout_headers(addr, method, path, body, timeout, &[])
}

/// [`request_full_timeout`] with caller-supplied extra request headers —
/// the fleet dispatcher uses this to attach `X-Proof-Trace` context to
/// shard submissions. Header names and values must be single-line; they are
/// sent verbatim.
pub fn request_full_timeout_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Option<Duration>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut stream = match timeout {
        Some(d) => TcpStream::connect_timeout(&addr, d)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let body = body.unwrap_or("");
    let extra: String = extra_headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEADER_BYTES;
    let mut raw_status = Vec::new();
    let n = read_line_capped(&mut reader, &mut raw_status, budget)?;
    if n == 0 {
        return Err(bad("connection closed before status line"));
    }
    budget -= n;
    let status_line = String::from_utf8(raw_status).map_err(|_| bad("status line is not UTF-8"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = None;
    let mut retry_after_s = None;
    loop {
        let mut raw = Vec::new();
        let n = read_line_capped(&mut reader, &mut raw, budget)?;
        if n == 0 {
            return Err(bad("connection closed inside headers"));
        }
        budget -= n;
        let line = String::from_utf8(raw).map_err(|_| bad("header is not UTF-8"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after_s = value.trim().parse::<u64>().ok();
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) if n > MAX_BODY_BYTES => return Err(bad("body too large")),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"))?;
        }
        None => {
            let mut limited = reader.take(MAX_BODY_BYTES as u64 + 1);
            limited.read_to_string(&mut body)?;
            if body.len() > MAX_BODY_BYTES {
                return Err(bad("body too large"));
            }
        }
    }
    Ok(Response {
        status,
        body,
        retry_after_s,
    })
}

/// `GET path` convenience wrapper.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

/// `POST path` convenience wrapper.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// Deterministic retry schedule for 429/503 backpressure: exponential
/// backoff with seed-keyed jitter. Given the same seed the delay sequence
/// is byte-for-byte reproducible, so tests and CI scripts that exercise
/// backpressure stay deterministic; a `Retry-After` hint from the server
/// raises (never lowers under) the computed delay.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt total).
    pub max_retries: u32,
    /// Base delay for the first retry; doubles each retry.
    pub base_ms: u64,
    /// Ceiling for any single delay (pre-`Retry-After`).
    pub max_delay_ms: u64,
    /// Jitter key; same seed → same delays.
    pub seed: u64,
}

impl RetryPolicy {
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_ms: 25,
            max_delay_ms: 2_000,
            seed,
        }
    }

    /// The delay before retry `attempt` (1-based), ignoring `Retry-After`:
    /// `base * 2^(attempt-1)`, capped, plus 0–25% deterministic jitter.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32))
            .min(self.max_delay_ms);
        let jitter = proof_obs::fault::mix64(self.seed ^ u64::from(attempt)) % (exp / 4 + 1);
        exp + jitter
    }

    /// The delay actually slept before retry `attempt`, honoring the
    /// server's `Retry-After` hint (seconds) as a floor.
    pub fn effective_delay_ms(&self, attempt: u32, retry_after_s: Option<u64>) -> u64 {
        let hinted = retry_after_s.map_or(0, |s| s.saturating_mul(1_000));
        self.delay_ms(attempt).max(hinted)
    }
}

/// [`request`] with retries on 429/503 (and connect errors), backing off
/// per `policy`. Returns the last response once it is not retryable or
/// retries are exhausted.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    let r = request_with_retry_timeout(addr, method, path, body, policy, None)?;
    Ok((r.status, r.body))
}

/// The full retrying client: [`request_full_timeout`] under a
/// [`RetryPolicy`]. Retries 429/503 honoring `Retry-After` as a floor, and
/// transport errors other than a refused connection (a refused connection
/// means the server is gone — the caller should pick another node, not
/// wait). Returns the last [`Response`] once it is not retryable or the
/// budget is exhausted — a 429 that outlives `policy.max_retries` comes
/// back as that 429 for the caller to act on.
pub fn request_with_retry_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    timeout: Option<Duration>,
) -> std::io::Result<Response> {
    request_with_retry_timeout_headers(addr, method, path, body, policy, timeout, &[])
}

/// [`request_with_retry_timeout`] with extra request headers carried on
/// every attempt (e.g. `X-Proof-Trace` context on fleet submissions).
pub fn request_with_retry_timeout_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    timeout: Option<Duration>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut attempt = 0u32;
    loop {
        match request_full_timeout_headers(addr, method, path, body, timeout, extra_headers) {
            Ok(r) if (r.status == 429 || r.status == 503) && attempt < policy.max_retries => {
                attempt += 1;
                let ms = policy.effective_delay_ms(attempt, r.retry_after_s);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Ok(r) => return Ok(r),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => return Err(e),
            Err(_) if attempt < policy.max_retries => {
                attempt += 1;
                let ms = policy.effective_delay_ms(attempt, None);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Err(e) => return Err(e),
        }
    }
}

/// `POST path` with backpressure-aware retries.
pub fn post_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "POST", path, Some(body), policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_are_deterministic_and_exponential() {
        let p = RetryPolicy::new(42);
        let a: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        let b: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // exponential base under the jitter: delay(i) within [base*2^(i-1), base*2^(i-1)*1.25]
        for (i, &d) in a.iter().enumerate() {
            let base = p.base_ms << i;
            assert!(d >= base && d <= base + base / 4, "attempt {i}: {d}");
        }
        let q = RetryPolicy::new(43);
        assert_ne!(
            (1..=4).map(|i| q.delay_ms(i)).collect::<Vec<_>>(),
            a,
            "different seed, different jitter"
        );
    }

    #[test]
    fn retry_after_is_a_floor_not_a_cap() {
        let p = RetryPolicy::new(7);
        assert_eq!(p.effective_delay_ms(1, Some(3)), 3_000.max(p.delay_ms(1)));
        assert_eq!(p.effective_delay_ms(1, None), p.delay_ms(1));
        // a tiny hint never lowers the computed backoff
        assert!(p.effective_delay_ms(2, Some(0)) >= p.delay_ms(2));
    }

    #[test]
    fn delay_caps_at_max() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ms: 100,
            max_delay_ms: 400,
            seed: 1,
        };
        assert!(p.delay_ms(10) <= 400 + 100, "capped plus <=25% jitter");
    }

    #[test]
    fn timeout_client_gives_up_on_a_black_hole_listener() {
        // a listener that accepts but never responds: the bounded client
        // must error out instead of blocking forever
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            // keep the accepted sockets alive until the client times out
            let a = listener.accept();
            std::thread::sleep(Duration::from_millis(500));
            drop(a);
        });
        let start = std::time::Instant::now();
        let err = request_full_timeout(
            addr,
            "GET",
            "/healthz",
            None,
            Some(Duration::from_millis(100)),
        )
        .unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "{err}"
        );
        assert!(start.elapsed() < Duration::from_millis(450));
        hold.join().unwrap();
    }
}
