//! Content-addressed artifact cache: in-memory LRU with a byte budget,
//! backed by an optional on-disk JSON artifact store.
//!
//! Lookups are *single-flight*: the first requester of a missing key gets a
//! [`BuildGuard`] and computes the artifact; concurrent requesters of the
//! same key block until the build completes and then count as hits. This is
//! what guarantees N identical concurrent submissions cost exactly one
//! simulation.

use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

/// Counter snapshot surfaced by `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheStats {
    /// Lookups served from memory, disk, or by waiting on an in-flight build.
    pub hits: u64,
    /// Lookups that had to run the pipeline.
    pub misses: u64,
    /// Entries evicted from memory by the byte budget (disk copy survives).
    pub evictions: u64,
    /// Hits satisfied by reloading a disk artifact after memory eviction.
    pub disk_hits: u64,
    /// Resident entries.
    pub entries: usize,
    /// Resident artifact bytes.
    pub bytes: usize,
    /// Configured byte budget for resident artifacts.
    pub budget_bytes: usize,
}

enum Slot {
    /// A build is in flight; waiters block on the condvar.
    Pending,
    /// Artifact resident in memory.
    Ready(Arc<String>),
}

struct Inner {
    slots: HashMap<String, Slot>,
    /// Keys of `Ready` slots, least-recently-used first.
    lru: VecDeque<String>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    disk_hits: u64,
}

pub struct ArtifactCache {
    inner: Mutex<Inner>,
    cond: Condvar,
    budget: usize,
    disk_dir: Option<PathBuf>,
}

/// Result of [`ArtifactCache::lookup_or_begin`].
pub enum Lookup<'a> {
    /// Artifact available (memory, disk, or a completed in-flight build).
    Hit(Arc<String>),
    /// Caller owns the build; fulfill or abandon via the guard.
    Miss(BuildGuard<'a>),
}

/// Exclusive right to build one key. Dropping without
/// [`BuildGuard::fulfill`] releases waiters so one of them can retry.
pub struct BuildGuard<'a> {
    cache: &'a ArtifactCache,
    key: String,
    fulfilled: bool,
}

impl BuildGuard<'_> {
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Store the built artifact, waking every waiter with a hit.
    pub fn fulfill(mut self, artifact: String) -> Arc<String> {
        self.fulfilled = true;
        self.cache.complete(&self.key, artifact)
    }
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut inner = self.cache.inner.lock().unwrap();
            inner.slots.remove(&self.key);
            self.cache.cond.notify_all();
        }
    }
}

impl ArtifactCache {
    /// `budget` caps resident artifact bytes; `disk_dir` (created eagerly)
    /// enables the persistent artifact store.
    pub fn new(budget: usize, disk_dir: Option<PathBuf>) -> std::io::Result<ArtifactCache> {
        if let Some(dir) = &disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ArtifactCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                disk_hits: 0,
            }),
            cond: Condvar::new(),
            budget,
            disk_dir,
        })
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    /// Single-flight lookup. Exactly one caller per missing key receives
    /// `Lookup::Miss`; everyone else blocks and then hits.
    pub fn lookup_or_begin(&self, key: &str) -> Lookup<'_> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.slots.get(key) {
                Some(Slot::Ready(artifact)) => {
                    let artifact = Arc::clone(artifact);
                    inner.hits += 1;
                    touch(&mut inner.lru, key);
                    return Lookup::Hit(artifact);
                }
                Some(Slot::Pending) => {
                    inner = self.cond.wait(inner).unwrap();
                }
                None => break,
            }
        }
        // not resident — try the disk store before claiming the build
        if let Some(path) = self.disk_path(key) {
            if let Ok(artifact) = std::fs::read_to_string(&path) {
                inner.hits += 1;
                inner.disk_hits += 1;
                let artifact = self.insert_ready(&mut inner, key, artifact);
                return Lookup::Hit(artifact);
            }
        }
        inner.misses += 1;
        inner.slots.insert(key.to_string(), Slot::Pending);
        Lookup::Miss(BuildGuard {
            cache: self,
            key: key.to_string(),
            fulfilled: false,
        })
    }

    fn complete(&self, key: &str, artifact: String) -> Arc<String> {
        if let Some(path) = self.disk_path(key) {
            // best-effort persistence; the in-memory copy is authoritative
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, &artifact).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        let mut inner = self.inner.lock().unwrap();
        let arc = self.insert_ready(&mut inner, key, artifact);
        drop(inner);
        self.cond.notify_all();
        arc
    }

    fn insert_ready(&self, inner: &mut Inner, key: &str, artifact: String) -> Arc<String> {
        let arc = Arc::new(artifact);
        inner.bytes += arc.len();
        inner
            .slots
            .insert(key.to_string(), Slot::Ready(Arc::clone(&arc)));
        touch(&mut inner.lru, key);
        // enforce the byte budget, never evicting the key just inserted
        while inner.bytes > self.budget && inner.lru.len() > 1 {
            let victim = if inner.lru.front().map(String::as_str) == Some(key) {
                inner.lru.remove(1)
            } else {
                inner.lru.pop_front()
            };
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready(a)) = inner.slots.remove(&victim) {
                inner.bytes -= a.len();
                inner.evictions += 1;
            }
        }
        arc
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            disk_hits: inner.disk_hits,
            entries: inner.lru.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget,
        }
    }
}

/// Move `key` to the most-recently-used end.
fn touch(lru: &mut VecDeque<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        lru.remove(pos);
    }
    lru.push_back(key.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn build(cache: &ArtifactCache, key: &str, payload: &str) -> Arc<String> {
        match cache.lookup_or_begin(key) {
            Lookup::Hit(a) => a,
            Lookup::Miss(guard) => guard.fulfill(payload.to_string()),
        }
    }

    #[test]
    fn hit_after_miss() {
        let c = ArtifactCache::new(1 << 20, None).unwrap();
        build(&c, "k", "artifact");
        match c.lookup_or_begin("k") {
            Lookup::Hit(a) => assert_eq!(*a, "artifact"),
            Lookup::Miss(_) => panic!("expected hit"),
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_under_tight_budget() {
        // budget fits two 8-byte artifacts, not three
        let c = ArtifactCache::new(20, None).unwrap();
        build(&c, "a", "01234567");
        build(&c, "b", "01234567");
        // touch "a" so "b" is the LRU victim when "c" arrives
        build(&c, "a", "ignored-already-cached");
        build(&c, "c", "01234567");
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= 20);
        assert!(matches!(c.lookup_or_begin("a"), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_begin("c"), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_begin("b"), Lookup::Miss(_)));
    }

    #[test]
    fn eviction_falls_back_to_disk_store() {
        let dir = std::env::temp_dir().join(format!("proof-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ArtifactCache::new(10, Some(dir.clone())).unwrap();
        build(&c, "a", "0123456789"); // fills the whole budget
        build(&c, "b", "0123456789"); // evicts "a" from memory
        assert_eq!(c.stats().evictions, 1);
        // "a" comes back from disk, counted as a (disk) hit
        assert!(matches!(c.lookup_or_begin("a"), Lookup::Hit(_)));
        let s = c.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_lookups_build_once() {
        let c = std::sync::Arc::new(ArtifactCache::new(1 << 20, None).unwrap());
        let builds = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match c.lookup_or_begin("shared") {
                    Lookup::Hit(a) => assert_eq!(*a, "artifact"),
                    Lookup::Miss(guard) => {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // widen the race window so waiters really block
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        guard.fulfill("artifact".to_string());
                    }
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn abandoned_build_releases_waiters() {
        let c = ArtifactCache::new(1 << 20, None).unwrap();
        {
            let guard = match c.lookup_or_begin("k") {
                Lookup::Miss(g) => g,
                Lookup::Hit(_) => panic!("expected miss"),
            };
            drop(guard); // simulated pipeline failure
        }
        // the key is claimable again, not deadlocked
        assert!(matches!(c.lookup_or_begin("k"), Lookup::Miss(_)));
    }
}
