//! Peer cache sharing over HTTP: the `/cache` surface, two-daemon remote
//! hits, and degradation when a peer is dead, corrupt, or saturated — a
//! broken peer must never fail a job, only cost a local rebuild.

use proof_core::{profile_model, MetricMode};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use proof_serve::client::{get, post, request};
use proof_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn wait_done(addr: SocketAddr, id: u64) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if v["status"] == "done" {
            return v;
        }
        assert_ne!(v["status"], "failed", "job {id} failed: {}", v["error"]);
        assert!(Instant::now() < deadline, "timed out waiting for job {id}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = post(addr, "/jobs", body).unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    v["id"].as_u64().unwrap()
}

fn metrics(addr: SocketAddr) -> serde_json::Value {
    let (status, body) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    serde_json::from_str(&body).unwrap()
}

/// An address that refuses every connection: bind, record, drop.
fn refused_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

/// A fake peer that answers every request with one canned HTTP response —
/// the shape of a node serving corrupt bytes or pure backpressure.
fn canned_peer(response: &'static str) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            let mut buf = [0u8; 65536];
            let _ = s.read(&mut buf);
            let _ = s.write_all(response.as_bytes());
        }
    });
    addr
}

#[test]
fn cache_endpoints_round_trip() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();

    // PUT a valid artifact, read it back byte-for-byte
    let (status, reply) =
        request(addr, "PUT", "/cache/deadbeef00112233", Some(r#"{"x":1}"#)).unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["key"], "deadbeef00112233");
    assert_eq!(v["bytes"], 7u64);
    let (status, body) = get(addr, "/cache/deadbeef00112233").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"x":1}"#);

    // unknown key is a miss, not an error
    let (status, _) = get(addr, "/cache/0000000000000000").unwrap();
    assert_eq!(status, 404);
    // malformed keys are rejected before touching any tier
    let (status, _) = get(addr, "/cache/.hidden").unwrap();
    assert_eq!(status, 400);
    // a PUT of non-JSON bytes must not poison the store
    let (status, _) = request(addr, "PUT", "/cache/deadbeef99887766", Some("not-json{")).unwrap();
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/cache/deadbeef99887766").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn peer_registration_endpoint() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr();
    let (status, reply) = post(addr, "/cache/peers", r#"{"peers":["127.0.0.1:9999"]}"#).unwrap();
    assert_eq!(status, 200, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["added"], 1u64);
    assert_eq!(v["peers"], 1u64);
    // re-advertising the same endpoint does not duplicate it
    let (_, reply) = post(addr, "/cache/peers", r#"{"peers":["127.0.0.1:9999"]}"#).unwrap();
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["peers"], 1u64);
    assert_eq!(metrics(addr)["cache"]["peers"], 1u64);
    // malformed addresses are rejected
    let (status, _) = post(addr, "/cache/peers", r#"{"peers":["not-an-addr"]}"#).unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

/// A daemon with a warm peer serves identical submissions from the remote
/// tier: no second simulation, byte-identical artifact, remote-hit counter.
#[test]
fn remote_tier_shares_artifacts_between_daemons() {
    let spec = r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":2,"seed":11}"#;
    let warm = Server::start(ServeConfig::default()).unwrap();
    let id = submit(warm.addr(), spec);
    wait_done(warm.addr(), id);
    let (_, reference) = get(warm.addr(), &format!("/jobs/{id}/report")).unwrap();

    let cold = Server::start(ServeConfig {
        peer_cache: vec![warm.addr()],
        ..ServeConfig::default()
    })
    .unwrap();
    let id2 = submit(cold.addr(), spec);
    let v = wait_done(cold.addr(), id2);
    assert_eq!(v["cache_hit"], true, "warm peer should satisfy the lookup");
    assert_eq!(v["cache_tier"], "remote");
    let (_, served) = get(cold.addr(), &format!("/jobs/{id2}/report")).unwrap();
    assert_eq!(served, reference, "remote tier changed the artifact bytes");

    let m = metrics(cold.addr());
    assert_eq!(m["cache"]["remote_hits"], 1u64);
    assert_eq!(m["cache"]["misses"], 0u64);
    cold.shutdown();
    warm.shutdown();
}

/// A peer that refuses connections costs a local rebuild, never the job.
#[test]
fn dead_peer_falls_back_to_local_build() {
    let server = Server::start(ServeConfig {
        peer_cache: vec![refused_addr()],
        peer_timeout_ms: 250,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":5}"#,
    );
    let v = wait_done(addr, id);
    assert_eq!(v["cache_hit"], false);
    let m = metrics(addr);
    assert!(m["cache"]["remote_errors"].as_u64().unwrap() >= 1);
    assert_eq!(m["cache"]["misses"], 1u64);
    server.shutdown();
}

/// A peer serving garbage bytes is detected, counted, and ignored.
#[test]
fn corrupt_peer_bytes_fall_back_to_local_build() {
    let peer =
        canned_peer("HTTP/1.1 200 OK\r\ncontent-length: 9\r\nconnection: close\r\n\r\nnot-json{");
    let server = Server::start(ServeConfig {
        peer_cache: vec![peer],
        peer_timeout_ms: 500,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":4,"seed":5}"#,
    );
    let v = wait_done(addr, id);
    assert_eq!(v["cache_hit"], false);
    let m = metrics(addr);
    assert!(m["cache"]["corrupt"].as_u64().unwrap() >= 1);

    // the locally rebuilt artifact is still the direct library-call result
    let (_, served) = get(addr, &format!("/jobs/{id}/report")).unwrap();
    let platform = PlatformId::A100.spec();
    let direct = profile_model(
        &ModelId::MobileNetV2x05.build(4),
        &platform,
        BackendFlavor::for_platform(&platform),
        &SessionConfig::new(DType::F16).with_seed(5),
        MetricMode::Predicted,
    )
    .unwrap()
    .to_json();
    assert_eq!(served, direct);
    server.shutdown();
}

/// A saturated peer (429 on every request) backs off without failing jobs.
#[test]
fn busy_peer_falls_back_to_local_build() {
    let peer = canned_peer(
        "HTTP/1.1 429 Too Many Requests\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    );
    let server = Server::start(ServeConfig {
        peer_cache: vec![peer],
        peer_timeout_ms: 500,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":8,"seed":5}"#,
    );
    let v = wait_done(addr, id);
    assert_eq!(v["cache_hit"], false);
    let m = metrics(addr);
    assert!(m["cache"]["remote_busy"].as_u64().unwrap() >= 1);
    assert_eq!(m["jobs"]["failed"], 0u64);
    server.shutdown();
}
