//! Observability of a live daemon: per-job trace ids, the merged
//! Chrome-trace endpoint, and the Prometheus metrics exposition.

use proof_serve::client::{get, post};
use proof_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SPEC: &str = r#"{"model":"mobilenetv2-0.5","hardware":"a100","backend":"trt","batch":1,"dtype":"fp16","seed":7}"#;

fn boot(workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn wait_done(addr: SocketAddr, id: u64) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if v["status"] == "done" {
            return v;
        }
        assert_ne!(v["status"], "failed", "job {id} failed: {}", v["error"]);
        assert!(Instant::now() < deadline, "timed out waiting for job {id}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Submit one job, wait for it, and return `(trace id, trace body)`.
fn run_one_job(addr: SocketAddr, spec: &str) -> (u64, String) {
    let (status, reply) = post(addr, "/jobs", spec).unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    let id = v["id"].as_u64().unwrap();
    let trace = v["trace"]
        .as_u64()
        .expect("submission reply has a trace id");
    let status_doc = wait_done(addr, id);
    assert_eq!(
        status_doc["trace"].as_u64(),
        Some(trace),
        "job status carries the same trace id"
    );
    let (status, body) = get(addr, &format!("/trace/{trace}")).unwrap();
    assert_eq!(status, 200, "{body}");
    (trace, body)
}

#[test]
fn trace_endpoint_serves_the_merged_chrome_trace() {
    let server = boot(1);
    let addr = server.addr();
    let (trace, body) = run_one_job(addr, SPEC);
    assert!(trace > 0);

    let doc: serde_json::Value = serde_json::from_str(&body).expect("trace is valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    assert_eq!(doc["displayTimeUnit"], "ms");

    // pipeline spans and the kernel timeline share one document and clock
    let cats: Vec<&str> = events.iter().filter_map(|e| e["cat"].as_str()).collect();
    for want in ["pipeline", "backend_layer", "kernel"] {
        assert!(cats.contains(&want), "missing cat {want:?}");
    }
    let pipeline_names: Vec<&str> = events
        .iter()
        .filter(|e| e["cat"] == "pipeline")
        .filter_map(|e| e["name"].as_str())
        .collect();
    for stage in [
        "job",
        "compile",
        "builtin_profile",
        "map",
        "metrics",
        "assemble",
    ] {
        assert!(pipeline_names.contains(&stage), "missing span {stage:?}");
    }

    // globally time-sorted: every event's ts is >= its predecessor's
    let ts: Vec<f64> = events.iter().map(|e| e["ts"].as_f64().unwrap()).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not monotonic");

    // error paths
    let (status, _) = get(addr, "/trace/999999999").unwrap();
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/trace/not-a-number").unwrap();
    assert_eq!(status, 400);
}

#[test]
fn traces_are_byte_identical_across_fresh_servers() {
    // Two independent daemons, same seeded job: the logical per-trace clock
    // and exported-id renumbering make the rendered traces byte-equal even
    // though the process-global span/trace id allocators kept counting.
    let server_a = boot(1);
    let (_, trace_a) = run_one_job(server_a.addr(), SPEC);
    server_a.shutdown();

    let server_b = boot(1);
    let (_, trace_b) = run_one_job(server_b.addr(), SPEC);
    server_b.shutdown();

    assert_eq!(trace_a, trace_b);
}

#[test]
fn jobs_adopt_the_submitters_trace_context() {
    let server = boot(1);
    let addr = server.addr();

    // submit under an external trace context via the X-Proof-Trace header
    let reply = proof_serve::client::request_full_timeout_headers(
        addr,
        "POST",
        "/jobs",
        Some(SPEC),
        None,
        &[("X-Proof-Trace", "424242:9")],
    )
    .unwrap();
    assert_eq!(reply.status, 201, "{}", reply.body);
    let v: serde_json::Value = serde_json::from_str(&reply.body).unwrap();
    assert_eq!(
        v["trace"].as_u64(),
        Some(424242),
        "job adopted the submitted trace id"
    );
    let id = v["id"].as_u64().unwrap();
    let status_doc = wait_done(addr, id);
    assert_eq!(status_doc["trace"].as_u64(), Some(424242));
    assert_eq!(
        status_doc["remote_parent"].as_u64(),
        Some(9),
        "status records the submitter's parent span id"
    );

    // the raw span listing for the adopted trace carries the linkage fields
    let (status, body) = get(addr, "/trace/424242?format=spans").unwrap();
    assert_eq!(status, 200, "{body}");
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(doc["trace"].as_u64(), Some(424242));
    let spans = doc["spans"].as_array().unwrap();
    assert!(!spans.is_empty());
    let job_span = spans
        .iter()
        .find(|s| s["name"] == "job")
        .expect("job span in listing");
    assert_eq!(job_span["fields"]["job"].as_u64(), Some(id));
    assert_eq!(job_span["fields"]["remote_parent"].as_u64(), Some(9));
    // deterministic ordering: (start_us, id) non-decreasing
    let starts: Vec<f64> = spans
        .iter()
        .map(|s| s["start_us"].as_f64().unwrap())
        .collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));

    // a locally-submitted job still allocates its own trace id
    let (status, reply) = post(addr, "/jobs", SPEC).unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_ne!(v["trace"].as_u64(), Some(424242));
    let local = wait_done(addr, v["id"].as_u64().unwrap());
    assert!(local["remote_parent"].is_null());
}

#[test]
fn healthz_and_flight_recorder_expose_runtime_state() {
    let server = boot(1);
    let addr = server.addr();
    run_one_job(addr, SPEC);

    let (status, body) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["status"], "ok");
    assert_eq!(v["version"].as_str(), Some(env!("CARGO_PKG_VERSION")));
    assert!(v["uptime_s"].as_u64().is_some());
    for tier in ["memory_hits", "disk_hits", "remote_hits", "misses"] {
        assert!(
            v["cache"][tier].as_u64().is_some(),
            "healthz cache summary missing {tier}: {body}"
        );
    }

    let (status, body) = get(addr, "/debug/events").unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["dropped"].as_u64(), Some(0));
    let events = v["events"].as_array().unwrap();
    let kinds: Vec<&str> = events.iter().filter_map(|e| e["kind"].as_str()).collect();
    assert!(kinds.contains(&"submit"), "flight recorder saw the submit");
    assert!(kinds.contains(&"job"), "flight recorder saw the completion");
    // seq numbers are strictly increasing
    let seqs: Vec<u64> = events.iter().map(|e| e["seq"].as_u64().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn prometheus_exposition_covers_the_registry_and_derived_series() {
    let server = boot(1);
    let addr = server.addr();
    run_one_job(addr, SPEC);

    let (status, text) = get(addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(status, 200);

    // every line is a comment or `name[{labels}] value` with a float value
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE proof_serve_") || line.starts_with("# HELP proof_serve_"),
                "bad comment: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(series.starts_with("proof_serve_"), "bad name: {line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
    }

    // former JSON counters and the stage histograms are all present
    for series in [
        "proof_serve_http_requests_total ",
        "proof_serve_jobs_submitted_total ",
        "proof_serve_jobs_done_total ",
        "proof_serve_jobs_failed_total ",
        "proof_serve_jobs_executed_total ",
        "proof_serve_cache_hits_total ",
        "proof_serve_cache_misses_total ",
        "proof_serve_cache_evictions_total ",
        "proof_serve_cache_disk_hits_total ",
        "proof_serve_stage_cache_hits_total ",
        "proof_serve_stage_cache_misses_total ",
        "proof_serve_trace_spans_dropped_total ",
        "proof_serve_queue_depth ",
        "proof_serve_queue_capacity ",
        "proof_serve_workers ",
        "proof_serve_worker_utilization ",
        "proof_serve_cache_bytes ",
        "proof_serve_stage_cache_entries ",
        "proof_serve_stage_compile_us_bucket{le=",
        "proof_serve_stage_metrics_us_count ",
        "proof_serve_job_execute_us_bucket{le=",
        "proof_serve_job_queue_wait_us_sum ",
    ] {
        assert!(text.contains(series), "missing series {series:?}");
    }

    // histogram buckets are cumulative and capped by +Inf == _count
    let sample = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("no sample {name}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse()
            .unwrap()
    };
    let count = sample("proof_serve_job_execute_us_count ");
    assert!(count >= 1.0);
    assert_eq!(
        sample("proof_serve_job_execute_us_bucket{le=\"+Inf\"}"),
        count
    );
    let buckets: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("proof_serve_job_execute_us_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "not cumulative");

    // the default format is still the JSON document
    let (status, json) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let m: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(m["queue"]["capacity"].as_u64().is_some());
}
