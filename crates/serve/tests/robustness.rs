//! Malformed-HTTP and bad-input coverage: every case must produce a clean
//! 4xx (or a summarily closed connection) and leave the daemon serving —
//! `/healthz` is probed after each abuse. These pin the fixes for the
//! unbounded request-line read (memory-exhaustion DoS) and the
//! empty-batch-sweep panic.

use proof_serve::client::get;
use proof_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn boot() -> Server {
    Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Fire raw bytes at the server and return the status code it answered
/// with, or `None` if it just dropped the connection.
fn raw(addr: SocketAddr, bytes: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).unwrap();
    // the server may 400-and-close mid-upload; a send error is acceptable
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    text.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
}

fn assert_alive(addr: SocketAddr) {
    let (status, body) = get(addr, "/healthz").expect("server must still answer");
    assert_eq!(status, 200, "{body}");
}

#[test]
fn oversized_request_line_is_rejected_not_buffered() {
    let server = boot();
    let addr = server.addr();
    // 64 KB with no newline: the old code read_line'd this unboundedly
    // before any cap; the fix rejects once the 16 KB header budget is spent
    let status = raw(addr, &vec![b'a'; 64 * 1024]);
    assert!(
        status.is_none() || status == Some(400),
        "expected rejection, got {status:?}"
    );
    assert_alive(addr);
}

#[test]
fn oversized_headers_are_rejected() {
    let server = boot();
    let addr = server.addr();
    let mut req = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..4096 {
        req.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let status = raw(addr, &req);
    assert!(
        status.is_none() || status == Some(400),
        "expected rejection, got {status:?}"
    );
    assert_alive(addr);
}

#[test]
fn non_numeric_content_length_is_a_400() {
    let server = boot();
    let addr = server.addr();
    let status = raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status, Some(400));
    assert_alive(addr);
}

#[test]
fn huge_content_length_is_refused_without_allocation() {
    let server = boot();
    let addr = server.addr();
    let status = raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
    );
    assert_eq!(status, Some(400));
    assert_alive(addr);
}

#[test]
fn non_utf8_body_is_a_400() {
    let server = boot();
    let addr = server.addr();
    let mut req = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
    req.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    let status = raw(addr, &req);
    assert_eq!(status, Some(400));
    assert_alive(addr);
}

#[test]
fn empty_batch_sweep_is_a_400_not_a_panic() {
    let server = boot();
    let addr = server.addr();
    let (status, body) = proof_serve::client::post(
        addr,
        "/sweep",
        r#"{"model":"resnet-50","hardware":"a100","batches":[]}"#,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("must not be empty"), "{body}");
    assert_alive(addr);
}

#[test]
fn zero_timeout_is_a_400() {
    let server = boot();
    let addr = server.addr();
    let (status, body) = proof_serve::client::post(
        addr,
        "/jobs",
        r#"{"model":"resnet-50","hardware":"a100","timeout_ms":0}"#,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("timeout_ms"), "{body}");
    assert_alive(addr);
}
