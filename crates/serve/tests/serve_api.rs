//! End-to-end tests against a live daemon on an ephemeral port.

use proof_core::{profile_model, MetricMode};
use proof_hw::PlatformId;
use proof_ir::DType;
use proof_models::ModelId;
use proof_runtime::{BackendFlavor, SessionConfig};
use proof_serve::client::{get, post};
use proof_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn boot(workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn wait_status(addr: SocketAddr, id: u64, want: &str) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if v["status"] == want {
            return v;
        }
        assert_ne!(v["status"], "failed", "job {id} failed: {}", v["error"]);
        assert!(Instant::now() < deadline, "timed out waiting for job {id}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = post(addr, "/jobs", body).unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    v["id"].as_u64().unwrap()
}

/// The acceptance scenario: same ResNet-50 job twice (second is a cache
/// hit), a 3-point batch sweep in one tracked group, report equality with a
/// direct library call, and a zero-drop graceful shutdown.
#[test]
fn resnet50_roundtrip_with_cache_and_sweep() {
    let server = boot(2);
    let addr = server.addr();
    let spec = r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batch":8,"dtype":"fp16","seed":42}"#;

    // first submission simulates, second hits the artifact cache
    let first = submit(addr, spec);
    wait_status(addr, first, "done");
    let second = submit(addr, spec);
    let v = wait_status(addr, second, "done");
    assert_eq!(v["cache_hit"], true);

    let (status, metrics) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let m: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    assert_eq!(m["cache"]["misses"], 1u64);
    assert!(m["cache"]["hits"].as_u64().unwrap() >= 1);
    assert_eq!(m["jobs"]["done"], 2u64);
    assert!(m["latency"]["execute_us"]["count"].as_u64().unwrap() >= 2);

    // the served report is bit-for-bit the direct library-call result
    let (status, served) = get(addr, &format!("/jobs/{first}/report")).unwrap();
    assert_eq!(status, 200);
    let direct = profile_model(
        &ModelId::ResNet50.build(8),
        &PlatformId::A100.spec(),
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16).with_seed(42),
        MetricMode::Predicted,
    )
    .unwrap()
    .to_json();
    assert_eq!(served, direct);
    // and both submissions served the identical artifact
    let (_, served2) = get(addr, &format!("/jobs/{second}/report")).unwrap();
    assert_eq!(served, served2);

    // 3-point batch sweep tracked as one group
    let (status, reply) = post(
        addr,
        "/sweep",
        r#"{"model":"resnet-50","hardware":"a100","backend":"trt","batches":[1,2,4],"dtype":"fp16","seed":42}"#,
    )
    .unwrap();
    assert_eq!(status, 201, "{reply}");
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v["submitted"], 3u64);
    let gid = v["group"].as_u64().unwrap();
    let ids: Vec<u64> = v["jobs"]
        .as_array()
        .unwrap()
        .iter()
        .map(|j| j.as_u64().unwrap())
        .collect();
    for id in &ids {
        wait_status(addr, *id, "done");
    }
    let (status, sweep) = get(addr, &format!("/sweep/{gid}")).unwrap();
    assert_eq!(status, 200);
    let s: serde_json::Value = serde_json::from_str(&sweep).unwrap();
    assert_eq!(s["total"], 3u64);
    assert_eq!(s["done"], 3u64);
    // distinct batches → distinct cache keys → no aliasing inside the sweep
    let keys: std::collections::BTreeSet<String> = s["jobs"]
        .as_array()
        .unwrap()
        .iter()
        .map(|j| j["key"].as_str().unwrap().to_string())
        .collect();
    assert_eq!(keys.len(), 3);

    // graceful shutdown accounts for every accepted job
    let drain = server.shutdown();
    assert_eq!(drain.dropped, 0);
    assert_eq!(drain.failed, 0);
    assert_eq!(drain.done, 5);
}

/// N concurrent identical submissions cost exactly one simulation; the
/// other N−1 jobs coalesce onto the in-flight build and report cache hits.
#[test]
fn concurrent_identical_jobs_simulate_once() {
    const N: usize = 6;
    let server = boot(3);
    let addr = server.addr();
    let spec = r#"{"model":"shufflenetv2-x0.5","hardware":"a100","batch":4,"seed":123}"#;

    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| scope.spawn(move || submit(addr, spec)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut hits = 0;
    for id in &ids {
        let v = wait_status(addr, *id, "done");
        if v["cache_hit"] == true {
            hits += 1;
        }
    }
    assert_eq!(hits, N - 1, "exactly one job may simulate");

    let (_, metrics) = get(addr, "/metrics").unwrap();
    let m: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    assert_eq!(m["cache"]["misses"], 1u64);
    assert_eq!(m["cache"]["hits"], (N - 1) as u64);
    server.shutdown();
}

/// Jobs that differ only in their simulation seed never alias.
#[test]
fn seed_is_part_of_the_job_identity() {
    let server = boot(2);
    let addr = server.addr();
    let a = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":2,"seed":1}"#,
    );
    let b = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":2,"seed":2}"#,
    );
    let va = wait_status(addr, a, "done");
    let vb = wait_status(addr, b, "done");
    assert_ne!(va["key"], vb["key"].as_str().unwrap());
    assert_eq!(vb["cache_hit"], false, "different seed must not hit");
    // different measurement noise → different artifacts
    let (_, ra) = get(addr, &format!("/jobs/{a}/report")).unwrap();
    let (_, rb) = get(addr, &format!("/jobs/{b}/report")).unwrap();
    assert_ne!(ra, rb);
    server.shutdown();
}

/// Resubmitting the same spec under the other metric mode reuses the
/// cached pipeline prefix: compile/profile/map run once, only the metric
/// and assembly stages run again — and the report is still bit-for-bit the
/// direct library-call result.
#[test]
fn stage_cache_reuses_prefix_across_modes() {
    let server = boot(1);
    let addr = server.addr();
    let predicted = r#"{"model":"shufflenetv2-x0.5","hardware":"a100","backend":"trt","batch":2,"dtype":"fp16","seed":9,"mode":"predicted"}"#;
    let measured = r#"{"model":"shufflenetv2-x0.5","hardware":"a100","backend":"trt","batch":2,"dtype":"fp16","seed":9,"mode":"measured"}"#;

    let a = submit(addr, predicted);
    wait_status(addr, a, "done");
    let b = submit(addr, measured);
    let vb = wait_status(addr, b, "done");
    // different mode → different artifact key, so this is NOT an artifact hit
    assert_eq!(vb["cache_hit"], false);

    let (status, metrics) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let m: serde_json::Value = serde_json::from_str(&metrics).unwrap();
    // ...but it IS a stage-cache hit: the prefix was prepared exactly once
    assert_eq!(m["stage_cache"]["misses"], 1u64);
    assert!(m["stage_cache"]["hits"].as_u64().unwrap() >= 1);
    assert_eq!(m["stages"]["compile_us"]["count"], 1u64);
    assert_eq!(m["stages"]["builtin_profile_us"]["count"], 1u64);
    assert_eq!(m["stages"]["map_us"]["count"], 1u64);
    assert_eq!(m["stages"]["metrics_us"]["count"], 2u64);
    assert_eq!(m["stages"]["assemble_us"]["count"], 2u64);

    // the prefix-reused measured report equals the fresh monolithic run
    let (status, served) = get(addr, &format!("/jobs/{b}/report")).unwrap();
    assert_eq!(status, 200);
    let direct = profile_model(
        &ModelId::ShuffleNetV2x05.build(2),
        &PlatformId::A100.spec(),
        BackendFlavor::TrtLike,
        &SessionConfig::new(DType::F16).with_seed(9),
        MetricMode::Measured,
    )
    .unwrap()
    .to_json();
    assert_eq!(served, direct);
    server.shutdown();
}

/// Shutdown initiated while jobs are still queued drains all of them.
#[test]
fn shutdown_drains_queued_jobs() {
    let server = boot(1);
    let addr = server.addr();
    let ids: Vec<u64> = (1..=4)
        .map(|b| {
            submit(
                addr,
                &format!(r#"{{"model":"shufflenetv2-x0.5","hardware":"a100","batch":{b}}}"#),
            )
        })
        .collect();
    assert_eq!(ids.len(), 4);
    let drain = server.shutdown(); // no waiting: most jobs still queued
    assert_eq!(drain.dropped, 0);
    assert_eq!(drain.done + drain.failed, 4);
    assert_eq!(drain.failed, 0);
}

#[test]
fn api_error_paths() {
    let server = boot(1);
    let addr = server.addr();
    let (status, _) = post(addr, "/jobs", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, body) = post(addr, "/jobs", r#"{"model":"nope","hardware":"a100"}"#).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("unknown model"));
    let (status, _) = get(addr, "/jobs/999").unwrap();
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = request_delete(addr).unwrap();
    assert_eq!(status, 405);
    // report of an unfinished job: queue a job on a busy server and ask
    let id = submit(addr, r#"{"model":"resnet-50","hardware":"a100","batch":8}"#);
    let (status, _) = get(addr, &format!("/jobs/{id}/report")).unwrap();
    assert!(status == 409 || status == 200); // may already be done
    let (status, body) = get(addr, "/models").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("resnet-50"));
    server.shutdown();
}

fn request_delete(addr: SocketAddr) -> std::io::Result<(u16, String)> {
    proof_serve::client::request(addr, "DELETE", "/jobs/1", None)
}
