//! End-to-end fault-tolerance scenarios against a live daemon, driven by
//! the deterministic fault-injection plan (`proof_obs::fault`): worker
//! panic isolation, deadline timeouts, queue backpressure with client
//! backoff, and transient-failure retries.
//!
//! The installed plan is process-global, so every test serializes on one
//! mutex and clears the plan on exit (panic included) via a drop guard.

use proof_serve::client::{get, post, post_with_retry, request_full, RetryPolicy};
use proof_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the serialization lock and clears the global plan when dropped.
struct PlanGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for PlanGuard {
    fn drop(&mut self) {
        proof_obs::fault::clear();
    }
}

fn install(plan: &str) -> PlanGuard {
    let lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    proof_obs::fault::install(proof_obs::FaultPlan::parse(plan).expect("valid plan"));
    PlanGuard(lock)
}

fn boot(config: ServeConfig) -> Server {
    Server::start(config).expect("bind ephemeral port")
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = post(addr, "/jobs", body).unwrap();
    assert_eq!(status, 201, "{reply}");
    serde_json::from_str::<serde_json::Value>(&reply).unwrap()["id"]
        .as_u64()
        .unwrap()
}

/// Poll until the job reaches any terminal status; return its record.
fn wait_terminal(addr: SocketAddr, id: u64) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if matches!(v["status"].as_str(), Some("done" | "failed" | "timed_out")) {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The value of one counter in the Prometheus exposition.
fn prom_counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = get(addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(status, 200);
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition:\n{body}"))
        .parse()
        .expect("counter value")
}

#[test]
fn panicking_stage_fails_one_job_and_spares_the_daemon() {
    let _guard = install("map:panic@777");
    let server = boot(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let poisoned = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":777}"#,
    );
    let healthy = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":778}"#,
    );

    let bad = wait_terminal(addr, poisoned);
    assert_eq!(bad["status"], "failed", "{bad}");
    let err = bad["error"].as_str().unwrap();
    assert!(err.contains("panicked"), "{err}");
    assert!(
        err.contains("injected fault: panic at stage 'map'"),
        "{err}"
    );

    // the sibling job and the daemon itself are untouched
    assert_eq!(wait_terminal(addr, healthy)["status"], "done");
    let (status, _) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(prom_counter(addr, "proof_serve_panics_total"), 1);
    assert_eq!(prom_counter(addr, "proof_serve_jobs_failed_total"), 1);
}

#[test]
fn deadline_overrun_reports_timed_out_and_504() {
    let _guard = install("builtin_profile:stall:400@888");
    let server = boot(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":888,"timeout_ms":100}"#,
    );
    let v = wait_terminal(addr, id);
    assert_eq!(v["status"], "timed_out", "{v}");
    assert_eq!(v["timeout_ms"], 100);
    let err = v["error"].as_str().unwrap();
    assert!(err.contains("deadline exceeded"), "{err}");
    assert!(err.contains("builtin_profile"), "{err}");

    let (status, body) = get(addr, &format!("/jobs/{id}/report")).unwrap();
    assert_eq!(status, 504, "{body}");
    assert_eq!(prom_counter(addr, "proof_serve_timeouts_total"), 1);
    assert_eq!(prom_counter(addr, "proof_serve_jobs_timed_out_total"), 1);
}

#[test]
fn full_queue_backpressures_with_429_and_seeded_backoff_recovers() {
    let _guard = install("metrics:stall:600@999");
    let server = boot(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // occupy the single worker with a stalled job...
    let stalled = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":999}"#,
    );
    let start = Instant::now();
    while Instant::now() - start < Duration::from_secs(30) {
        let (_, body) = get(addr, &format!("/jobs/{stalled}")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if v["status"] == "running" {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...fill the 1-deep queue...
    let queued = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":2,"seed":11}"#,
    );
    // ...and the next submission bounces with 429 + Retry-After
    let third = r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":4,"seed":12}"#;
    let r = request_full(addr, "POST", "/jobs", Some(third)).unwrap();
    assert_eq!(r.status, 429, "{}", r.body);
    assert_eq!(r.retry_after_s, Some(1), "429 must carry Retry-After");
    assert!(prom_counter(addr, "proof_serve_rejected_total") >= 1);

    // the seeded-backoff client rides out the stall and gets in
    let policy = RetryPolicy::new(4242);
    let (status, reply) = post_with_retry(addr, "/jobs", third, &policy).unwrap();
    assert_eq!(status, 201, "{reply}");
    let third_id = serde_json::from_str::<serde_json::Value>(&reply).unwrap()["id"]
        .as_u64()
        .unwrap();

    for id in [stalled, queued, third_id] {
        assert_eq!(wait_terminal(addr, id)["status"], "done");
    }
}

#[test]
fn transient_failures_retry_to_success_with_counted_attempts() {
    let _guard = install("compile:fail:2@555");
    let server = boot(ServeConfig {
        workers: 1,
        max_retries: 2,
        retry_base_ms: 5,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":555}"#,
    );
    let v = wait_terminal(addr, id);
    assert_eq!(v["status"], "done", "{v}");
    // two injected transient failures, then success on the third attempt
    assert_eq!(v["attempts"], 3, "{v}");
    assert_eq!(prom_counter(addr, "proof_serve_retries_total"), 2);
    assert_eq!(prom_counter(addr, "proof_serve_jobs_done_total"), 1);
}

#[test]
fn exhausted_retries_fail_with_the_transient_error() {
    let _guard = install("compile:fail:10@556");
    let server = boot(ServeConfig {
        workers: 1,
        max_retries: 1,
        retry_base_ms: 5,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":556}"#,
    );
    let v = wait_terminal(addr, id);
    assert_eq!(v["status"], "failed", "{v}");
    assert_eq!(v["attempts"], 2, "{v}");
    let err = v["error"].as_str().unwrap();
    assert!(err.contains("transient"), "{err}");
    assert_eq!(prom_counter(addr, "proof_serve_retries_total"), 1);
}

#[test]
fn server_default_timeout_applies_when_spec_has_none() {
    let _guard = install("metrics:stall:400@889");
    let server = boot(ServeConfig {
        workers: 1,
        job_timeout_ms: Some(100),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let id = submit(
        addr,
        r#"{"model":"mobilenetv2-0.5","hardware":"a100","batch":1,"seed":889}"#,
    );
    let v = wait_terminal(addr, id);
    assert_eq!(v["status"], "timed_out", "{v}");
    assert_eq!(v["timeout_ms"], 100, "{v}");
}
