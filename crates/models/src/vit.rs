//! Vision Transformer (Dosovitskiy et al., 2021): tiny/small/base, patch 16,
//! 224×224 → 197 tokens.

use crate::blocks::{mha, mlp};
use proof_ir::{DType, Graph, GraphBuilder};

/// ViT size configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViTSize {
    Tiny,
    Small,
    Base,
    Large,
}

impl ViTSize {
    /// (embed dim, depth, heads)
    pub fn config(self) -> (u64, u64, u64) {
        match self {
            ViTSize::Tiny => (192, 12, 3),
            ViTSize::Small => (384, 12, 6),
            ViTSize::Base => (768, 12, 12),
            ViTSize::Large => (1024, 24, 16),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ViTSize::Tiny => "vit-tiny",
            ViTSize::Small => "vit-small",
            ViTSize::Base => "vit-base",
            ViTSize::Large => "vit-large",
        }
    }
}

/// Build a ViT at the given batch size.
pub fn vit(batch: u64, size: ViTSize) -> Graph {
    let (embed, depth, heads) = size.config();
    let tokens = 14 * 14 + 1; // 196 patches + cls
    let mut b = GraphBuilder::new(size.name());
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);

    // patch embedding: conv 16×16/16 → [B, E, 14, 14] → flatten → [B, 196, E]
    let p = b.conv("patch_embed", x, embed, 16, 16, 0, 1, true);
    let p = b.reshape("patch_embed/reshape", p, &[batch as i64, embed as i64, 196]);
    let p = b.transpose("patch_embed/transpose", p, &[0, 2, 1]);

    // class token prepend + position embedding
    let cls = b.weight("cls_token", &[1, 1, embed]);
    let cls_b = b.push(
        "cls_expand",
        proof_ir::OpKind::Expand,
        proof_ir::Attributes::new().with_ints("shape", &[batch as i64, 1, embed as i64]),
        &[cls],
    );
    let mut y = b.concat("cat_cls", &[cls_b, p], 1);
    let pos = b.weight("pos_embed", &[1, tokens, embed]);
    y = b.add("pos_add", y, pos);

    for i in 0..depth {
        let blk = format!("blocks.{i}");
        let n1 = b.layer_norm_decomposed(&format!("{blk}.norm1"), y);
        let att = mha(&mut b, &format!("{blk}.attn"), n1, heads, None);
        y = b.add(&format!("{blk}.add1"), y, att);
        let n2 = b.layer_norm_decomposed(&format!("{blk}.norm2"), y);
        let m = mlp(&mut b, &format!("{blk}.mlp"), n2, embed * 4, embed);
        y = b.add(&format!("{blk}.add2"), y, m);
    }
    y = b.layer_norm_decomposed("norm", y);
    // classifier on the cls token
    let cls_tok = b.slice("cls_select", y, &[0], &[1], &[1]);
    let cls_tok = b.reshape("cls_flatten", cls_tok, &[batch as i64, embed as i64]);
    let out = b.linear("head", cls_tok, 1000, true);
    b.output(out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vit_base_params_match_reference() {
        let g = vit(1, ViTSize::Base);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 86.6).abs() < 1.0, "params {params_m}M");
    }

    #[test]
    fn vit_tiny_and_small_params() {
        let t = vit(1, ViTSize::Tiny).param_count() as f64 / 1e6;
        assert!((t - 5.7).abs() < 0.3, "tiny {t}M");
        let s = vit(1, ViTSize::Small).param_count() as f64 / 1e6;
        assert!((s - 22.1).abs() < 0.5, "small {s}M");
    }

    #[test]
    fn all_sizes_share_node_count() {
        // same topology, different widths (paper: 786 nodes for all three)
        let a = vit(1, ViTSize::Tiny).node_count();
        let b_ = vit(1, ViTSize::Small).node_count();
        let c = vit(1, ViTSize::Base).node_count();
        assert_eq!(a, b_);
        assert_eq!(b_, c);
        assert!(a > 500, "{a} nodes");
    }

    #[test]
    fn vit_large_params() {
        let l = vit(1, ViTSize::Large).param_count() as f64 / 1e6;
        assert!((l - 304.0).abs() < 5.0, "large {l}M");
    }

    #[test]
    fn output_is_logits() {
        let g = vit(4, ViTSize::Tiny);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[4, 1000]);
    }
}
