//! ShuffleNetV2 (Ma et al., 2018) at ×0.5 and ×1.0 widths, plus the paper's
//! modified variant (§4.5, Figure 7): shuffle-free basic blocks with the
//! first/last point-wise convolutions widened to cover all channels and an
//! explicit residual `Add`.

use crate::blocks::{channel_shuffle, conv_bn, conv_bn_relu};
use proof_ir::{DType, Graph, GraphBuilder, TensorId};

/// Stage output channels per width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    X05,
    X10,
}

impl Width {
    fn stage_channels(self) -> [u64; 3] {
        match self {
            Width::X05 => [48, 96, 192],
            Width::X10 => [116, 232, 464],
        }
    }

    fn name(self) -> &'static str {
        match self {
            Width::X05 => "shufflenetv2-x0.5",
            Width::X10 => "shufflenetv2-x1.0",
        }
    }
}

/// Non-downsampling basic unit: split channels in two, run the right half
/// through pw→dw→pw, concat, shuffle.
fn basic_unit(b: &mut GraphBuilder, name: &str, x: TensorId) -> TensorId {
    let c = b.channels(x);
    let half = c / 2;
    let (left, right) = b.split2(&format!("{name}.split"), x, 1);
    let y = conv_bn_relu(b, &format!("{name}.pw1"), right, half, 1, 1, 0, 1);
    let y = conv_bn(b, &format!("{name}.dw"), y, half, 3, 1, 1, half);
    let y = conv_bn_relu(b, &format!("{name}.pw2"), y, half, 1, 1, 0, 1);
    let cat = b.concat(&format!("{name}.concat"), &[left, y], 1);
    channel_shuffle(b, &format!("{name}.shuffle"), cat, 2)
}

/// Downsampling unit: both branches convolve at stride 2, concat doubles
/// channels, shuffle.
fn down_unit(b: &mut GraphBuilder, name: &str, x: TensorId, cout: u64) -> TensorId {
    let half = cout / 2;
    let cin = b.channels(x);
    // left branch: dw s2 + pw
    let l = conv_bn(b, &format!("{name}.left_dw"), x, cin, 3, 2, 1, cin);
    let l = conv_bn_relu(b, &format!("{name}.left_pw"), l, half, 1, 1, 0, 1);
    // right branch: pw + dw s2 + pw
    let r = conv_bn_relu(b, &format!("{name}.pw1"), x, half, 1, 1, 0, 1);
    let r = conv_bn(b, &format!("{name}.dw"), r, half, 3, 2, 1, half);
    let r = conv_bn_relu(b, &format!("{name}.pw2"), r, half, 1, 1, 0, 1);
    let cat = b.concat(&format!("{name}.concat"), &[l, r], 1);
    channel_shuffle(b, &format!("{name}.shuffle"), cat, 2)
}

/// The paper's modified basic unit (Figure 7): no split/shuffle; pw1 takes
/// all `C` input channels down to `C/2`, the dw conv stays at `C/2`, pw2
/// expands back to `C`, and a residual `Add` replaces the implicit identity
/// path of the original shuffle.
fn modified_basic_unit(b: &mut GraphBuilder, name: &str, x: TensorId) -> TensorId {
    let c = b.channels(x);
    let half = c / 2;
    let y = conv_bn_relu(b, &format!("{name}.pw1"), x, half, 1, 1, 0, 1);
    let y = conv_bn(b, &format!("{name}.dw"), y, half, 3, 1, 1, half);
    let y = conv_bn_relu(b, &format!("{name}.pw2"), y, c, 1, 1, 0, 1);
    b.add(&format!("{name}.add"), x, y)
}

fn backbone(name: &str, batch: u64, stage_channels: [u64; 3], modified: bool) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let mut y = conv_bn_relu(&mut b, "conv1", x, 24, 3, 2, 1, 1);
    y = b.maxpool("maxpool", y, 3, 2, 1);
    let repeats = [4u64, 8, 4];
    for (stage, (&reps, &cout)) in repeats.iter().zip(&stage_channels).enumerate() {
        y = down_unit(&mut b, &format!("stage{}.0", stage + 2), y, cout);
        for i in 1..reps {
            let bname = format!("stage{}.{}", stage + 2, i);
            y = if modified {
                modified_basic_unit(&mut b, &bname, y)
            } else {
                basic_unit(&mut b, &bname, y)
            };
        }
    }
    y = conv_bn_relu(&mut b, "conv5", y, 1024, 1, 1, 0, 1);
    y = b.global_avg_pool("gap", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("fc", y, 1000, true);
    b.output(y);
    b.finish()
}

/// Original ShuffleNetV2.
pub fn v2(batch: u64, width: Width) -> Graph {
    backbone(width.name(), batch, width.stage_channels(), false)
}

/// The paper's modified ShuffleNetV2 ×1.0 (Table 3 row 14, §4.5).
pub fn v2_modified(batch: u64) -> Graph {
    backbone(
        "shufflenetv2-x1.0-mod",
        batch,
        Width::X10.stage_channels(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::OpKind;

    #[test]
    fn x10_params_match_reference() {
        let g = v2(1, Width::X10);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 2.28).abs() < 0.12, "params {params_m}M");
    }

    #[test]
    fn x05_params_match_reference() {
        let g = v2(1, Width::X05);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 1.37).abs() < 0.1, "params {params_m}M");
    }

    #[test]
    fn modified_variant_matches_paper_table5() {
        let g = v2_modified(1);
        let params_m = g.param_count() as f64 / 1e6;
        // paper Table 5: 2.804 M params
        assert!((params_m - 2.8).abs() < 0.12, "params {params_m}M");
        // no shuffles left outside the 3 downsampling units
        let h = g.op_histogram();
        assert_eq!(h.get(&OpKind::Transpose).copied().unwrap_or(0), 3);
        assert_eq!(h.get(&OpKind::Split).copied().unwrap_or(0), 0);
        // 13 residual adds (3 + 7 + 3 non-downsampling blocks)
        assert_eq!(h[&OpKind::Add], 13);
    }

    #[test]
    fn original_has_shuffles_everywhere() {
        let g = v2(1, Width::X10);
        let h = g.op_histogram();
        // one shuffle per unit: 16 transposes
        assert_eq!(h[&OpKind::Transpose], 16);
        assert_eq!(h[&OpKind::Split], 13);
        assert_eq!(h[&OpKind::Concat], 16);
    }

    #[test]
    fn output_heads_are_1000_way() {
        for g in [v2(2, Width::X05), v2_modified(2)] {
            assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[2, 1000]);
        }
    }
}
