//! MLP-Mixer B/16 (Tolstikhin et al., 2021): 12 mixer layers on 196
//! patches × 768 channels.

use crate::blocks::mlp;
use proof_ir::{DType, Graph, GraphBuilder};

/// Build MLP-Mixer B/16 at the given batch size.
pub fn mixer_b16(batch: u64) -> Graph {
    let dim = 768u64;
    let patches = 196u64;
    let token_hidden = 384u64;
    let channel_hidden = 3072u64;
    let layers = 12u64;

    let mut b = GraphBuilder::new("mlp-mixer-b16");
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let p = b.conv("stem", x, dim, 16, 16, 0, 1, true);
    let p = b.reshape(
        "stem/reshape",
        p,
        &[batch as i64, dim as i64, patches as i64],
    );
    let mut y = b.transpose("stem/transpose", p, &[0, 2, 1]); // [B, 196, 768]

    for i in 0..layers {
        let blk = format!("blocks.{i}");
        // token-mixing: LN → transpose → MLP over patches → transpose → +skip
        let n1 = b.layer_norm_decomposed(&format!("{blk}.norm1"), y);
        let t = b.transpose(&format!("{blk}.token/transpose"), n1, &[0, 2, 1]);
        let tm = mlp(
            &mut b,
            &format!("{blk}.token_mlp"),
            t,
            token_hidden,
            patches,
        );
        let t2 = b.transpose(&format!("{blk}.token/transpose_1"), tm, &[0, 2, 1]);
        y = b.add(&format!("{blk}.add1"), y, t2);
        // channel-mixing: LN → MLP over channels → +skip
        let n2 = b.layer_norm_decomposed(&format!("{blk}.norm2"), y);
        let cm = mlp(
            &mut b,
            &format!("{blk}.channel_mlp"),
            n2,
            channel_hidden,
            dim,
        );
        y = b.add(&format!("{blk}.add2"), y, cm);
    }
    y = b.layer_norm_decomposed("norm", y);
    // global average over patches, then classify
    let pooled = b.push(
        "pool",
        proof_ir::OpKind::ReduceMean,
        proof_ir::Attributes::new()
            .with_ints("axes", &[1])
            .with_int("keepdims", 0),
        &[y],
    );
    let out = b.linear("head", pooled, 1000, true);
    b.output(out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_reference() {
        let g = mixer_b16(1);
        let params_m = g.param_count() as f64 / 1e6;
        // reference Mixer-B/16: 59.9 M
        assert!((params_m - 59.9).abs() < 1.0, "params {params_m}M");
    }

    #[test]
    fn output_shape() {
        let g = mixer_b16(4);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[4, 1000]);
    }
}
