//! Swin Transformer (Liu et al., 2021): tiny/small/base, patch 4, window 7.
//!
//! Window partition/reverse and the cyclic shift are emitted as explicit
//! `Reshape`/`Transpose`/`Slice`/`Concat` chains, as the ONNX export does —
//! these are the data-movement layers that show up in layer-wise rooflines.

use crate::blocks::{mha, mlp};
use proof_ir::{Attributes, DType, Graph, GraphBuilder, OpKind, TensorId};

/// Swin size configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwinSize {
    Tiny,
    Small,
    Base,
}

impl SwinSize {
    /// (embed dim, per-stage depths, per-stage heads)
    pub fn config(self) -> (u64, [u64; 4], [u64; 4]) {
        match self {
            SwinSize::Tiny => (96, [2, 2, 6, 2], [3, 6, 12, 24]),
            SwinSize::Small => (96, [2, 2, 18, 2], [3, 6, 12, 24]),
            SwinSize::Base => (128, [2, 2, 18, 2], [4, 8, 16, 32]),
        }
    }

    fn name(self) -> &'static str {
        match self {
            SwinSize::Tiny => "swin-tiny",
            SwinSize::Small => "swin-small",
            SwinSize::Base => "swin-base",
        }
    }
}

const WINDOW: u64 = 7;

/// Cyclic roll along spatial axis `axis` by `shift` (two slices + concat).
fn roll(b: &mut GraphBuilder, name: &str, x: TensorId, axis: i64, shift: i64) -> TensorId {
    let len = b.shape(x).dims()[axis as usize] as i64;
    let head = b.slice(&format!("{name}/slice"), x, &[shift], &[len], &[axis]);
    let tail = b.slice(&format!("{name}/slice_1"), x, &[0], &[shift], &[axis]);
    b.concat(&format!("{name}/concat"), &[head, tail], axis)
}

/// One Swin block on `[B, H·W, C]` tokens.
#[allow(clippy::too_many_arguments)]
fn swin_block(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    batch: u64,
    h: u64,
    heads: u64,
    shifted: bool,
) -> TensorId {
    let c = *b.shape(x).dims().last().unwrap();
    let nw = h / WINDOW; // windows per side
    let n1 = b.layer_norm_decomposed(&format!("{name}.norm1"), x);
    let mut grid = b.reshape(
        &format!("{name}.to_grid"),
        n1,
        &[batch as i64, h as i64, h as i64, c as i64],
    );
    if shifted {
        grid = roll(b, &format!("{name}.shift_h"), grid, 1, (WINDOW / 2) as i64);
        grid = roll(b, &format!("{name}.shift_w"), grid, 2, (WINDOW / 2) as i64);
    }
    // window partition: [B, nw, 7, nw, 7, C] → [B, nw, nw, 7, 7, C] → [B·nw², 49, C]
    let part = b.reshape(
        &format!("{name}.win_partition"),
        grid,
        &[
            batch as i64,
            nw as i64,
            WINDOW as i64,
            nw as i64,
            WINDOW as i64,
            c as i64,
        ],
    );
    let part = b.transpose(&format!("{name}.win_transpose"), part, &[0, 1, 3, 2, 4, 5]);
    let windows = b.reshape(
        &format!("{name}.win_tokens"),
        part,
        &[(batch * nw * nw) as i64, (WINDOW * WINDOW) as i64, c as i64],
    );
    // relative-position bias, materialized as a dense [heads, 49, 49] table
    let bias = b.weight(
        &format!("{name}.attn.rel_pos_bias"),
        &[heads, WINDOW * WINDOW, WINDOW * WINDOW],
    );
    let att = mha(b, &format!("{name}.attn"), windows, heads, Some(bias));
    // window reverse
    let rev = b.reshape(
        &format!("{name}.rev_grid"),
        att,
        &[
            batch as i64,
            nw as i64,
            nw as i64,
            WINDOW as i64,
            WINDOW as i64,
            c as i64,
        ],
    );
    let rev = b.transpose(&format!("{name}.rev_transpose"), rev, &[0, 1, 3, 2, 4, 5]);
    let mut back = b.reshape(
        &format!("{name}.rev_full"),
        rev,
        &[batch as i64, h as i64, h as i64, c as i64],
    );
    if shifted {
        back = roll(
            b,
            &format!("{name}.unshift_h"),
            back,
            1,
            (h - WINDOW / 2) as i64,
        );
        back = roll(
            b,
            &format!("{name}.unshift_w"),
            back,
            2,
            (h - WINDOW / 2) as i64,
        );
    }
    let tokens = b.reshape(
        &format!("{name}.to_tokens"),
        back,
        &[batch as i64, (h * h) as i64, c as i64],
    );
    let x = b.add(&format!("{name}.add1"), x, tokens);
    let n2 = b.layer_norm_decomposed(&format!("{name}.norm2"), x);
    let m = mlp(b, &format!("{name}.mlp"), n2, c * 4, c);
    b.add(&format!("{name}.add2"), x, m)
}

/// Patch merging: 2×2 neighbourhood concat (4 strided slices) + LN +
/// linear 4C→2C.
fn patch_merging(b: &mut GraphBuilder, name: &str, x: TensorId, batch: u64, h: u64) -> TensorId {
    let c = *b.shape(x).dims().last().unwrap();
    let grid = b.reshape(
        &format!("{name}.to_grid"),
        x,
        &[batch as i64, h as i64, h as i64, c as i64],
    );
    let mut quads = Vec::with_capacity(4);
    for (i, (oh, ow)) in [(0i64, 0i64), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
        quads.push(
            b.push(
                &format!("{name}.slice_{i}"),
                OpKind::Slice,
                Attributes::new()
                    .with_ints("starts", &[*oh, *ow])
                    .with_ints("ends", &[h as i64, h as i64])
                    .with_ints("axes", &[1, 2])
                    .with_ints("steps", &[2, 2]),
                &[grid],
            ),
        );
    }
    let cat = b.concat(&format!("{name}.concat"), &quads, -1);
    let tokens = b.reshape(
        &format!("{name}.to_tokens"),
        cat,
        &[batch as i64, ((h / 2) * (h / 2)) as i64, (4 * c) as i64],
    );
    let n = b.layer_norm_decomposed(&format!("{name}.norm"), tokens);
    b.linear(&format!("{name}.reduction"), n, 2 * c, false)
}

/// Build a Swin Transformer at the given batch size.
pub fn swin(batch: u64, size: SwinSize) -> Graph {
    let (embed, depths, heads) = size.config();
    let mut b = GraphBuilder::new(size.name());
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    // patch embedding: conv 4×4/4 → [B, C, 56, 56] → tokens + LN
    let p = b.conv("patch_embed", x, embed, 4, 4, 0, 1, true);
    let p = b.reshape(
        "patch_embed/reshape",
        p,
        &[batch as i64, embed as i64, 56 * 56],
    );
    let p = b.transpose("patch_embed/transpose", p, &[0, 2, 1]);
    let mut y = b.layer_norm_decomposed("patch_embed.norm", p);

    let mut res = 56u64;
    for (stage, (&depth, &nheads)) in depths.iter().zip(&heads).enumerate() {
        for i in 0..depth {
            y = swin_block(
                &mut b,
                &format!("layers.{stage}.blocks.{i}"),
                y,
                batch,
                res,
                nheads,
                i % 2 == 1, // alternate W-MSA / SW-MSA
            );
        }
        if stage < 3 {
            y = patch_merging(&mut b, &format!("layers.{stage}.downsample"), y, batch, res);
            res /= 2;
        }
    }
    y = b.layer_norm_decomposed("norm", y);
    let pooled = b.push(
        "pool",
        OpKind::ReduceMean,
        Attributes::new()
            .with_ints("axes", &[1])
            .with_int("keepdims", 0),
        &[y],
    );
    let out = b.linear("head", pooled, 1000, true);
    b.output(out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_params_match_reference() {
        let g = swin(1, SwinSize::Tiny);
        let params_m = g.param_count() as f64 / 1e6;
        // reference 28.3 M + dense rel-pos tables ≈ 28.6 (paper: 28.8)
        assert!((params_m - 28.8).abs() < 1.0, "params {params_m}M");
    }

    #[test]
    fn small_and_base_params() {
        let s = swin(1, SwinSize::Small).param_count() as f64 / 1e6;
        assert!((s - 50.5).abs() < 1.5, "small {s}M");
        let b_ = swin(1, SwinSize::Base).param_count() as f64 / 1e6;
        assert!((b_ - 88.9).abs() < 2.5, "base {b_}M");
    }

    #[test]
    fn small_and_base_share_topology() {
        assert_eq!(
            swin(1, SwinSize::Small).node_count(),
            swin(1, SwinSize::Base).node_count()
        );
        assert!(swin(1, SwinSize::Tiny).node_count() < swin(1, SwinSize::Small).node_count());
    }

    #[test]
    fn output_shape_and_batch() {
        let g = swin(2, SwinSize::Tiny);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[2, 1000]);
    }

    #[test]
    fn shifted_blocks_emit_roll_slices() {
        let g = swin(1, SwinSize::Tiny);
        let shifts = g
            .nodes
            .iter()
            .filter(|n| n.name.contains(".shift_h/concat"))
            .count();
        // one shifted block per pair: depths [2,2,6,2] → 1+1+3+1 = 6
        assert_eq!(shifts, 6);
    }
}
