//! # proof-models — the evaluation model zoo
//!
//! Graph-level reconstructions of the 20 models in the paper's Table 3,
//! built with [`proof_ir::GraphBuilder`] so that node patterns match what
//! PyTorch's ONNX exporter produces (decomposed GELU/LayerNorm, `Sigmoid`+
//! `Mul` SiLU, reshape/transpose channel shuffles, ...). Parameter counts
//! match the reference implementations; FLOP counts are validated against
//! Table 3 by the `exp_table3` harness.
//!
//! All CNNs are built at 224×224 input (which is how the paper's GFLOP
//! column is computed); DistilBERT uses sequence length 512; the Stable
//! Diffusion UNet defaults to the 128×128 latent the paper evaluates
//! (footnote 5) — which also reproduces Table 3's 4748-GFLOP row (+2.5 %).

pub mod bert;
pub mod blocks;
pub mod efficientnet;
pub mod mixer;
pub mod mobilenet;
pub mod resnet;
pub mod shufflenet;
pub mod swin;
pub mod unet;
pub mod vit;

use proof_ir::Graph;

/// The 20 models of Table 3, by paper index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    DistilBertBase,      // 1
    StableDiffusionUnet, // 2
    EfficientNetB0,      // 3
    EfficientNetB4,      // 4
    EfficientNetV2T,     // 5
    EfficientNetV2S,     // 6
    MlpMixerB16,         // 7
    MobileNetV2x05,      // 8
    MobileNetV2x10,      // 9
    ResNet34,            // 10
    ResNet50,            // 11
    ShuffleNetV2x05,     // 12
    ShuffleNetV2x10,     // 13
    ShuffleNetV2x10Mod,  // 14
    SwinTiny,            // 15
    SwinSmall,           // 16
    SwinBase,            // 17
    ViTTiny,             // 18
    ViTSmall,            // 19
    ViTBase,             // 20
}

/// Reference row from the paper's Table 3 (params in millions, theoretical
/// GFLOP at batch size 1).
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    pub index: u32,
    pub name: &'static str,
    pub kind: &'static str,
    pub paper_nodes: u32,
    pub paper_params_m: f64,
    pub paper_gflop: f64,
}

impl ModelId {
    pub const ALL: [ModelId; 20] = [
        ModelId::DistilBertBase,
        ModelId::StableDiffusionUnet,
        ModelId::EfficientNetB0,
        ModelId::EfficientNetB4,
        ModelId::EfficientNetV2T,
        ModelId::EfficientNetV2S,
        ModelId::MlpMixerB16,
        ModelId::MobileNetV2x05,
        ModelId::MobileNetV2x10,
        ModelId::ResNet34,
        ModelId::ResNet50,
        ModelId::ShuffleNetV2x05,
        ModelId::ShuffleNetV2x10,
        ModelId::ShuffleNetV2x10Mod,
        ModelId::SwinTiny,
        ModelId::SwinSmall,
        ModelId::SwinBase,
        ModelId::ViTTiny,
        ModelId::ViTSmall,
        ModelId::ViTBase,
    ];

    /// Build the model graph at the given batch size.
    pub fn build(self, batch: u64) -> Graph {
        match self {
            ModelId::DistilBertBase => bert::distilbert_base(batch, 512),
            ModelId::StableDiffusionUnet => unet::sd_unet(batch, 128),
            ModelId::EfficientNetB0 => efficientnet::b0(batch),
            ModelId::EfficientNetB4 => efficientnet::b4(batch),
            ModelId::EfficientNetV2T => efficientnet::v2_t(batch),
            ModelId::EfficientNetV2S => efficientnet::v2_s(batch),
            ModelId::MlpMixerB16 => mixer::mixer_b16(batch),
            ModelId::MobileNetV2x05 => mobilenet::v2(batch, 0.5),
            ModelId::MobileNetV2x10 => mobilenet::v2(batch, 1.0),
            ModelId::ResNet34 => resnet::resnet34(batch),
            ModelId::ResNet50 => resnet::resnet50(batch),
            ModelId::ShuffleNetV2x05 => shufflenet::v2(batch, shufflenet::Width::X05),
            ModelId::ShuffleNetV2x10 => shufflenet::v2(batch, shufflenet::Width::X10),
            ModelId::ShuffleNetV2x10Mod => shufflenet::v2_modified(batch),
            ModelId::SwinTiny => swin::swin(batch, swin::SwinSize::Tiny),
            ModelId::SwinSmall => swin::swin(batch, swin::SwinSize::Small),
            ModelId::SwinBase => swin::swin(batch, swin::SwinSize::Base),
            ModelId::ViTTiny => vit::vit(batch, vit::ViTSize::Tiny),
            ModelId::ViTSmall => vit::vit(batch, vit::ViTSize::Small),
            ModelId::ViTBase => vit::vit(batch, vit::ViTSize::Base),
        }
    }

    /// The Table 3 reference row for this model.
    pub fn table3(self) -> Table3Row {
        let r = |index, name, kind, paper_nodes, paper_params_m, paper_gflop| Table3Row {
            index,
            name,
            kind,
            paper_nodes,
            paper_params_m,
            paper_gflop,
        };
        match self {
            ModelId::DistilBertBase => r(1, "DistilBERT base", "Trans.", 435, 67.0, 48.718),
            ModelId::StableDiffusionUnet => {
                r(2, "Stable Diffusion", "Diffu.", 5343, 859.5, 4747.726)
            }
            ModelId::EfficientNetB0 => r(3, "EfficientNet B0", "CNN", 239, 5.3, 0.851),
            ModelId::EfficientNetB4 => r(4, "EfficientNet B4", "CNN", 476, 19.3, 3.209),
            ModelId::EfficientNetV2T => r(5, "EfficientNetV2-T", "CNN", 487, 13.6, 3.939),
            ModelId::EfficientNetV2S => r(6, "EfficientNetV2-S", "CNN", 504, 23.9, 6.030),
            ModelId::MlpMixerB16 => r(7, "MLP-Mixer (B/16)", "MLP", 497, 59.9, 25.403),
            ModelId::MobileNetV2x05 => r(8, "MobileNetV2 0.5", "CNN", 100, 2.0, 0.205),
            ModelId::MobileNetV2x10 => r(9, "MobileNetV2 1.0", "CNN", 100, 3.5, 0.621),
            ModelId::ResNet34 => r(10, "ResNet-34", "CNN", 89, 21.8, 7.338),
            ModelId::ResNet50 => r(11, "ResNet-50", "CNN", 122, 25.5, 8.207),
            ModelId::ShuffleNetV2x05 => r(12, "ShuffleNetV2 x0.5", "CNN", 584, 1.4, 0.084),
            ModelId::ShuffleNetV2x10 => r(13, "ShuffleNetV2 x1.0", "CNN", 584, 2.3, 0.294),
            ModelId::ShuffleNetV2x10Mod => r(14, "Shuf. v2 x1.0 mod", "CNN", 156, 2.8, 0.434),
            ModelId::SwinTiny => r(15, "Swin tiny (P4W7)", "Trans.", 1465, 28.8, 9.133),
            ModelId::SwinSmall => r(16, "Swin small (P4W7)", "Trans.", 2839, 50.5, 17.723),
            ModelId::SwinBase => r(17, "Swin base (P4W7)", "Trans.", 2839, 88.9, 31.183),
            ModelId::ViTTiny => r(18, "ViT tiny", "Trans.", 786, 5.7, 2.558),
            ModelId::ViTSmall => r(19, "ViT small", "Trans.", 786, 22.1, 9.298),
            ModelId::ViTBase => r(20, "ViT base", "Trans.", 786, 86.6, 35.329),
        }
    }

    /// Short machine-friendly name (CLI identifier).
    pub fn slug(self) -> &'static str {
        match self {
            ModelId::DistilBertBase => "distilbert-base",
            ModelId::StableDiffusionUnet => "sd-unet",
            ModelId::EfficientNetB0 => "efficientnet-b0",
            ModelId::EfficientNetB4 => "efficientnet-b4",
            ModelId::EfficientNetV2T => "efficientnetv2-t",
            ModelId::EfficientNetV2S => "efficientnetv2-s",
            ModelId::MlpMixerB16 => "mlp-mixer-b16",
            ModelId::MobileNetV2x05 => "mobilenetv2-0.5",
            ModelId::MobileNetV2x10 => "mobilenetv2-1.0",
            ModelId::ResNet34 => "resnet-34",
            ModelId::ResNet50 => "resnet-50",
            ModelId::ShuffleNetV2x05 => "shufflenetv2-x0.5",
            ModelId::ShuffleNetV2x10 => "shufflenetv2-x1.0",
            ModelId::ShuffleNetV2x10Mod => "shufflenetv2-x1.0-mod",
            ModelId::SwinTiny => "swin-tiny",
            ModelId::SwinSmall => "swin-small",
            ModelId::SwinBase => "swin-base",
            ModelId::ViTTiny => "vit-tiny",
            ModelId::ViTSmall => "vit-small",
            ModelId::ViTBase => "vit-base",
        }
    }

    /// Parse a slug back into a model id.
    pub fn parse(s: &str) -> Option<ModelId> {
        ModelId::ALL.into_iter().find(|m| m.slug() == s)
    }

    /// Whether the paper runs this model on edge/CPU platforms (Transformer
    /// and diffusion models are excluded there, §4.3).
    pub fn runs_on_edge(self) -> bool {
        matches!(self.table3().kind, "CNN")
    }
}
