//! DistilBERT base (Sanh et al.): 6-layer, 768-hidden, 12-head encoder.
//!
//! Exported as the encoder (no task head), sequence length 512 — the
//! configuration that reproduces the paper's 48.7 GFLOP at batch 1.

use crate::blocks::{mha, mlp};
use proof_ir::{Attributes, DType, Graph, GraphBuilder, OpKind};

/// Build DistilBERT base at `(batch, seq_len)`: 6 layers, hidden 768.
pub fn distilbert_base(batch: u64, seq_len: u64) -> Graph {
    encoder("distilbert-base", batch, seq_len, 6, 768, 12)
}

/// Build BERT base at `(batch, seq_len)`: 12 layers, hidden 768 (an
/// extension beyond Table 3 — same post-norm encoder family).
pub fn bert_base(batch: u64, seq_len: u64) -> Graph {
    encoder("bert-base", batch, seq_len, 12, 768, 12)
}

/// Generic post-norm BERT-family encoder.
pub fn encoder(
    name: &str,
    batch: u64,
    seq_len: u64,
    layers: u64,
    hidden: u64,
    heads: u64,
) -> Graph {
    let vocab = 30522u64;
    let max_pos = 512u64;
    assert!(seq_len <= max_pos, "seq_len {seq_len} > max positions");

    let mut b = GraphBuilder::new(name);
    let ids = b.input("input_ids", &[batch, seq_len], DType::I64);

    // embeddings: word lookup + position lookup + LayerNorm
    let word_table = b.weight("embeddings.word", &[vocab, hidden]);
    let word = b.gather("embeddings/word_gather", word_table, ids, 0);
    let pos_table = b.weight("embeddings.position", &[max_pos, hidden]);
    let pos_ids = b.push(
        "embeddings/position_ids",
        OpKind::Range,
        Attributes::new().with_int("length", seq_len as i64),
        &[],
    );
    let pos = b.gather("embeddings/pos_gather", pos_table, pos_ids, 0);
    let mut y = b.add("embeddings/add", word, pos);
    y = b.layer_norm_decomposed("embeddings.norm", y);

    for i in 0..layers {
        let blk = format!("transformer.layer.{i}");
        // DistilBERT is post-norm: attn → add → LN → ffn → add → LN
        let att = mha(&mut b, &format!("{blk}.attention"), y, heads, None);
        let a = b.add(&format!("{blk}.add1"), y, att);
        let n1 = b.layer_norm_decomposed(&format!("{blk}.sa_norm"), a);
        let ff = mlp(&mut b, &format!("{blk}.ffn"), n1, hidden * 4, hidden);
        let f = b.add(&format!("{blk}.add2"), n1, ff);
        y = b.layer_norm_decomposed(&format!("{blk}.output_norm"), f);
    }
    b.output(y);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_distilbert() {
        let g = distilbert_base(1, 512);
        let params_m = g.param_count() as f64 / 1e6;
        // HF distilbert-base: 66.4 M (paper Table 3: 67.0)
        assert!((params_m - 66.4).abs() < 1.2, "params {params_m}M");
    }

    #[test]
    fn bert_base_params_match_reference() {
        // HF bert-base-uncased encoder (no pooler): ~109 M
        let g = bert_base(1, 128);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 109.0).abs() < 3.0, "params {params_m}M");
    }

    #[test]
    fn sequence_and_batch_shape_output() {
        let g = distilbert_base(2, 128);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[2, 128, 768]);
    }

    #[test]
    #[should_panic(expected = "seq_len")]
    fn rejects_overlong_sequences() {
        distilbert_base(1, 1024);
    }
}
