//! Shared architectural building blocks.
//!
//! CNN conv+BN pairs are emitted as a single biased `Conv`, matching
//! PyTorch's eval-mode ONNX export (which folds BatchNorm into the
//! preceding convolution — this is why torchvision's ResNet-50 exports as
//! 122 nodes). Activations use the exporter's decompositions (SiLU =
//! `Sigmoid`+`Mul`, GELU = 5 ops).

use proof_ir::{GraphBuilder, TensorId};

/// Folded Conv+BN (a biased convolution), square kernel.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    k: u64,
    s: u64,
    p: u64,
    groups: u64,
) -> TensorId {
    b.conv(name, x, cout, k, s, p, groups, true)
}

/// Folded Conv+BN followed by ReLU.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_relu(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    k: u64,
    s: u64,
    p: u64,
    groups: u64,
) -> TensorId {
    let c = conv_bn(b, name, x, cout, k, s, p, groups);
    b.relu(&format!("{name}/relu"), c)
}

/// Folded Conv+BN followed by SiLU (Sigmoid+Mul pair).
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_silu(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    k: u64,
    s: u64,
    p: u64,
    groups: u64,
) -> TensorId {
    let c = conv_bn(b, name, x, cout, k, s, p, groups);
    b.silu(&format!("{name}/silu"), c)
}

/// Squeeze-and-Excitation: GAP → 1×1 conv reduce → SiLU → 1×1 conv expand →
/// Sigmoid → Mul (the EfficientNet pattern).
pub fn se_block(b: &mut GraphBuilder, name: &str, x: TensorId, reduced: u64) -> TensorId {
    let c = b.channels(x);
    let pooled = b.global_avg_pool(&format!("{name}/gap"), x);
    let r = b.conv(&format!("{name}/fc1"), pooled, reduced, 1, 1, 0, 1, true);
    let r = b.silu(&format!("{name}/act"), r);
    let e = b.conv(&format!("{name}/fc2"), r, c, 1, 1, 0, 1, true);
    let s = b.sigmoid(&format!("{name}/gate"), e);
    b.mul(&format!("{name}/scale"), x, s)
}

/// ShuffleNet channel shuffle: reshape `[N, g, C/g, H, W]` → transpose →
/// reshape back (3 data-movement nodes — the layers the paper's Figure 6
/// shows dominating ShuffleNetV2's latency).
pub fn channel_shuffle(b: &mut GraphBuilder, name: &str, x: TensorId, groups: u64) -> TensorId {
    let dims = b.shape(x).dims().to_vec();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c % groups, 0, "shuffle {name}: {c} % {groups}");
    let r1 = b.reshape(
        &format!("{name}/reshape"),
        x,
        &[
            n as i64,
            groups as i64,
            (c / groups) as i64,
            h as i64,
            w as i64,
        ],
    );
    let t = b.transpose(&format!("{name}/transpose"), r1, &[0, 2, 1, 3, 4]);
    b.reshape(
        &format!("{name}/reshape_1"),
        t,
        &[n as i64, c as i64, h as i64, w as i64],
    )
}

/// Multi-head self-attention on `[B, L, E]` tokens, exported PyTorch-style:
/// three projections, head split via reshape/transpose, scaled QKᵀ,
/// optional additive bias (Swin's relative position bias), softmax, AV,
/// head merge, output projection. Returns the projected output `[B, L, E]`.
pub fn mha(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    heads: u64,
    attn_bias: Option<TensorId>,
) -> TensorId {
    let dims = b.shape(x).dims().to_vec();
    let (batch, len, embed) = (dims[0], dims[1], dims[2]);
    assert_eq!(embed % heads, 0, "mha {name}: {embed} % {heads}");
    let hd = embed / heads;
    let q = b.linear(&format!("{name}/q"), x, embed, true);
    let k = b.linear(&format!("{name}/k"), x, embed, true);
    let v = b.linear(&format!("{name}/v"), x, embed, true);
    let split = |b: &mut GraphBuilder, t: TensorId, tag: &str, perm: &[i64]| {
        let r = b.reshape(
            &format!("{name}/{tag}/reshape"),
            t,
            &[batch as i64, len as i64, heads as i64, hd as i64],
        );
        b.transpose(&format!("{name}/{tag}/transpose"), r, perm)
    };
    let qh = split(b, q, "qh", &[0, 2, 1, 3]); // [B, H, L, hd]
    let kh = split(b, k, "kh", &[0, 2, 3, 1]); // [B, H, hd, L]
    let vh = split(b, v, "vh", &[0, 2, 1, 3]);
    let scores = b.matmul(&format!("{name}/qk"), qh, kh);
    let scale = b.scalar(&format!("{name}/scale"));
    let scaled = b.mul(&format!("{name}/scaled"), scores, scale);
    let biased = match attn_bias {
        Some(bias) => b.add(&format!("{name}/bias_add"), scaled, bias),
        None => scaled,
    };
    let probs = b.softmax(&format!("{name}/softmax"), biased, -1);
    let ctx = b.matmul(&format!("{name}/av"), probs, vh);
    let merged = b.transpose(&format!("{name}/merge/transpose"), ctx, &[0, 2, 1, 3]);
    let flat = b.reshape(
        &format!("{name}/merge/reshape"),
        merged,
        &[batch as i64, len as i64, embed as i64],
    );
    b.linear(&format!("{name}/proj"), flat, embed, true)
}

/// Transformer MLP block: linear → GELU → linear.
pub fn mlp(b: &mut GraphBuilder, name: &str, x: TensorId, hidden: u64, out: u64) -> TensorId {
    let h = b.linear(&format!("{name}/fc1"), x, hidden, true);
    let a = b.gelu(&format!("{name}/gelu"), h);
    b.linear(&format!("{name}/fc2"), a, out, true)
}

/// `make_divisible` channel rounding used by the mobile CNN families.
pub fn make_divisible(v: f64, divisor: u64) -> u64 {
    let d = divisor as f64;
    let new_v = ((v + d / 2.0) / d).floor() * d;
    let new_v = new_v.max(d);
    // don't round down by more than 10%
    if new_v < 0.9 * v {
        (new_v + d) as u64
    } else {
        new_v as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::{DType, GraphBuilder, Shape};

    #[test]
    fn se_block_preserves_shape() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 64, 14, 14], DType::F32);
        let y = se_block(&mut b, "se", x, 16);
        assert_eq!(b.shape(y), &Shape::new(&[2, 64, 14, 14]));
        b.output(y);
        b.finish().validate().unwrap();
    }

    #[test]
    fn channel_shuffle_is_three_nodes_shape_preserving() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 116, 28, 28], DType::F32);
        let y = channel_shuffle(&mut b, "shuf", x, 2);
        assert_eq!(b.shape(y), &Shape::new(&[1, 116, 28, 28]));
        b.output(y);
        let g = b.finish();
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn mha_output_shape_and_param_count() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 197, 192], DType::F32);
        let y = mha(&mut b, "attn", x, 3, None);
        assert_eq!(b.shape(y), &Shape::new(&[2, 197, 192]));
        b.output(y);
        let g = b.finish();
        // 4 × (E² + E) weights + the scale scalar
        assert_eq!(g.param_count(), 4 * (192 * 192 + 192) + 1);
    }

    #[test]
    fn make_divisible_matches_torchvision_semantics() {
        assert_eq!(make_divisible(32.0 * 0.5, 8), 16);
        assert_eq!(make_divisible(24.0 * 0.5, 8), 16); // 12 → rounds to 16 (>10% rule)
        assert_eq!(make_divisible(16.0 * 1.4, 8), 24);
        assert_eq!(make_divisible(3.0, 8), 8);
    }
}
