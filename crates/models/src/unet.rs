//! The Stable Diffusion v1.x UNet (Rombach et al., 2022): ~860 M parameters,
//! cross-attention conditioned on 77 CLIP text tokens.
//!
//! Inputs: the latent `[B, 4, R, R]`, a precomputed sinusoidal timestep
//! embedding `[B, 320]`, and the text context `[B, 77, 768]`. The paper runs
//! it at a 128×128 latent with batch 4 for Figure 4 (footnote 5); Table 3's
//! GFLOP row is at batch 1.

use proof_ir::{DType, Graph, GraphBuilder, TensorId};

const MODEL_CH: u64 = 320;
const TIME_CH: u64 = 1280;
const CONTEXT_LEN: u64 = 77;
const CONTEXT_DIM: u64 = 768;
const HEADS: u64 = 8;

struct UNetBuilder {
    b: GraphBuilder,
    batch: u64,
    t_emb: TensorId,
    context: TensorId,
}

impl UNetBuilder {
    fn group_norm_silu(&mut self, name: &str, x: TensorId) -> TensorId {
        let n = self.b.group_norm(&format!("{name}.norm"), x, 32);
        self.b.silu(&format!("{name}.silu"), n)
    }

    /// Residual block with timestep-embedding injection.
    fn res_block(&mut self, name: &str, x: TensorId, cout: u64) -> TensorId {
        let cin = self.b.channels(x);
        let h = self.group_norm_silu(&format!("{name}.in"), x);
        let h = self
            .b
            .conv(&format!("{name}.conv1"), h, cout, 3, 1, 1, 1, true);
        let e = self.b.silu(&format!("{name}.emb_silu"), self.t_emb);
        let e = self.b.linear(&format!("{name}.emb_proj"), e, cout, true);
        let e = self.b.reshape(
            &format!("{name}.emb_reshape"),
            e,
            &[self.batch as i64, cout as i64, 1, 1],
        );
        let h = self.b.add(&format!("{name}.emb_add"), h, e);
        let h = self.group_norm_silu(&format!("{name}.out"), h);
        let h = self
            .b
            .conv(&format!("{name}.conv2"), h, cout, 3, 1, 1, 1, true);
        let skip = if cin != cout {
            self.b
                .conv(&format!("{name}.skip"), x, cout, 1, 1, 0, 1, true)
        } else {
            x
        };
        self.b.add(&format!("{name}.add"), skip, h)
    }

    /// Cross-attention (queries from `x` `[B, L, C]`, keys/values from the
    /// text context). With `kv = x` this degenerates to self-attention.
    fn attention(&mut self, name: &str, x: TensorId, kv: TensorId) -> TensorId {
        let dims = self.b.shape(x).dims().to_vec();
        let (batch, len, c) = (dims[0], dims[1], dims[2]);
        let kv_len = self.b.shape(kv).dims()[1];
        let hd = c / HEADS;
        let b = &mut self.b;
        let q = b.linear(&format!("{name}.to_q"), x, c, false);
        let k = b.linear(&format!("{name}.to_k"), kv, c, false);
        let v = b.linear(&format!("{name}.to_v"), kv, c, false);
        let reshape4 = |b: &mut GraphBuilder, t, tag: &str, l: u64, perm: &[i64]| {
            let r = b.reshape(
                &format!("{name}.{tag}_reshape"),
                t,
                &[batch as i64, l as i64, HEADS as i64, hd as i64],
            );
            b.transpose(&format!("{name}.{tag}_transpose"), r, perm)
        };
        let qh = reshape4(b, q, "q", len, &[0, 2, 1, 3]);
        let kh = reshape4(b, k, "k", kv_len, &[0, 2, 3, 1]);
        let vh = reshape4(b, v, "v", kv_len, &[0, 2, 1, 3]);
        let scores = b.matmul(&format!("{name}.qk"), qh, kh);
        let scale = b.scalar(&format!("{name}.scale"));
        let scaled = b.mul(&format!("{name}.scaled"), scores, scale);
        let probs = b.softmax(&format!("{name}.softmax"), scaled, -1);
        let ctx = b.matmul(&format!("{name}.av"), probs, vh);
        let merged = b.transpose(&format!("{name}.merge_transpose"), ctx, &[0, 2, 1, 3]);
        let flat = b.reshape(
            &format!("{name}.merge_reshape"),
            merged,
            &[batch as i64, len as i64, c as i64],
        );
        b.linear(&format!("{name}.to_out"), flat, c, true)
    }

    /// GEGLU feed-forward: linear → split → GELU-gate → linear.
    fn geglu_ff(&mut self, name: &str, x: TensorId) -> TensorId {
        let c = *self.b.shape(x).dims().last().unwrap();
        let b = &mut self.b;
        let proj = b.linear(&format!("{name}.proj"), x, 8 * c, true);
        let (a, gate) = b.split2(&format!("{name}.split"), proj, -1);
        let g = b.gelu(&format!("{name}.gelu"), gate);
        let gated = b.mul(&format!("{name}.mul"), a, g);
        b.linear(&format!("{name}.out"), gated, c, true)
    }

    /// Spatial transformer: GN → proj_in → (self-attn, cross-attn, GEGLU FF)
    /// → proj_out + residual.
    fn spatial_transformer(&mut self, name: &str, x: TensorId) -> TensorId {
        let c = self.b.channels(x);
        let dims = self.b.shape(x).dims().to_vec();
        let (h, w) = (dims[2], dims[3]);
        let n = self.b.group_norm(&format!("{name}.norm"), x, 32);
        let p = self
            .b
            .conv(&format!("{name}.proj_in"), n, c, 1, 1, 0, 1, true);
        let t = self.b.reshape(
            &format!("{name}.to_tokens"),
            p,
            &[self.batch as i64, c as i64, (h * w) as i64],
        );
        let mut y = self
            .b
            .transpose(&format!("{name}.transpose_in"), t, &[0, 2, 1]);
        // basic transformer block (depth 1 in SD v1)
        let n1 = self.b.layer_norm_fused(&format!("{name}.norm1"), y);
        let sa = self.attention(&format!("{name}.attn1"), n1, n1);
        y = self.b.add(&format!("{name}.add1"), y, sa);
        let n2 = self.b.layer_norm_fused(&format!("{name}.norm2"), y);
        let ca = self.attention(&format!("{name}.attn2"), n2, self.context);
        y = self.b.add(&format!("{name}.add2"), y, ca);
        let n3 = self.b.layer_norm_fused(&format!("{name}.norm3"), y);
        let ff = self.geglu_ff(&format!("{name}.ff"), n3);
        y = self.b.add(&format!("{name}.add3"), y, ff);
        let back = self
            .b
            .transpose(&format!("{name}.transpose_out"), y, &[0, 2, 1]);
        let grid = self.b.reshape(
            &format!("{name}.to_grid"),
            back,
            &[self.batch as i64, c as i64, h as i64, w as i64],
        );
        let o = self
            .b
            .conv(&format!("{name}.proj_out"), grid, c, 1, 1, 0, 1, true);
        self.b.add(&format!("{name}.res_add"), x, o)
    }
}

/// Build the SD v1.x UNet at `(batch, latent resolution)`.
pub fn sd_unet(batch: u64, latent: u64) -> Graph {
    let mut b = GraphBuilder::new("sd-unet");
    let x = b.input("latent", &[batch, 4, latent, latent], DType::F32);
    let t_in = b.input("t_emb", &[batch, MODEL_CH], DType::F32);
    let context = b.input("context", &[batch, CONTEXT_LEN, CONTEXT_DIM], DType::F32);

    // time embedding MLP
    let t = b.linear("time_embed.0", t_in, TIME_CH, true);
    let t = b.silu("time_embed.silu", t);
    let t_emb = b.linear("time_embed.2", t, TIME_CH, true);

    let mut u = UNetBuilder {
        b,
        batch,
        t_emb,
        context,
    };

    let chans = [MODEL_CH, 2 * MODEL_CH, 4 * MODEL_CH, 4 * MODEL_CH];
    let mut h = u.b.conv("input_blocks.0", x, MODEL_CH, 3, 1, 1, 1, true);
    let mut skips: Vec<TensorId> = vec![h];

    // ---- encoder ----
    for (level, &c) in chans.iter().enumerate() {
        for i in 0..2 {
            let name = format!("input_blocks.{level}.{i}");
            h = u.res_block(&format!("{name}.res"), h, c);
            if level < 3 {
                h = u.spatial_transformer(&format!("{name}.st"), h);
            }
            skips.push(h);
        }
        if level < 3 {
            h = u.b.conv(
                &format!("input_blocks.{level}.down"),
                h,
                c,
                3,
                2,
                1,
                1,
                true,
            );
            skips.push(h);
        }
    }

    // ---- middle ----
    h = u.res_block("middle.res1", h, 4 * MODEL_CH);
    h = u.spatial_transformer("middle.st", h);
    h = u.res_block("middle.res2", h, 4 * MODEL_CH);

    // ---- decoder ----
    for (level, &c) in chans.iter().enumerate().rev() {
        for i in 0..3 {
            let name = format!("output_blocks.{level}.{i}");
            let skip = skips.pop().expect("skip stack underflow");
            let cat = u.b.concat(&format!("{name}.cat"), &[h, skip], 1);
            h = u.res_block(&format!("{name}.res"), cat, c);
            if level < 3 {
                h = u.spatial_transformer(&format!("{name}.st"), h);
            }
        }
        if level > 0 {
            h = u.b.resize2x(&format!("output_blocks.{level}.upsample"), h);
            h = u.b.conv(
                &format!("output_blocks.{level}.up_conv"),
                h,
                c,
                3,
                1,
                1,
                1,
                true,
            );
        }
    }

    // ---- head ----
    let o = u.group_norm_silu("out", h);
    let o = u.b.conv("out.conv", o, 4, 3, 1, 1, 1, true);
    u.b.output(o);
    u.b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_sd_v1_unet() {
        let g = sd_unet(1, 32); // small latent: params don't depend on resolution
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 859.5).abs() < 20.0, "params {params_m}M");
    }

    #[test]
    fn skip_stack_balances_and_output_is_latent_shaped() {
        let g = sd_unet(2, 64);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[2, 4, 64, 64]);
    }

    #[test]
    fn three_inputs() {
        let g = sd_unet(1, 32);
        assert_eq!(g.inputs.len(), 3);
    }
}
