//! ResNet-34 / ResNet-50 (He et al., 2016), torchvision-style export.

use crate::blocks::{conv_bn, conv_bn_relu};
use proof_ir::{DType, Graph, GraphBuilder, TensorId};

/// Basic (two 3×3 conv) residual block.
fn basic_block(b: &mut GraphBuilder, name: &str, x: TensorId, cout: u64, stride: u64) -> TensorId {
    let y = conv_bn_relu(b, &format!("{name}.conv1"), x, cout, 3, stride, 1, 1);
    let y = conv_bn(b, &format!("{name}.conv2"), y, cout, 3, 1, 1, 1);
    let shortcut = if stride != 1 || b.channels(x) != cout {
        conv_bn(b, &format!("{name}.downsample"), x, cout, 1, stride, 0, 1)
    } else {
        x
    };
    let s = b.add(&format!("{name}.add"), y, shortcut);
    b.relu(&format!("{name}.relu_out"), s)
}

/// Bottleneck (1×1 → 3×3 → 1×1, ×4 expansion) residual block.
fn bottleneck(b: &mut GraphBuilder, name: &str, x: TensorId, width: u64, stride: u64) -> TensorId {
    let cout = width * 4;
    let y = conv_bn_relu(b, &format!("{name}.conv1"), x, width, 1, 1, 0, 1);
    let y = conv_bn_relu(b, &format!("{name}.conv2"), y, width, 3, stride, 1, 1);
    let y = conv_bn(b, &format!("{name}.conv3"), y, cout, 1, 1, 0, 1);
    let shortcut = if stride != 1 || b.channels(x) != cout {
        conv_bn(b, &format!("{name}.downsample"), x, cout, 1, stride, 0, 1)
    } else {
        x
    };
    let s = b.add(&format!("{name}.add"), y, shortcut);
    b.relu(&format!("{name}.relu_out"), s)
}

fn resnet(name: &str, batch: u64, layers: [u64; 4], bottlenecked: bool) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let mut y = conv_bn_relu(&mut b, "conv1", x, 64, 7, 2, 3, 1);
    y = b.maxpool("maxpool", y, 3, 2, 1);
    let widths = [64u64, 128, 256, 512];
    for (stage, (&n, &w)) in layers.iter().zip(&widths).enumerate() {
        for i in 0..n {
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let bname = format!("layer{}.{}", stage + 1, i);
            y = if bottlenecked {
                bottleneck(&mut b, &bname, y, w, stride)
            } else {
                basic_block(&mut b, &bname, y, w, stride)
            };
        }
    }
    y = b.global_avg_pool("avgpool", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("fc", y, 1000, true);
    b.output(y);
    b.finish()
}

/// ResNet-18: basic blocks, depths [2, 2, 2, 2].
pub fn resnet18(batch: u64) -> Graph {
    resnet("resnet18", batch, [2, 2, 2, 2], false)
}

/// ResNet-34: basic blocks, depths [3, 4, 6, 3].
pub fn resnet34(batch: u64) -> Graph {
    resnet("resnet34", batch, [3, 4, 6, 3], false)
}

/// ResNet-101: bottleneck blocks, depths [3, 4, 23, 3].
pub fn resnet101(batch: u64) -> Graph {
    resnet("resnet101", batch, [3, 4, 23, 3], true)
}

/// ResNet-50: bottleneck blocks, depths [3, 4, 6, 3].
pub fn resnet50(batch: u64) -> Graph {
    resnet("resnet50", batch, [3, 4, 6, 3], true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_params_and_nodes_match_torchvision_export() {
        let g = resnet50(1);
        let params_m = g.param_count() as f64 / 1e6;
        // torchvision: 25.56 M (ours folds BN, dropping ~0.1 M of stats)
        assert!((params_m - 25.5).abs() < 0.6, "params {params_m}M");
        // folded export: 53 convs + 49 relus + 16 adds + pool/gap/flatten/fc
        assert_eq!(g.node_count(), 122);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[1, 1000]);
    }

    #[test]
    fn resnet34_params() {
        let g = resnet34(1);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 21.8).abs() < 0.5, "params {params_m}M");
    }

    #[test]
    fn resnet18_and_101_params_match_torchvision() {
        let r18 = resnet18(1).param_count() as f64 / 1e6;
        assert!((r18 - 11.7).abs() < 0.3, "r18 {r18}M");
        let r101 = resnet101(1).param_count() as f64 / 1e6;
        assert!((r101 - 44.5).abs() < 1.0, "r101 {r101}M");
    }

    #[test]
    fn batch_propagates_to_output() {
        let g = resnet50(8);
        assert_eq!(g.tensor(g.outputs[0]).shape.dims(), &[8, 1000]);
    }
}
