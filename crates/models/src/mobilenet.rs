//! MobileNetV2 (Sandler et al., 2018) at width multipliers 0.5 and 1.0.

use crate::blocks::{conv_bn, make_divisible};
use proof_ir::{DType, Graph, GraphBuilder, TensorId};

/// Inverted residual: 1×1 expand → ReLU6 → 3×3 depthwise → ReLU6 → 1×1
/// project (linear), with a skip when stride 1 and channels match.
fn inverted_residual(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    stride: u64,
    expand: u64,
) -> TensorId {
    let cin = b.channels(x);
    let hidden = cin * expand;
    let mut y = x;
    if expand != 1 {
        y = conv_bn(b, &format!("{name}.expand"), y, hidden, 1, 1, 0, 1);
        y = b.relu6(&format!("{name}.expand_relu6"), y);
    }
    y = conv_bn(b, &format!("{name}.dw"), y, hidden, 3, stride, 1, hidden);
    y = b.relu6(&format!("{name}.dw_relu6"), y);
    y = conv_bn(b, &format!("{name}.project"), y, cout, 1, 1, 0, 1);
    if stride == 1 && cin == cout {
        b.add(&format!("{name}.add"), x, y)
    } else {
        y
    }
}

/// MobileNetV2 at a width multiplier (`0.5` or `1.0` in the paper).
pub fn v2(batch: u64, width_mult: f64) -> Graph {
    let mut b = GraphBuilder::new(if width_mult == 1.0 {
        "mobilenetv2-1.0"
    } else {
        "mobilenetv2-0.5"
    });
    // (expand t, channels c, repeats n, stride s)
    let settings: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let stem_c = make_divisible(32.0 * width_mult, 8);
    let mut y = conv_bn(&mut b, "stem", x, stem_c, 3, 2, 1, 1);
    y = b.relu6("stem_relu6", y);
    let mut blk = 0;
    for (t, c, n, s) in settings {
        let cout = make_divisible(c as f64 * width_mult, 8);
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            y = inverted_residual(&mut b, &format!("block{blk}"), y, cout, stride, t);
            blk += 1;
        }
    }
    // last 1×1 conv is not narrowed below 1280
    let last = make_divisible(1280.0 * width_mult.max(1.0), 8);
    y = conv_bn(&mut b, "head_conv", y, last, 1, 1, 0, 1);
    y = b.relu6("head_relu6", y);
    y = b.global_avg_pool("gap", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("classifier", y, 1000, true);
    b.output(y);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_full_width_matches_torchvision() {
        let g = v2(1, 1.0);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 3.5).abs() < 0.15, "params {params_m}M");
        // paper Table 3: 100 nodes
        assert_eq!(g.node_count(), 100);
    }

    #[test]
    fn v2_half_width_params() {
        let g = v2(1, 0.5);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 2.0).abs() < 0.15, "params {params_m}M");
        assert_eq!(g.node_count(), 100);
    }
}
