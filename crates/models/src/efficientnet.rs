//! EfficientNet B0/B4 (Tan & Le, 2019) and EfficientNetV2-T/S (2021).
//!
//! All built at 224×224 (the paper's Table 3 GFLOP column is computed at
//! that export resolution). V2 replaces early depthwise MBConv stages with
//! Fused-MBConv — the §4.4 insight PRoof's layer-wise roofline corroborates.

use crate::blocks::{conv_bn, conv_bn_silu, make_divisible, se_block};
use proof_ir::{DType, Graph, GraphBuilder, TensorId};

/// MBConv: 1×1 expand → SiLU → k×k depthwise → SiLU → SE → 1×1 project.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    kernel: u64,
    stride: u64,
    expand: u64,
    se_from_input: bool,
) -> TensorId {
    let cin = b.channels(x);
    let hidden = cin * expand;
    let mut y = x;
    if expand != 1 {
        y = conv_bn_silu(b, &format!("{name}.expand"), y, hidden, 1, 1, 0, 1);
    }
    y = conv_bn_silu(
        b,
        &format!("{name}.dw"),
        y,
        hidden,
        kernel,
        stride,
        kernel / 2,
        hidden,
    );
    if se_from_input {
        // SE reduction is computed from the block *input* channels (ratio
        // 0.25), as in the reference implementation.
        let reduced = (cin / 4).max(1);
        y = se_block(b, &format!("{name}.se"), y, reduced);
    }
    y = conv_bn(b, &format!("{name}.project"), y, cout, 1, 1, 0, 1);
    if stride == 1 && cin == cout {
        b.add(&format!("{name}.add"), x, y)
    } else {
        y
    }
}

/// Fused-MBConv: single k×k expand conv → SiLU → 1×1 project (no SE in the
/// V2 configurations used here).
fn fused_mbconv(
    b: &mut GraphBuilder,
    name: &str,
    x: TensorId,
    cout: u64,
    stride: u64,
    expand: u64,
) -> TensorId {
    let cin = b.channels(x);
    let hidden = cin * expand;
    let mut y;
    if expand != 1 {
        y = conv_bn_silu(b, &format!("{name}.fused"), x, hidden, 3, stride, 1, 1);
        y = conv_bn(b, &format!("{name}.project"), y, cout, 1, 1, 0, 1);
    } else {
        y = conv_bn_silu(b, &format!("{name}.fused"), x, cout, 3, stride, 1, 1);
    }
    if stride == 1 && cin == cout {
        b.add(&format!("{name}.add"), x, y)
    } else {
        y
    }
}

/// Stage description for the V1 family: (expand, channels, repeats, stride,
/// kernel).
const V1_STAGES: [(u64, u64, u64, u64, u64); 7] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
];

fn round_repeats(r: u64, depth_mult: f64) -> u64 {
    (r as f64 * depth_mult).ceil() as u64
}

fn efficientnet_v1(name: &str, batch: u64, width: f64, depth: f64) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let stem = make_divisible(32.0 * width, 8);
    let mut y = conv_bn_silu(&mut b, "stem", x, stem, 3, 2, 1, 1);
    let mut blk = 0;
    for (t, c, n, s, k) in V1_STAGES {
        let cout = make_divisible(c as f64 * width, 8);
        for i in 0..round_repeats(n, depth) {
            let stride = if i == 0 { s } else { 1 };
            y = mbconv(&mut b, &format!("block{blk}"), y, cout, k, stride, t, true);
            blk += 1;
        }
    }
    let head = make_divisible(1280.0 * width, 8);
    y = conv_bn_silu(&mut b, "head_conv", y, head, 1, 1, 0, 1);
    y = b.global_avg_pool("gap", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("classifier", y, 1000, true);
    b.output(y);
    b.finish()
}

/// EfficientNet B0 (width 1.0, depth 1.0).
pub fn b0(batch: u64) -> Graph {
    efficientnet_v1("efficientnet-b0", batch, 1.0, 1.0)
}

/// EfficientNet B4 (width 1.4, depth 1.8).
pub fn b4(batch: u64) -> Graph {
    efficientnet_v1("efficientnet-b4", batch, 1.4, 1.8)
}

/// V2 stage description: (fused?, expand, channels, repeats, stride).
struct V2Stage(bool, u64, u64, u64, u64);

fn efficientnet_v2(name: &str, batch: u64, stem: u64, stages: &[V2Stage], head: u64) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("input", &[batch, 3, 224, 224], DType::F32);
    let mut y = conv_bn_silu(&mut b, "stem", x, stem, 3, 2, 1, 1);
    let mut blk = 0;
    for V2Stage(fused, t, c, n, s) in stages {
        for i in 0..*n {
            let stride = if i == 0 { *s } else { 1 };
            let bname = format!("block{blk}");
            y = if *fused {
                fused_mbconv(&mut b, &bname, y, *c, stride, *t)
            } else {
                mbconv(&mut b, &bname, y, *c, 3, stride, *t, true)
            };
            blk += 1;
        }
    }
    y = conv_bn_silu(&mut b, "head_conv", y, head, 1, 1, 0, 1);
    y = b.global_avg_pool("gap", y);
    y = b.flatten("flatten", y, 1);
    y = b.linear("classifier", y, 1000, true);
    b.output(y);
    b.finish()
}

/// EfficientNetV2-T (the `efficientnetv2_rw_t` configuration, 13.6 M params).
pub fn v2_t(batch: u64) -> Graph {
    efficientnet_v2(
        "efficientnetv2-t",
        batch,
        24,
        &[
            V2Stage(true, 1, 24, 2, 1),
            V2Stage(true, 4, 40, 4, 2),
            V2Stage(true, 4, 48, 4, 2),
            V2Stage(false, 4, 104, 6, 2),
            V2Stage(false, 6, 128, 9, 1),
            V2Stage(false, 6, 208, 14, 2),
        ],
        1024,
    )
}

/// EfficientNetV2-S (the official S configuration).
pub fn v2_s(batch: u64) -> Graph {
    efficientnet_v2(
        "efficientnetv2-s",
        batch,
        24,
        &[
            V2Stage(true, 1, 24, 2, 1),
            V2Stage(true, 4, 48, 4, 2),
            V2Stage(true, 4, 64, 4, 2),
            V2Stage(false, 4, 128, 6, 2),
            V2Stage(false, 6, 160, 9, 1),
            V2Stage(false, 6, 256, 15, 2),
        ],
        1280,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::OpKind;

    #[test]
    fn b0_params_and_nodecount() {
        let g = b0(1);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 5.3).abs() < 0.3, "params {params_m}M");
        // paper: 239 nodes; ours is close (same block structure)
        assert!(
            (g.node_count() as i64 - 239).abs() < 30,
            "{} nodes",
            g.node_count()
        );
    }

    #[test]
    fn b4_params() {
        let g = b4(1);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 19.3).abs() < 1.2, "params {params_m}M");
    }

    #[test]
    fn v2_t_params() {
        let g = v2_t(1);
        let params_m = g.param_count() as f64 / 1e6;
        assert!((params_m - 13.6).abs() < 1.0, "params {params_m}M");
    }

    #[test]
    fn v2_s_params() {
        let g = v2_s(1);
        let params_m = g.param_count() as f64 / 1e6;
        // reference impl: 21.5 M (paper lists 23.9)
        assert!((params_m - 21.5).abs() < 1.5, "params {params_m}M");
    }

    #[test]
    fn v2_has_fewer_depthwise_convs_than_v1_scaled_peer() {
        // the §4.4 story: V2 swaps depthwise+pointwise pairs for fused convs
        let dw_count = |g: &Graph| {
            g.nodes
                .iter()
                .filter(|n| n.op == OpKind::Conv && n.attrs.int_or("group", 1) > 1)
                .count()
        };
        let v1 = b4(1);
        let v2 = v2_t(1);
        assert!(
            dw_count(&v2) < dw_count(&v1),
            "{} vs {}",
            dw_count(&v2),
            dw_count(&v1)
        );
    }

    #[test]
    fn se_blocks_present_only_in_mbconv_stages() {
        let g = v2_s(1);
        let sigmoid_gates = g
            .nodes
            .iter()
            .filter(|n| n.op == OpKind::Sigmoid && n.name.ends_with(".se/gate"))
            .count();
        assert_eq!(sigmoid_gates, 6 + 9 + 15);
    }
}
