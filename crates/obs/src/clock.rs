//! The trace clock: wall time for live services, a logical per-trace
//! counter when exports must be byte-for-bit reproducible.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Timestamp source for span/event `ts` values.
///
/// `Wall` reports microseconds since the tracer's epoch. `Logical` reports a
/// per-trace monotonic counter (0, 1, 2, …) advanced on every read: two runs
/// that make the same sequence of clock reads for a trace get identical
/// timestamps, which is what keeps exported traces byte-identical under the
/// repo's seed discipline. Real durations are carried separately in
/// [`crate::SpanRecord::wall_us`].
pub enum TraceClock {
    Wall { epoch: Instant },
    Logical { counters: Mutex<HashMap<u64, u64>> },
}

impl TraceClock {
    pub fn wall() -> TraceClock {
        TraceClock::Wall {
            epoch: Instant::now(),
        }
    }

    pub fn logical() -> TraceClock {
        TraceClock::Logical {
            counters: Mutex::new(HashMap::new()),
        }
    }

    pub fn is_deterministic(&self) -> bool {
        matches!(self, TraceClock::Logical { .. })
    }

    /// Read the clock for `trace`. Logical reads post-increment the trace's
    /// counter, so consecutive reads are strictly increasing.
    pub fn now_us(&self, trace: u64) -> f64 {
        match self {
            TraceClock::Wall { epoch } => epoch.elapsed().as_secs_f64() * 1e6,
            TraceClock::Logical { counters } => {
                let mut map = counters.lock().unwrap();
                let tick = map.entry(trace).or_insert(0);
                let now = *tick;
                *tick += 1;
                now as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_counts_per_trace() {
        let c = TraceClock::logical();
        assert_eq!(c.now_us(1), 0.0);
        assert_eq!(c.now_us(1), 1.0);
        // a different trace has its own counter
        assert_eq!(c.now_us(2), 0.0);
        assert_eq!(c.now_us(1), 2.0);
        assert!(c.is_deterministic());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = TraceClock::wall();
        let a = c.now_us(0);
        let b = c.now_us(0);
        assert!(b >= a);
        assert!(!c.is_deterministic());
    }
}
