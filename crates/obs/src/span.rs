//! Span, event, and field records — the data the collectors store.

/// A typed key/value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Event severity, most severe first so `level <= threshold` means "emit".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a `PROOF_LOG` value; unknown strings disable stderr logging.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finished span. `start_us`/`end_us` come from the tracer clock (wall
/// or logical, see [`crate::clock::TraceClock`]); `wall_us` is always the
/// real elapsed wall-clock, so latency accounting stays meaningful even
/// under the deterministic logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Trace this span belongs to (0 = unassigned).
    pub trace: u64,
    /// Enclosing span id, 0 for roots.
    pub parent: u64,
    pub name: &'static str,
    pub start_us: f64,
    pub end_us: f64,
    /// Real elapsed wall-clock, µs (independent of the trace clock).
    pub wall_us: f64,
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Trace-clock duration, clamped non-negative.
    pub fn dur_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }
}

/// One leveled event (a point-in-time log line with structure).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub trace: u64,
    /// Enclosing span id, 0 if emitted outside any span.
    pub span: u64,
    pub level: Level,
    pub target: &'static str,
    pub ts_us: f64,
    pub message: String,
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        // PROOF_LOG=info shows info and more severe, hides debug
        let max = Level::parse("info").unwrap();
        assert!(Level::Warn <= max && Level::Error <= max);
        assert!(Level::Debug > max);
    }

    #[test]
    fn level_parse_accepts_known_names_only() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn span_duration_clamps_negative() {
        let s = SpanRecord {
            id: 1,
            trace: 0,
            parent: 0,
            name: "x",
            start_us: 5.0,
            end_us: 3.0,
            wall_us: 0.0,
            fields: Vec::new(),
        };
        assert_eq!(s.dur_us(), 0.0);
    }
}
