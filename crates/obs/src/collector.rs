//! Collectors — where finished spans and events go.

use crate::span::{EventRecord, SpanRecord};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pluggable sink for finished spans and events. Implementations must be
/// cheap to call from worker threads (the default ring buffer takes one
/// short mutex).
pub trait Collector: Send + Sync {
    /// False means callers may skip record construction entirely (the
    /// disabled fast path).
    fn enabled(&self) -> bool {
        true
    }
    fn record_span(&self, span: SpanRecord);
    fn record_event(&self, event: EventRecord);
}

/// The disabled collector: records nothing, reports `enabled() == false`.
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn record_span(&self, _span: SpanRecord) {}
    fn record_event(&self, _event: EventRecord) {}
}

struct RingInner {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
}

/// Lock-protected in-memory ring buffer: the default enabled collector.
/// Spans and events each keep the most recent `capacity` records; overflow
/// drops the oldest and counts into `dropped`.
pub struct RingCollector {
    capacity: usize,
    inner: Mutex<RingInner>,
    dropped: AtomicU64,
}

impl RingCollector {
    pub fn new(capacity: usize) -> RingCollector {
        RingCollector {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                spans: VecDeque::new(),
                events: VecDeque::new(),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// All buffered spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Buffered spans belonging to `trace`, oldest first.
    pub fn trace_spans(&self, trace: u64) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .unwrap()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// All buffered events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Records evicted by the capacity bound since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.spans.clear();
        inner.events.clear();
    }
}

impl Collector for RingCollector {
    fn record_span(&self, span: SpanRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() >= self.capacity {
            inner.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.spans.push_back(span);
    }

    fn record_event(&self, event: EventRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, trace: u64) -> SpanRecord {
        SpanRecord {
            id,
            trace,
            parent: 0,
            name: "s",
            start_us: 0.0,
            end_us: 1.0,
            wall_us: 1.0,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = RingCollector::new(2);
        for id in 1..=3 {
            ring.record_span(span(id, 7));
        }
        let spans = ring.spans();
        assert_eq!(spans.iter().map(|s| s.id).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn trace_spans_filters_by_trace_id() {
        let ring = RingCollector::new(8);
        ring.record_span(span(1, 10));
        ring.record_span(span(2, 11));
        ring.record_span(span(3, 10));
        let t10 = ring.trace_spans(10);
        assert_eq!(t10.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1, 3]);
        ring.clear();
        assert!(ring.spans().is_empty());
    }

    #[test]
    fn noop_collector_is_disabled() {
        assert!(!NoopCollector.enabled());
        let ring = RingCollector::new(4);
        assert!(ring.enabled());
    }
}
