//! The metrics registry: named counters, gauges, and log2 latency
//! histograms with a snapshot API (rendered by the JSON `/metrics` body and
//! the Prometheus exporter in [`crate::export`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket `i` counts samples in `[2^i, 2^(i+1))` µs,
/// bucket 0 additionally covers sub-microsecond samples. 2^39 µs ≈ 6 days,
/// far beyond any job latency.
const BUCKETS: usize = 40;

/// A log2-bucketed latency histogram (microseconds).
pub struct Histogram {
    inner: Mutex<HistInner>,
}

struct HistInner {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

/// Snapshot: only non-empty buckets, as `(le_us, count)` pairs with
/// cumulative-friendly upper bounds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
    pub mean_us: f64,
    /// `[upper_bound_us, count]` per occupied log2 bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (clamped to `0.0..=1.0`) in microseconds
    /// from the log2 buckets: the upper bound of the bucket holding the
    /// target rank, clamped to the observed maximum — exact to within one
    /// power of two. Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(le, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return le.min(self.max_us);
            }
        }
        self.max_us
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                counts: [0; BUCKETS],
                count: 0,
                sum_us: 0,
                max_us: 0,
            }),
        }
    }
}

impl Histogram {
    pub fn record_us(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        let mut h = self.inner.lock().unwrap();
        h.counts[bucket] += 1;
        h.count += 1;
        h.sum_us += us;
        h.max_us = h.max_us.max(us);
    }

    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.inner.lock().unwrap();
        HistogramSnapshot {
            count: h.count,
            sum_us: h.sum_us,
            max_us: h.max_us,
            mean_us: if h.count == 0 {
                0.0
            } else {
                h.sum_us as f64 / h.count as f64
            },
            buckets: h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (1u64 << (i + 1), c))
                .collect(),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins f64 gauge.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metric instruments. `counter`/`gauge`/`histogram` get-or-register,
/// so any holder of the registry can cheaply re-resolve an instrument by
/// name; the returned `Arc` is the hot-path handle (no lock per update).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registered>,
}

/// Point-in-time view of every registered instrument, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record_us(0); // clamped into bucket 0
        h.record_us(1);
        h.record_us(3);
        h.record_us(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max_us, 1000);
        // 0 and 1 land in [1,2), 3 in [2,4), 1000 in [512,1024)
        assert_eq!(s.buckets, vec![(2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn histogram_bucket_counts_sum_to_count() {
        let h = Histogram::default();
        for us in [1, 5, 5, 80, 4096, 4097, 1 << 50] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), s.count);
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = Histogram::default();
        // 98 fast samples in [1,2), one at ~1ms, one at ~1s
        for _ in 0..98 {
            h.record_us(1);
        }
        h.record_us(1000);
        h.record_us(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile_us(0.5), 2); // p50 in the first bucket
        assert_eq!(s.quantile_us(0.99), 1024); // p99 reaches the 1ms bucket
        assert_eq!(s.quantile_us(1.0), 1_000_000); // p100 clamps to max
        assert_eq!(s.quantile_us(0.0), 2); // rank floors at 1
        assert_eq!(HistogramSnapshot::default().quantile_us(0.5), 0);
    }

    #[test]
    fn registry_reresolves_instruments_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("requests").inc();
        reg.counter("requests").add(2);
        reg.gauge("depth").set(3.5);
        reg.histogram("lat_us").record_us(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("requests".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("depth".to_string(), 3.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = MetricsRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.counter(name).inc();
        }
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
