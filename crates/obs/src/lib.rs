//! # proof-obs — structured tracing and metrics for the PRoof stack
//!
//! A zero-dependency observability facade shared by every crate in the
//! workspace:
//!
//! - **spans** — hierarchical, with u64 ids, parent links, and typed
//!   key/value fields ([`SpanRecord`]), opened through a process-global
//!   [`Tracer`] and recorded via the pluggable [`Collector`] trait. The
//!   default global tracer is disabled (no-op collector); installing the
//!   shared ring tracer turns collection on everywhere at once.
//! - **metrics** — a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s,
//!   and log2 latency [`Histogram`]s with a snapshot API.
//! - **exporters** — Chrome-trace JSON ([`export::chrome_trace_json`]) and
//!   Prometheus text exposition ([`export::prometheus_text`]).
//! - **events** — leveled log lines ([`Level`]) that reach stderr when the
//!   `PROOF_LOG` environment variable admits the level, and the collector
//!   when one is enabled.
//! - **flight recorder** — a bounded ring of recent structured operational
//!   events ([`FlightRecorder`]) that daemons expose at `GET /debug/events`
//!   and dump to stderr when a panic is caught.
//! - **fault injection** — a deterministic, seed-scopeable [`FaultPlan`]
//!   (`PROOF_FAULT` env or [`fault::install`]) that can make any named
//!   site panic, stall, or fail transiently, so robustness machinery
//!   (retries, deadlines, panic isolation) is testable bit-for-bit.
//!
//! The shared ring tracer uses the *logical* clock ([`clock::TraceClock`]):
//! per-trace timestamps are a deterministic counter, so an exported trace is
//! byte-for-bit reproducible for a given request sequence — matching the
//! repo's seeded-simulation discipline. Real wall durations are kept
//! alongside in [`SpanRecord::wall_us`] for latency accounting.

pub mod clock;
pub mod collector;
pub mod export;
pub mod fault;
pub mod flight;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use collector::{Collector, NoopCollector, RingCollector};
pub use export::TraceEvent;
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use span::{EventRecord, FieldValue, Level, SpanRecord};
pub use tracer::{new_trace_id, stderr_level, SpanGuard, Tracer};

use std::sync::{Arc, OnceLock, RwLock};

/// Capacity of the shared ring collector (spans and events each).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

fn global_cell() -> &'static RwLock<Arc<Tracer>> {
    static CELL: OnceLock<RwLock<Arc<Tracer>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Arc::new(Tracer::disabled())))
}

/// The process-global tracer. Disabled (no-op collector, wall clock) until
/// something installs a real one.
pub fn global() -> Arc<Tracer> {
    global_cell().read().unwrap().clone()
}

/// Replace the process-global tracer. Prefer [`shared_ring_tracer`], which
/// installs once and is safe under concurrent tests.
pub fn install(tracer: Arc<Tracer>) {
    *global_cell().write().unwrap() = tracer;
}

/// Get (installing globally on first call) the shared ring-buffer tracer:
/// a [`RingCollector`] of [`DEFAULT_RING_CAPACITY`] records on the
/// deterministic logical clock. Idempotent — every caller in the process
/// gets the same pair, so concurrent users never swap each other's
/// collector out from underneath.
pub fn shared_ring_tracer() -> (Arc<Tracer>, Arc<RingCollector>) {
    static SHARED: OnceLock<(Arc<Tracer>, Arc<RingCollector>)> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ring = Arc::new(RingCollector::new(DEFAULT_RING_CAPACITY));
            let tracer = Arc::new(Tracer::new(
                Arc::clone(&ring) as Arc<dyn Collector>,
                clock::TraceClock::logical(),
            ));
            install(Arc::clone(&tracer));
            (tracer, ring)
        })
        .clone()
}

/// Open a span on the global tracer, inheriting trace + parent from the
/// innermost open span on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    global().span(name)
}

/// Open a span on the global tracer under an explicit trace id.
pub fn span_in(trace: u64, name: &'static str) -> SpanGuard {
    global().span_in(trace, name)
}

/// Emit a leveled event through the global tracer.
pub fn event(
    level: Level,
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    global().event(level, target, message, fields);
}

/// Would an event at `level` go anywhere right now? Use to skip building
/// event messages on the disabled path.
pub fn event_enabled(level: Level) -> bool {
    tracer::event_interest(&global(), level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_ring_tracer_is_idempotent_and_installs_globally() {
        let (t1, r1) = shared_ring_tracer();
        let (t2, r2) = shared_ring_tracer();
        assert!(Arc::ptr_eq(&t1, &t2) && Arc::ptr_eq(&r1, &r2));
        assert!(t1.is_deterministic());
        // the global facade now records through the same ring
        let trace = new_trace_id();
        let mut s = span_in(trace, "facade");
        s.field("k", 1u64);
        drop(s);
        event(Level::Info, "obs_test", "hello", Vec::new());
        assert_eq!(ring_spans_named(&r1, trace, "facade"), 1);
        assert!(r1.events().iter().any(|e| e.message == "hello"));
        assert!(event_enabled(Level::Debug));
    }

    fn ring_spans_named(ring: &RingCollector, trace: u64, name: &str) -> usize {
        ring.trace_spans(trace)
            .iter()
            .filter(|s| s.name == name)
            .count()
    }
}
