//! Flight recorder: a bounded ring of recent structured operational events
//! (dispatches, reschedules, health transitions, cache-tier hits) kept by
//! long-running daemons. Unlike spans — which describe planned, traced
//! work — the recorder captures the last N things that *happened*, so a
//! crash or a stuck run can be reconstructed post-hoc: servers expose it at
//! `GET /debug/events` and dump it to stderr when a panic is caught.

use crate::export::{arg_json, json_escape};
use crate::span::FieldValue;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity: enough for the recent history of a busy daemon
/// without unbounded growth.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// One recorded operational event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (1-based, never reused), so consumers can
    /// tell how much history the ring has shed.
    pub seq: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Event kind, e.g. `dispatch`, `reschedule`, `node_health`, `panic`.
    pub kind: &'static str,
    pub message: String,
    pub fields: Vec<(&'static str, FieldValue)>,
}

struct FlightInner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

/// A thread-safe bounded ring of [`FlightEvent`]s; recording past capacity
/// evicts the oldest entry and bumps the dropped count.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner {
                next_seq: 1,
                dropped: 0,
                events: VecDeque::new(),
            }),
        }
    }

    /// Record an event now. Lock poisoning is ignored — the recorder is a
    /// best-effort debugging aid and must never take a daemon down.
    pub fn record(
        &self,
        kind: &'static str,
        message: impl Into<String>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let mut inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(FlightEvent {
            seq,
            unix_ms,
            kind,
            message: message.into(),
            fields,
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.events.iter().cloned().collect()
    }

    /// How many events the ring has evicted so far.
    pub fn dropped(&self) -> u64 {
        match self.inner.lock() {
            Ok(inner) => inner.dropped,
            Err(poisoned) => poisoned.into_inner().dropped,
        }
    }

    /// Render the ring as a JSON document:
    /// `{"dropped":N,"events":[{seq,unix_ms,kind,message,fields},...]}`.
    pub fn to_json(&self) -> String {
        let (dropped, events) = {
            let inner = match self.inner.lock() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            };
            (
                inner.dropped,
                inner.events.iter().cloned().collect::<Vec<_>>(),
            )
        };
        let mut out = format!("{{\"dropped\":{dropped},\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"unix_ms\":{},\"kind\":\"{}\",\"message\":\"{}\",\"fields\":{{",
                e.seq,
                e.unix_ms,
                json_escape(e.kind),
                json_escape(&e.message)
            );
            for (j, (key, value)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(key), arg_json(value));
            }
            out.push_str("}}");
        }
        out.push_str("]}\n");
        out
    }

    /// Dump the retained events to stderr, oldest first — called from panic
    /// paths so the history leading up to the failure survives in the log.
    pub fn dump_stderr(&self, reason: &str) {
        let events = self.snapshot();
        eprintln!(
            "[proof flight] dumping {} recent event(s) ({reason}; {} older dropped)",
            events.len(),
            self.dropped()
        );
        for e in events {
            let mut line = format!("[proof flight #{} {}] {}", e.seq, e.kind, e.message);
            for (key, value) in &e.fields {
                let _ = write!(line, " {key}={value:?}");
            }
            eprintln!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_latest_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(
                "tick",
                format!("event {i}"),
                vec![("i", FieldValue::U64(i))],
            );
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 4);
        assert_eq!(events[1].seq, 5);
        assert_eq!(events[1].message, "event 4");
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn json_export_is_valid_and_escaped() {
        let rec = FlightRecorder::new(8);
        rec.record(
            "dispatch",
            "shard \"0\"\nto node",
            vec![
                ("node", FieldValue::U64(1)),
                ("addr", FieldValue::Str("127.0.0.1:80".to_string())),
            ],
        );
        let v: serde_json::Value = serde_json::from_str(&rec.to_json()).expect("valid JSON");
        assert_eq!(v["dropped"].as_u64(), Some(0));
        let events = v["events"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["kind"], "dispatch");
        assert_eq!(events[0]["message"], "shard \"0\"\nto node");
        assert_eq!(events[0]["fields"]["node"].as_u64(), Some(1));
        assert_eq!(events[0]["fields"]["addr"], "127.0.0.1:80");
    }

    #[test]
    fn empty_recorder_exports_empty_document() {
        let rec = FlightRecorder::new(4);
        let v: serde_json::Value = serde_json::from_str(&rec.to_json()).unwrap();
        assert_eq!(v["events"].as_array().unwrap().len(), 0);
        rec.dump_stderr("test"); // must not panic on empty
    }
}
