//! Exporters: Chrome-trace (`chrome://tracing` / Perfetto) JSON for spans
//! and timeline events, and Prometheus text exposition for the registry.

use crate::metrics::RegistrySnapshot;
use crate::span::{FieldValue, SpanRecord};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Escape a string for a JSON literal: backslash, quote, the common control
/// escapes, and every remaining char below 0x20 as `\u00XX`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One complete (`ph: "X"`) Chrome-trace slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    pub cat: &'static str,
    pub pid: u32,
    pub tid: u32,
    pub ts_us: f64,
    pub dur_us: f64,
    pub args: Vec<(String, FieldValue)>,
}

pub(crate) fn arg_json(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(x) if x.is_finite() => format!("{x:.3}"),
        FieldValue::F64(_) => "null".to_string(),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Render events as a Chrome-trace JSON document (`traceEvents` +
/// `displayTimeUnit`), sorted by (ts, pid, tid) so rows interleave on one
/// time axis. Timestamps and durations are fixed at 3 decimals, which both
/// bounds the file size and makes the output stable for byte comparison.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then(a.pid.cmp(&b.pid))
            .then(a.tid.cmp(&b.tid))
    });
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
            json_escape(&e.name),
            json_escape(e.cat),
            e.pid,
            e.tid,
            e.ts_us,
            e.dur_us
        );
        for (j, (key, value)) in e.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(key), arg_json(value));
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Convert finished spans to Chrome-trace slices on one (pid, tid) row.
///
/// Span ids are renumbered 1..N by start order into the `span`/`parent`
/// args: the process-global id allocator is shared by everything in the
/// process, so raw ids would differ from run to run and break byte-identical
/// export. Parents outside the given slice map to 0.
pub fn spans_to_events(
    spans: &[SpanRecord],
    pid: u32,
    tid: u32,
    cat: &'static str,
) -> Vec<TraceEvent> {
    let mut order: Vec<&SpanRecord> = spans.iter().collect();
    order.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.id.cmp(&b.id)));
    let local: HashMap<u64, u64> = order
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i as u64 + 1))
        .collect();
    order
        .iter()
        .map(|s| {
            let mut args = vec![
                ("span".to_string(), FieldValue::U64(local[&s.id])),
                (
                    "parent".to_string(),
                    FieldValue::U64(local.get(&s.parent).copied().unwrap_or(0)),
                ),
            ];
            args.extend(s.fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
            TraceEvent {
                name: s.name.to_string(),
                cat,
                pid,
                tid,
                ts_us: s.start_us,
                dur_us: s.dur_us(),
                args,
            }
        })
        .collect()
}

/// Clamp a name to the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); anything else becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label *value*: backslash, double quote, and line
/// feed, per the text exposition format (version 0.0.4).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a registry snapshot as Prometheus text exposition (version
/// 0.0.4). Every series gets a `# HELP`/`# TYPE` header pair. Histograms
/// emit cumulative `_bucket{le=...}` series capped by `le="+Inf"`, plus
/// `_sum` and `_count`. `prefix` namespaces every metric (e.g.
/// `proof_serve_`).
pub fn prometheus_text(snap: &RegistrySnapshot, prefix: &str) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize_metric_name(&format!("{prefix}{name}"));
        let _ = writeln!(out, "# HELP {n} Monotonically increasing counter.");
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_metric_name(&format!("{prefix}{name}"));
        let _ = writeln!(out, "# HELP {n} Last-value gauge.");
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_metric_name(&format!("{prefix}{name}"));
        let _ = writeln!(
            out,
            "# HELP {n} Log2-bucketed latency histogram (microseconds)."
        );
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(le, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum_us);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Merge several scraped Prometheus expositions into one document, tagging
/// every sample with a `node` label naming its source (escaped per the
/// exposition format). Families are grouped (one `# HELP`/`# TYPE` header
/// each, first source wins on wording) and emitted name-sorted; within a
/// family, samples keep source order, so federation over a fixed node list
/// is deterministic for deterministic inputs.
pub fn federate_prometheus(sources: &[(String, String)]) -> String {
    #[derive(Default)]
    struct Family {
        help: Option<String>,
        kind: Option<String>,
        samples: Vec<String>,
    }
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (node, text) in sources {
        let node_esc = escape_label_value(node);
        // the family the most recent # TYPE/# HELP header opened; histogram
        // `_bucket`/`_sum`/`_count` samples attach to it
        let mut current = String::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                if let Some((name, help)) = rest.split_once(' ') {
                    current = name.to_string();
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.help.is_none() {
                        fam.help = Some(help.to_string());
                    }
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.split_once(' ') {
                    current = name.to_string();
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.kind.is_none() {
                        fam.kind = Some(kind.to_string());
                    }
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let brace = line.find('{');
            let space = line.find(' ');
            let name_end = match (brace, space) {
                (Some(b), Some(s)) => b.min(s),
                (Some(b), None) => b,
                (None, Some(s)) => s,
                (None, None) => continue,
            };
            let name = &line[..name_end];
            let rewritten = match brace.filter(|&b| b == name_end) {
                Some(b) => {
                    let inner = &line[b + 1..];
                    if inner.starts_with('}') {
                        format!("{name}{{node=\"{node_esc}\"{inner}")
                    } else {
                        format!("{name}{{node=\"{node_esc}\",{inner}")
                    }
                }
                None => format!("{name}{{node=\"{node_esc}\"}}{}", &line[name_end..]),
            };
            let family_name = if !current.is_empty()
                && (name == current
                    || name
                        .strip_prefix(current.as_str())
                        .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count")))
            {
                current.clone()
            } else {
                name.to_string()
            };
            families
                .entry(family_name)
                .or_default()
                .samples
                .push(rewritten);
        }
    }
    let mut out = String::new();
    for (name, fam) in &families {
        if fam.samples.is_empty() {
            continue;
        }
        if let Some(help) = &fam.help {
            let _ = writeln!(out, "# HELP {name} {help}");
        }
        if let Some(kind) = &fam.kind {
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        for sample in &fam.samples {
            let _ = writeln!(out, "{sample}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsRegistry};

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(json_escape("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(json_escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(json_escape("plain µs"), "plain µs");
    }

    fn event(name: &str, ts: f64, tid: u32) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test",
            pid: 1,
            tid,
            ts_us: ts,
            dur_us: 1.0,
            args: vec![
                ("n".to_string(), FieldValue::U64(7)),
                ("label".to_string(), FieldValue::Str("x\"y".to_string())),
            ],
        }
    }

    #[test]
    fn chrome_trace_json_is_valid_and_time_sorted() {
        let trace = chrome_trace_json(&[event("b", 5.0, 2), event("a", 1.0, 1)]);
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"], "a");
        assert_eq!(events[1]["args"]["n"].as_u64(), Some(7));
        assert_eq!(events[1]["args"]["label"], "x\"y");
        assert_eq!(v["displayTimeUnit"], "ms");
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let v: serde_json::Value = serde_json::from_str(&chrome_trace_json(&[])).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 0);
    }

    fn span(id: u64, parent: u64, start: f64) -> SpanRecord {
        SpanRecord {
            id,
            trace: 9,
            parent,
            name: "s",
            start_us: start,
            end_us: start + 2.0,
            wall_us: 2.0,
            fields: vec![("job", FieldValue::U64(1))],
        }
    }

    #[test]
    fn spans_renumber_ids_deterministically_by_start_order() {
        // ids 50/51 vs 500/501 must export identically
        let a = spans_to_events(&[span(51, 50, 1.0), span(50, 0, 0.0)], 1, 0, "pipeline");
        let b = spans_to_events(&[span(501, 500, 1.0), span(500, 0, 0.0)], 1, 0, "pipeline");
        assert_eq!(a, b);
        assert_eq!(a[0].args[0], ("span".to_string(), FieldValue::U64(1)));
        assert_eq!(a[1].args[1], ("parent".to_string(), FieldValue::U64(1)));
        // a parent outside the slice maps to 0
        let orphan = spans_to_events(&[span(3, 999, 0.0)], 1, 0, "pipeline");
        assert_eq!(
            orphan[0].args[1],
            ("parent".to_string(), FieldValue::U64(0))
        );
    }

    #[test]
    fn prometheus_text_emits_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs_total").add(3);
        reg.gauge("queue_depth").set(2.0);
        let h: std::sync::Arc<Histogram> = reg.histogram("exec_us");
        for us in [1, 3, 3, 900] {
            h.record_us(us);
        }
        let text = prometheus_text(&reg.snapshot(), "proof_");
        assert!(text.contains("# TYPE proof_jobs_total counter\nproof_jobs_total 3\n"));
        assert!(text.contains("# TYPE proof_queue_depth gauge\nproof_queue_depth 2\n"));
        // buckets are cumulative and capped by +Inf == count
        assert!(text.contains("proof_exec_us_bucket{le=\"2\"} 1"));
        assert!(text.contains("proof_exec_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("proof_exec_us_bucket{le=\"1024\"} 4"));
        assert!(text.contains("proof_exec_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("proof_exec_us_sum 907"));
        assert!(text.contains("proof_exec_us_count 4"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("bad name-µ"), "bad_name__");
        assert_eq!(sanitize_metric_name("9lead"), "_lead");
    }

    #[test]
    fn label_values_escape_quotes_newlines_backslashes() {
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("127.0.0.1:8080"), "127.0.0.1:8080");
    }

    /// Strip a sample line down to its family name: drop labels/value, then
    /// histogram suffixes.
    fn family_of(sample: &str) -> String {
        let series = sample
            .split(['{', ' '])
            .next()
            .unwrap_or_default()
            .to_string();
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = series.strip_suffix(suffix) {
                return stem.to_string();
            }
        }
        series
    }

    #[test]
    fn every_exported_series_has_help_and_type() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs_total").add(1);
        reg.gauge("queue_depth").set(2.0);
        reg.histogram("exec_us").record_us(5);
        let text = prometheus_text(&reg.snapshot(), "proof_");
        let mut helped = std::collections::HashSet::new();
        let mut typed = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
            } else if !line.is_empty() {
                let family = family_of(line);
                assert!(helped.contains(&family), "no # HELP before sample {line:?}");
                assert!(typed.contains(&family), "no # TYPE before sample {line:?}");
            }
        }
        assert_eq!(helped.len(), 3);
        assert_eq!(typed.len(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us");
        for us in [1, 2, 3, 50, 5000, 1 << 20] {
            h.record_us(us);
        }
        let text = prometheus_text(&reg.snapshot(), "proof_");
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("proof_lat_us_bucket{le=\"") {
                let count: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(
                    count >= last,
                    "bucket counts must be non-decreasing: {line}"
                );
                last = count;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines >= 2, "expected several bucket lines");
        assert_eq!(last, 6, "+Inf bucket must equal the total count");
    }

    #[test]
    fn federation_injects_node_labels_and_groups_families() {
        let a = "# HELP proof_serve_jobs_total Monotonically increasing counter.\n\
                 # TYPE proof_serve_jobs_total counter\n\
                 proof_serve_jobs_total 3\n\
                 # HELP proof_serve_exec_us Log2-bucketed latency histogram (microseconds).\n\
                 # TYPE proof_serve_exec_us histogram\n\
                 proof_serve_exec_us_bucket{le=\"2\"} 1\n\
                 proof_serve_exec_us_bucket{le=\"+Inf\"} 1\n\
                 proof_serve_exec_us_sum 1\n\
                 proof_serve_exec_us_count 1\n";
        let b = "# TYPE proof_serve_jobs_total counter\nproof_serve_jobs_total 5\n";
        let merged = federate_prometheus(&[
            ("127.0.0.1:1\"\n".to_string(), a.to_string()),
            ("127.0.0.1:2".to_string(), b.to_string()),
        ]);
        // one header pair per family, samples from both nodes grouped under it
        assert_eq!(
            merged
                .matches("# TYPE proof_serve_jobs_total counter")
                .count(),
            1
        );
        assert!(merged.contains("proof_serve_jobs_total{node=\"127.0.0.1:1\\\"\\n\"} 3"));
        assert!(merged.contains("proof_serve_jobs_total{node=\"127.0.0.1:2\"} 5"));
        // existing labels keep their place after the injected node label
        assert!(
            merged.contains("proof_serve_exec_us_bucket{node=\"127.0.0.1:1\\\"\\n\",le=\"2\"} 1")
        );
        // histogram sub-series stay grouped with their family header
        let type_pos = merged.find("# TYPE proof_serve_exec_us histogram").unwrap();
        let sum_pos = merged.find("proof_serve_exec_us_sum").unwrap();
        assert!(type_pos < sum_pos);
        // family order is name-sorted: exec_us before jobs_total
        assert!(sum_pos < merged.find("proof_serve_jobs_total{").unwrap());
    }
}
