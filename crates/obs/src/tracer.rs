//! The tracer: opens spans, threads parent/trace context through a
//! thread-local stack, stamps records with the trace clock, and hands
//! finished records to the collector.

use crate::clock::TraceClock;
use crate::collector::{Collector, NoopCollector};
use crate::span::{EventRecord, FieldValue, Level, SpanRecord};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique trace id (never 0).
pub fn new_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// (trace, span id) of the enclosing open spans on this thread,
    /// innermost last.
    static CONTEXT: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A collector + clock pair. Spans opened through the same tracer share its
/// clock, which is what puts pipeline spans and kernel timelines on one
/// comparable time base.
pub struct Tracer {
    collector: Arc<dyn Collector>,
    clock: TraceClock,
}

impl Tracer {
    pub fn new(collector: Arc<dyn Collector>, clock: TraceClock) -> Tracer {
        Tracer { collector, clock }
    }

    /// The default tracer: no-op collector, wall clock.
    pub fn disabled() -> Tracer {
        Tracer::new(Arc::new(NoopCollector), TraceClock::wall())
    }

    pub fn collector_enabled(&self) -> bool {
        self.collector.enabled()
    }

    pub fn is_deterministic(&self) -> bool {
        self.clock.is_deterministic()
    }

    /// Open a span inheriting trace and parent from the innermost open span
    /// on this thread (trace 0, no parent, if there is none).
    pub fn span(self: &Arc<Tracer>, name: &'static str) -> SpanGuard {
        let (trace, parent) = CONTEXT.with(|c| c.borrow().last().copied().unwrap_or((0, 0)));
        self.open(trace, parent, name)
    }

    /// Open a root-or-child span under an explicit trace id: the parent is
    /// the innermost open span of the *same* trace, if any.
    pub fn span_in(self: &Arc<Tracer>, trace: u64, name: &'static str) -> SpanGuard {
        let parent = CONTEXT.with(|c| {
            c.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == trace)
                .map(|(_, id)| *id)
                .unwrap_or(0)
        });
        self.open(trace, parent, name)
    }

    fn open(self: &Arc<Tracer>, trace: u64, parent: u64, name: &'static str) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        CONTEXT.with(|c| c.borrow_mut().push((trace, id)));
        SpanGuard {
            tracer: Arc::clone(self),
            wall: Instant::now(),
            record: Some(SpanRecord {
                id,
                trace,
                parent,
                name,
                start_us: self.clock.now_us(trace),
                end_us: 0.0,
                wall_us: 0.0,
                fields: Vec::new(),
            }),
        }
    }

    /// Emit a leveled event. It reaches stderr when `PROOF_LOG` admits the
    /// level, and the collector when one is enabled; otherwise it is
    /// dropped without a clock read.
    pub fn event(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let to_stderr = stderr_allows(level);
        let to_collector = self.collector.enabled();
        if !to_stderr && !to_collector {
            return;
        }
        let (trace, span) = CONTEXT.with(|c| c.borrow().last().copied().unwrap_or((0, 0)));
        let record = EventRecord {
            trace,
            span,
            level,
            target,
            ts_us: self.clock.now_us(trace),
            message: message.into(),
            fields,
        };
        if to_stderr {
            let mut line = format!("[proof {level} {target}] {}", record.message);
            for (key, value) in &record.fields {
                line.push_str(&format!(" {key}={value:?}"));
            }
            eprintln!("{line}");
        }
        if to_collector {
            self.collector.record_event(record);
        }
    }
}

/// The stderr threshold from `PROOF_LOG`, re-read on every call so tests
/// and long-lived daemons pick up changes. Level names are matched
/// case-insensitively; an unrecognized name is rejected (stderr logging
/// stays off) with a one-time warning rather than silently defaulting.
pub fn stderr_level() -> Option<Level> {
    let raw = std::env::var("PROOF_LOG").ok()?;
    let (level, unknown) = classify_proof_log(&raw);
    if unknown {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "[proof warn obs] unknown PROOF_LOG level {raw:?}; expected \
                 error|warn|info|debug (case-insensitive) — stderr logging stays off"
            );
        });
    }
    level
}

/// Classify a raw `PROOF_LOG` value: the parsed level (if any) and whether
/// the value is a non-empty string that failed to parse (i.e. worth a
/// warning — an empty/whitespace value just means "unset").
fn classify_proof_log(raw: &str) -> (Option<Level>, bool) {
    match Level::parse(raw) {
        Some(level) => (Some(level), false),
        None => (None, !raw.trim().is_empty()),
    }
}

fn stderr_allows(level: Level) -> bool {
    stderr_level().is_some_and(|max| level <= max)
}

/// Would an event at `level` go anywhere? Callers use this to skip building
/// messages on the disabled path.
pub fn event_interest(tracer: &Tracer, level: Level) -> bool {
    stderr_allows(level) || tracer.collector_enabled()
}

/// An open span. Dropping (or calling [`SpanGuard::finish`]) closes it:
/// the end timestamp and real wall duration are stamped and the record goes
/// to the collector (if enabled). The record is built even when collection
/// is disabled so `finish()` can always return real wall timings.
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    wall: Instant,
    record: Option<SpanRecord>,
}

impl SpanGuard {
    pub fn id(&self) -> u64 {
        self.record.as_ref().map(|r| r.id).unwrap_or(0)
    }

    pub fn trace(&self) -> u64 {
        self.record.as_ref().map(|r| r.trace).unwrap_or(0)
    }

    /// Attach a typed field to the span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(record) = &mut self.record {
            record.fields.push((key, value.into()));
        }
    }

    /// Close the span now and return its finished record.
    pub fn finish(mut self) -> SpanRecord {
        self.close().expect("span closed exactly once")
    }

    fn close(&mut self) -> Option<SpanRecord> {
        let mut record = self.record.take()?;
        record.end_us = self.tracer.clock.now_us(record.trace);
        record.wall_us = self.wall.elapsed().as_secs_f64() * 1e6;
        CONTEXT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == record.id) {
                stack.remove(pos);
            }
        });
        if self.tracer.collector.enabled() {
            self.tracer.collector.record_span(record.clone());
        }
        Some(record)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RingCollector;

    fn ring_tracer() -> (Arc<Tracer>, Arc<RingCollector>) {
        let ring = Arc::new(RingCollector::new(64));
        let tracer = Arc::new(Tracer::new(
            Arc::clone(&ring) as Arc<dyn Collector>,
            TraceClock::logical(),
        ));
        (tracer, ring)
    }

    #[test]
    fn spans_nest_and_record_parent_links() {
        let (tracer, ring) = ring_tracer();
        let trace = new_trace_id();
        let root = tracer.span_in(trace, "root");
        let root_id = root.id();
        // `span` inherits trace and parent from the innermost open span
        let inherited = tracer.span("inherited");
        assert_eq!(inherited.trace(), trace);
        let inherited_rec = inherited.finish();
        assert_eq!(inherited_rec.parent, root_id);
        // `span_in` under the same trace also parents on the open root
        let inner = tracer.span_in(trace, "child");
        let inner_rec = inner.finish();
        assert_eq!(inner_rec.parent, root_id);
        let root_rec = root.finish();
        assert_eq!(root_rec.parent, 0);
        // logical clock: start strictly before end, per trace
        assert!(root_rec.start_us < root_rec.end_us);
        assert_eq!(ring.trace_spans(trace).len(), 3);
    }

    #[test]
    fn span_fields_and_finish_on_disabled_tracer() {
        let tracer = Arc::new(Tracer::disabled());
        let mut span = tracer.span("work");
        span.field("answer", 42u64);
        let rec = span.finish();
        assert_eq!(rec.fields, vec![("answer", FieldValue::U64(42))]);
        assert!(rec.wall_us >= 0.0);
        assert!(!tracer.collector_enabled());
    }

    #[test]
    fn proof_log_values_classify_case_insensitively_and_flag_unknowns() {
        assert_eq!(classify_proof_log("DEBUG"), (Some(Level::Debug), false));
        assert_eq!(classify_proof_log("  Warn "), (Some(Level::Warn), false));
        // unknown non-empty values are rejected and flagged for the warning
        assert_eq!(classify_proof_log("verbose"), (None, true));
        assert_eq!(classify_proof_log("2"), (None, true));
        // empty/whitespace means "unset": no level, no warning
        assert_eq!(classify_proof_log(""), (None, false));
        assert_eq!(classify_proof_log("   "), (None, false));
    }

    #[test]
    fn events_capture_enclosing_span_context() {
        let (tracer, ring) = ring_tracer();
        let trace = new_trace_id();
        let span = tracer.span_in(trace, "root");
        tracer.event(
            Level::Info,
            "test",
            "inside",
            vec![("n", FieldValue::U64(1))],
        );
        let span_id = span.id();
        drop(span);
        tracer.event(Level::Info, "test", "outside", Vec::new());
        let events = ring.events();
        let inside = events.iter().find(|e| e.message == "inside").unwrap();
        assert_eq!((inside.trace, inside.span), (trace, span_id));
        let outside = events.iter().find(|e| e.message == "outside").unwrap();
        assert_eq!(outside.span, 0);
    }
}
