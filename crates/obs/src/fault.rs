//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names *sites* (pipeline-stage names like `"compile"`)
//! and attaches one fault to each: panic, stall for a fixed duration, or
//! fail transiently the first N times. Code under test calls [`fire`] at
//! its cancellation points; the active plan decides what happens. Plans are
//! fully deterministic — no randomness, explicit trigger counts — and each
//! entry can be scoped to a single job seed (`@seed`), so a test or CI
//! smoke can poison exactly one job on a live server while every other job
//! runs clean.
//!
//! The active plan comes from the `PROOF_FAULT` environment variable at
//! first use (empty plan when unset or malformed), or programmatically via
//! [`install`] / [`clear`] in tests. Grammar, entries separated by `;`:
//!
//! ```text
//! PROOF_FAULT="<site>:panic[@seed]"          panic when the site fires
//! PROOF_FAULT="<site>:stall:<ms>[@seed]"     sleep <ms> before the site runs
//! PROOF_FAULT="<site>:fail:<n>[@seed]"       first <n> firings fail transiently
//! ```
//!
//! e.g. `PROOF_FAULT="compile:fail:2;map:panic@7"` makes the first two
//! compile attempts (of any job) fail transiently and panics the map stage
//! of jobs whose seed is 7.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// What happens when a planned fault fires.
#[derive(Debug)]
pub enum FaultKind {
    /// Panic with an "injected fault" message (tests panic isolation).
    Panic,
    /// Sleep for the given duration (tests deadline overruns).
    Stall { ms: u64 },
    /// Fail transiently; `remaining` counts down so the site recovers
    /// after N failures (tests retry-with-backoff).
    Transient { remaining: AtomicU32 },
}

/// One planned fault at one named site, optionally scoped to a job seed.
#[derive(Debug)]
pub struct FaultSpec {
    pub site: String,
    /// `None` fires for every seed; `Some(s)` only for jobs seeded `s`.
    pub seed: Option<u64>,
    pub kind: FaultKind,
}

impl FaultSpec {
    fn matches(&self, site: &str, seed: u64) -> bool {
        self.site == site && self.seed.is_none_or(|s| s == seed)
    }
}

/// A parsed set of planned faults. The empty plan never fires.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parse the `PROOF_FAULT` grammar (see module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in text.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (spec, seed) = match entry.split_once('@') {
                Some((s, seed)) => {
                    let seed = seed
                        .parse()
                        .map_err(|_| format!("bad seed in fault entry '{entry}'"))?;
                    (s, Some(seed))
                }
                None => (entry, None),
            };
            let mut parts = spec.split(':');
            let site = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("missing site in fault entry '{entry}'"))?
                .to_string();
            let kind = match (parts.next(), parts.next(), parts.next()) {
                (Some("panic"), None, _) => FaultKind::Panic,
                (Some("stall"), Some(ms), None) => FaultKind::Stall {
                    ms: ms
                        .parse()
                        .map_err(|_| format!("bad stall duration in '{entry}'"))?,
                },
                (Some("fail"), Some(n), None) => FaultKind::Transient {
                    remaining: AtomicU32::new(
                        n.parse()
                            .map_err(|_| format!("bad failure count in '{entry}'"))?,
                    ),
                },
                _ => {
                    return Err(format!(
                        "unknown fault kind in '{entry}' (panic | stall:<ms> | fail:<n>)"
                    ))
                }
            };
            faults.push(FaultSpec { site, seed, kind });
        }
        Ok(FaultPlan { faults })
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Fire every planned fault matching `(site, seed)`, in plan order:
    /// panics panic, stalls sleep in place, and armed transients return the
    /// injected error message.
    pub fn fire(&self, site: &str, seed: u64) -> Result<(), String> {
        for f in self.faults.iter().filter(|f| f.matches(site, seed)) {
            match &f.kind {
                FaultKind::Panic => panic!("injected fault: panic at stage '{site}'"),
                FaultKind::Stall { ms } => std::thread::sleep(Duration::from_millis(*ms)),
                FaultKind::Transient { remaining } => {
                    // decrement-if-positive: exactly N firings fail
                    let mut n = remaining.load(Ordering::Relaxed);
                    while n > 0 {
                        match remaining.compare_exchange(
                            n,
                            n - 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                return Err(format!(
                                    "injected fault: transient failure at stage '{site}'"
                                ))
                            }
                            Err(cur) => n = cur,
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn active_cell() -> &'static RwLock<Arc<FaultPlan>> {
    static CELL: OnceLock<RwLock<Arc<FaultPlan>>> = OnceLock::new();
    CELL.get_or_init(|| {
        let plan = match std::env::var("PROOF_FAULT") {
            Ok(text) => FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("PROOF_FAULT ignored: {e}");
                FaultPlan::default()
            }),
            Err(_) => FaultPlan::default(),
        };
        RwLock::new(Arc::new(plan))
    })
}

/// Replace the active plan (tests). `PROOF_FAULT` seeds the initial plan.
pub fn install(plan: FaultPlan) {
    *active_cell().write().unwrap() = Arc::new(plan);
}

/// Deactivate fault injection (installs the empty plan).
pub fn clear() {
    install(FaultPlan::default());
}

/// Fire the active plan at `(site, seed)` — the single hook instrumented
/// code calls. No-op (and cheap) when the plan is empty.
pub fn fire(site: &str, seed: u64) -> Result<(), String> {
    let plan = Arc::clone(&active_cell().read().unwrap());
    if plan.is_empty() {
        return Ok(());
    }
    plan.fire(site, seed)
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. This is the
/// deterministic "randomness" behind retry-backoff jitter — same inputs,
/// same jitter, byte-reproducible traces.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_kinds_and_seed_scope() {
        let plan = FaultPlan::parse("compile:fail:2; map:panic@7 ;metrics:stall:5").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].site, "compile");
        assert!(matches!(plan.faults[0].kind, FaultKind::Transient { .. }));
        assert_eq!(plan.faults[1].seed, Some(7));
        assert!(matches!(plan.faults[2].kind, FaultKind::Stall { ms: 5 }));
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "compile",
            "compile:explode",
            "compile:stall:fast",
            "compile:fail:-1",
            ":panic",
            "map:panic@x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn transient_fails_exactly_n_times() {
        let plan = FaultPlan::parse("compile:fail:2").unwrap();
        assert!(plan.fire("compile", 0).is_err());
        assert!(plan.fire("compile", 1).is_err()); // unscoped: any seed
        assert!(plan.fire("compile", 0).is_ok()); // recovered
        assert!(plan.fire("map", 0).is_ok()); // other sites untouched
    }

    #[test]
    fn seed_scoped_fault_spares_other_seeds() {
        let plan = FaultPlan::parse("map:fail:10@7").unwrap();
        assert!(plan.fire("map", 8).is_ok());
        assert!(plan.fire("map", 7).is_err());
    }

    #[test]
    fn panic_fault_panics_with_injected_message() {
        let plan = FaultPlan::parse("assemble:panic").unwrap();
        let err = std::panic::catch_unwind(|| plan.fire("assemble", 0)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        assert_ne!(mix64(0), 0);
    }
}
