//! proof-store: the unified tiered artifact store.
//!
//! One cache subsystem for the whole stack. A [`TieredStore`] composes
//! three [`CacheTier`]s behind a single-flight lookup:
//!
//! ```text
//! lookup(key):  memory LRU ──miss──▶ disk ──miss──▶ remote peers ──miss──▶ build
//!                   ▲                  ▲                 │                   │
//!                   └──── fill ────────┴───── fill ──────┘    fulfill: disk + publish + memory
//! ```
//!
//! - [`ArtifactKey`] — validated canonical addressing shared by every
//!   tier (hash digests, stage-prefix keys), safe as filename and URL
//!   path segment alike.
//! - [`MemoryLru`] — byte- or entry-weighed LRU with O(log n)
//!   sequence-number recency.
//! - [`DiskTier`] — atomic `<key>.json` files; corrupt/truncated files
//!   are detected, unlinked, and rebuilt, never served.
//! - [`RemoteTier`] — other nodes' caches behind an injected
//!   [`PeerClient`] transport; every peer failure degrades to a local
//!   build.
//! - [`KeyedFlight`] — reusable single-flight claims (also drives serve's
//!   stage-prefix cache).
//!
//! The crate deliberately has no HTTP code: proof-serve provides the
//! `PeerClient` over its own `/cache/<key>` surface, keeping the
//! dependency DAG `store ← serve ← fleet`.
//!
//! Cache identity: keys are content addresses of the *resolved* job spec.
//! Every spec field including `seed` participates; `timeout_ms` is
//! excluded (execution metadata, not artifact identity) — see
//! `proof_serve::AnalysisJob::cache_key`.

mod disk;
mod flight;
mod key;
mod memory;
mod remote;
mod store;
mod tier;

pub use disk::DiskTier;
pub use flight::{Claim, FlightGuard, KeyedFlight};
pub use key::{ArtifactKey, MAX_KEY_LEN};
pub use memory::{MemoryLru, MemoryTier};
pub use remote::{PeerClient, RemoteCounters, RemoteTier};
pub use store::{BuildGuard, HitTier, Lookup, StoreConfig, StoreStats, TieredStore};
pub use tier::{validate_artifact, CacheTier, TierError};
