//! The tier abstraction every cache layer implements.
//!
//! A tier is a fallible key→artifact map. Artifacts are JSON documents
//! carried as `String`s — the store validates bytes coming back from the
//! untrusted tiers (disk survives truncation, peers can be mid-crash), so a
//! tier hit is never served without parsing cleanly first.

use crate::key::ArtifactKey;

/// Why a tier could not answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// The tier itself is unreachable or failing (I/O error, peer down).
    Unavailable(String),
    /// The tier returned bytes that do not parse as a JSON artifact.
    Corrupt(String),
    /// The tier is alive but shedding load (peer answered 429/503).
    Busy,
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Unavailable(e) => write!(f, "tier unavailable: {e}"),
            TierError::Corrupt(e) => write!(f, "corrupt artifact: {e}"),
            TierError::Busy => write!(f, "tier busy"),
        }
    }
}

impl std::error::Error for TierError {}

/// One layer of the cache hierarchy. `get` answers `Ok(None)` for a clean
/// miss; errors are reserved for the tier malfunctioning, so the store can
/// count them and keep walking outward instead of failing the lookup.
pub trait CacheTier: Send + Sync {
    /// Short stable name for metrics and logs (`"memory"`, `"disk"`,
    /// `"remote"`).
    fn name(&self) -> &'static str;
    /// Fetch an artifact. `Ok(None)` is a miss, not an error.
    fn get(&self, key: &ArtifactKey) -> Result<Option<String>, TierError>;
    /// Store an artifact (used for inward fills and build completion).
    fn put(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError>;
}

/// Every artifact in the store is a JSON document; anything that does not
/// parse is treated as tier damage, not data.
pub fn validate_artifact(artifact: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(artifact).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_validation_is_json_well_formedness() {
        assert!(validate_artifact(r#"{"latency_ms": 1.5}"#));
        assert!(validate_artifact("[1,2,3]"));
        assert!(!validate_artifact(r#"{"latency_ms": 1."#));
        assert!(!validate_artifact(""));
        assert!(!validate_artifact("not json"));
    }
}
