//! Disk tier: one `<key>.json` file per artifact, written atomically.
//!
//! Reads are defensive: the process can die mid-write (the tmp+rename
//! protocol makes that unlikely, but an operator can also hand the tier a
//! directory of files from anywhere), so every loaded artifact is parsed
//! before being served. A truncated or corrupt file is reported as
//! [`TierError::Corrupt`] — the store counts it, deletes the damaged file,
//! and rebuilds, instead of propagating garbage to a client.

use crate::key::ArtifactKey;
use crate::tier::{validate_artifact, CacheTier, TierError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Open (creating if needed) the backing directory.
    pub fn new(dir: &Path) -> io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }
}

impl CacheTier for DiskTier {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn get(&self, key: &ArtifactKey) -> Result<Option<String>, TierError> {
        let path = self.path_for(key);
        let raw = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TierError::Unavailable(e.to_string())),
        };
        if !validate_artifact(&raw) {
            // never serve the damaged file again; rebuilding overwrites it
            let _ = fs::remove_file(&path);
            return Err(TierError::Corrupt(format!(
                "{} does not parse as JSON",
                path.display()
            )));
        }
        Ok(Some(raw))
    }

    fn put(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError> {
        let path = self.path_for(key);
        let tmp = self.dir.join(format!("{key}.json.tmp"));
        fs::write(&tmp, artifact)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| TierError::Unavailable(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proof-store-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_artifacts() {
        let dir = tmpdir("rt");
        let tier = DiskTier::new(&dir).unwrap();
        let key = ArtifactKey::new("cafebabe").unwrap();
        assert_eq!(tier.get(&key), Ok(None));
        tier.put(&key, r#"{"ok":true}"#).unwrap();
        assert_eq!(tier.get(&key), Ok(Some(r#"{"ok":true}"#.to_string())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_corrupt_and_removed() {
        let dir = tmpdir("trunc");
        let tier = DiskTier::new(&dir).unwrap();
        let key = ArtifactKey::new("deadbeef").unwrap();
        // simulate a partial write: valid prefix, chopped off mid-object
        fs::write(dir.join("deadbeef.json"), r#"{"cells":[{"latency"#).unwrap();
        assert!(matches!(tier.get(&key), Err(TierError::Corrupt(_))));
        // the damaged file is gone, so the next probe is a clean miss
        assert_eq!(tier.get(&key), Ok(None));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_cannot_escape_the_directory() {
        // belt and braces: ArtifactKey already rejects '/', so every path
        // the tier builds stays inside its directory
        assert!(ArtifactKey::new("../outside").is_err());
    }
}
