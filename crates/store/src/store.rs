//! The tiered store: memory → disk → remote → build, single-flighted.
//!
//! One lookup protocol serves every consumer:
//!
//! 1. probe memory (lock-free of the flight set, so warm hits never queue);
//! 2. claim the key in [`KeyedFlight`] — losers block until the winner
//!    resolves, then re-check memory;
//! 3. the claim winner probes disk, then the remote peers, filling every
//!    hit *inward* (remote → disk + memory, disk → memory) so the next
//!    lookup short-circuits at the top;
//! 4. a miss everywhere returns a [`BuildGuard`]: the caller builds the
//!    artifact once and [`BuildGuard::fulfill`] writes it through all
//!    tiers (disk, best-effort peer replication, memory) before waking the
//!    coalesced waiters.
//!
//! Tier damage never fails a lookup: corrupt disk files and broken peers
//! are counted, skipped, and rebuilt over.

use crate::disk::DiskTier;
use crate::flight::{Claim, FlightGuard, KeyedFlight};
use crate::key::ArtifactKey;
use crate::memory::MemoryTier;
use crate::remote::{PeerClient, RemoteCounters, RemoteTier};
use crate::tier::{validate_artifact, CacheTier, TierError};
use proof_obs::{Counter, MetricsRegistry};
use serde::Serialize;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Store shape: how much memory, and whether a disk tier backs it.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Byte budget for the in-memory LRU tier.
    pub memory_budget_bytes: usize,
    /// Directory for the disk tier; `None` runs memory + remote only.
    pub disk_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_budget_bytes: 64 << 20,
            disk_dir: None,
        }
    }
}

/// Which tier answered a hit (also the label recorded on job records and
/// metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    Memory,
    Disk,
    Remote,
}

impl HitTier {
    pub fn as_str(&self) -> &'static str {
        match self {
            HitTier::Memory => "memory",
            HitTier::Disk => "disk",
            HitTier::Remote => "remote",
        }
    }
}

/// The two outcomes of [`TieredStore::lookup_or_begin`].
pub enum Lookup<'a> {
    /// Cached artifact plus the tier that served it.
    Hit(Arc<String>, HitTier),
    /// Nothing cached anywhere; the caller owns the (single-flighted)
    /// build.
    Miss(BuildGuard<'a>),
}

/// Live counter handles; registered once per store on the shared registry
/// so serve's Prometheus exposition picks them up with zero glue.
struct StoreCounters {
    memory_hits: Arc<Counter>,
    disk_hits: Arc<Counter>,
    remote_hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    fills: Arc<Counter>,
    publishes: Arc<Counter>,
    remote_errors: Arc<Counter>,
    remote_busy: Arc<Counter>,
    corrupt: Arc<Counter>,
}

impl StoreCounters {
    fn register(registry: &MetricsRegistry) -> StoreCounters {
        StoreCounters {
            memory_hits: registry.counter("cache_memory_hits_total"),
            disk_hits: registry.counter("cache_disk_hits_total"),
            remote_hits: registry.counter("cache_remote_hits_total"),
            misses: registry.counter("cache_misses_total"),
            evictions: registry.counter("cache_evictions_total"),
            fills: registry.counter("cache_fills_total"),
            publishes: registry.counter("cache_publishes_total"),
            remote_errors: registry.counter("cache_remote_errors_total"),
            remote_busy: registry.counter("cache_remote_busy_total"),
            corrupt: registry.counter("cache_corrupt_total"),
        }
    }
}

/// Point-in-time store statistics (serialized into `GET /metrics`).
/// `hits` aggregates all tiers; `disk_hits` keeps its historical meaning
/// for dashboards that predate the tier split.
#[derive(Debug, Clone, Serialize)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub memory_hits: u64,
    pub disk_hits: u64,
    pub remote_hits: u64,
    pub remote_errors: u64,
    pub remote_busy: u64,
    pub corrupt: u64,
    pub fills: u64,
    pub publishes: u64,
    pub entries: usize,
    pub bytes: usize,
    pub budget_bytes: usize,
    pub peers: usize,
}

/// The composed hierarchy. Memory is always present; disk and peers are
/// optional and can be attached at runtime (peers arrive by fleet
/// advertisement).
pub struct TieredStore {
    flight: KeyedFlight,
    memory: MemoryTier,
    disk: Option<DiskTier>,
    remote: RemoteTier,
    counters: StoreCounters,
}

impl TieredStore {
    /// Build the store and register its counters on `registry`.
    pub fn new(config: StoreConfig, registry: &MetricsRegistry) -> io::Result<TieredStore> {
        let counters = StoreCounters::register(registry);
        let memory = MemoryTier::new(config.memory_budget_bytes, Arc::clone(&counters.evictions));
        let disk = match &config.disk_dir {
            Some(dir) => Some(DiskTier::new(dir)?),
            None => None,
        };
        let remote = RemoteTier::new(RemoteCounters {
            errors: Arc::clone(&counters.remote_errors),
            busy: Arc::clone(&counters.remote_busy),
            corrupt: Arc::clone(&counters.corrupt),
        });
        Ok(TieredStore {
            flight: KeyedFlight::new(),
            memory,
            disk,
            remote,
            counters,
        })
    }

    /// Attach a peer's cache endpoint to the remote tier.
    pub fn add_peer(&self, peer: Arc<dyn PeerClient>) {
        self.remote.add_peer(peer);
    }

    pub fn peer_count(&self) -> usize {
        self.remote.peer_count()
    }

    pub fn peer_endpoints(&self) -> Vec<String> {
        self.remote.peer_endpoints()
    }

    /// The full lookup protocol: walk the tiers outward, fill inward,
    /// coalesce concurrent builders. Exactly one caller per key ever gets
    /// [`Lookup::Miss`] at a time.
    pub fn lookup_or_begin(&self, key: &ArtifactKey) -> Lookup<'_> {
        loop {
            if let Some(artifact) = self.memory.get_arc(key) {
                self.counters.memory_hits.inc();
                return Lookup::Hit(artifact, HitTier::Memory);
            }
            let guard = match self.flight.claim(key.as_str()) {
                Claim::Claimed(g) => g,
                // the in-flight holder resolved; memory may now have it —
                // loop to re-check (and re-claim if the holder abandoned)
                Claim::Released => continue,
            };
            // double-check under the claim: the previous holder may have
            // filled memory between our miss and our claim
            if let Some(artifact) = self.memory.get_arc(key) {
                self.counters.memory_hits.inc();
                guard.complete();
                return Lookup::Hit(artifact, HitTier::Memory);
            }
            if let Some(artifact) = self.probe_disk(key) {
                self.counters.disk_hits.inc();
                self.counters.fills.inc();
                let artifact = Arc::new(artifact);
                self.memory.insert_arc(key, Arc::clone(&artifact));
                guard.complete();
                return Lookup::Hit(artifact, HitTier::Disk);
            }
            // RemoteTier::get degrades internally; Ok(None) and Err are
            // both misses
            if let Ok(Some(artifact)) = self.remote.get(key) {
                self.counters.remote_hits.inc();
                self.counters.fills.inc();
                if let Some(disk) = &self.disk {
                    let _ = disk.put(key, &artifact);
                }
                let artifact = Arc::new(artifact);
                self.memory.insert_arc(key, Arc::clone(&artifact));
                guard.complete();
                return Lookup::Hit(artifact, HitTier::Remote);
            }
            self.counters.misses.inc();
            return Lookup::Miss(BuildGuard {
                store: self,
                key: key.clone(),
                guard: Some(guard),
            });
        }
    }

    /// Local-tiers-only fetch (memory, then disk, filling memory). This is
    /// what a node serves to *peers* over `GET /cache/<key>` — it must
    /// never recurse into the remote tier, or two peers missing the same
    /// key would chase each other.
    pub fn get_local(&self, key: &ArtifactKey) -> Option<Arc<String>> {
        if let Some(artifact) = self.memory.get_arc(key) {
            self.counters.memory_hits.inc();
            return Some(artifact);
        }
        let artifact = Arc::new(self.probe_disk(key)?);
        self.counters.disk_hits.inc();
        self.counters.fills.inc();
        self.memory.insert_arc(key, Arc::clone(&artifact));
        Some(artifact)
    }

    /// Accept an externally built artifact (peer replication via
    /// `PUT /cache/<key>`). Rejects non-JSON bytes so a confused peer
    /// cannot poison the local tiers.
    pub fn insert_local(&self, key: &ArtifactKey, artifact: String) -> Result<usize, TierError> {
        if !validate_artifact(&artifact) {
            self.counters.corrupt.inc();
            return Err(TierError::Corrupt(
                "artifact does not parse as JSON".to_string(),
            ));
        }
        let bytes = artifact.len();
        if let Some(disk) = &self.disk {
            let _ = disk.put(key, &artifact);
        }
        self.memory.insert_arc(key, Arc::new(artifact));
        self.counters.fills.inc();
        Ok(bytes)
    }

    fn probe_disk(&self, key: &ArtifactKey) -> Option<String> {
        match self.disk.as_ref()?.get(key) {
            Ok(found) => found,
            Err(TierError::Corrupt(_)) => {
                // the tier already unlinked the damaged file; count and
                // rebuild
                self.counters.corrupt.inc();
                None
            }
            Err(_) => None,
        }
    }

    pub fn stats(&self) -> StoreStats {
        let memory_hits = self.counters.memory_hits.get();
        let disk_hits = self.counters.disk_hits.get();
        let remote_hits = self.counters.remote_hits.get();
        StoreStats {
            hits: memory_hits + disk_hits + remote_hits,
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
            memory_hits,
            disk_hits,
            remote_hits,
            remote_errors: self.counters.remote_errors.get(),
            remote_busy: self.counters.remote_busy.get(),
            corrupt: self.counters.corrupt.get(),
            fills: self.counters.fills.get(),
            publishes: self.counters.publishes.get(),
            entries: self.memory.entries(),
            bytes: self.memory.bytes(),
            budget_bytes: self.memory.budget_bytes(),
            peers: self.remote.peer_count(),
        }
    }
}

/// Exclusive right to build one artifact. Dropping without
/// [`BuildGuard::fulfill`] (builder failed or panicked) releases the
/// coalesced waiters to retry.
pub struct BuildGuard<'a> {
    store: &'a TieredStore,
    key: ArtifactKey,
    guard: Option<FlightGuard<'a>>,
}

impl BuildGuard<'_> {
    pub fn key(&self) -> &ArtifactKey {
        &self.key
    }

    /// Write the built artifact through every tier — disk first (so a
    /// crash after this point still persists it), then best-effort peer
    /// replication, then memory — and wake the waiters.
    pub fn fulfill(mut self, artifact: String) -> Arc<String> {
        if let Some(disk) = &self.store.disk {
            let _ = disk.put(&self.key, &artifact);
        }
        let accepted = self.store.remote.publish(&self.key, &artifact);
        self.store.counters.publishes.add(accepted as u64);
        let artifact = Arc::new(artifact);
        self.store
            .memory
            .insert_arc(&self.key, Arc::clone(&artifact));
        if let Some(g) = self.guard.take() {
            g.complete();
        }
        artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(s: &str) -> ArtifactKey {
        ArtifactKey::new(s).unwrap()
    }

    fn mem_store() -> TieredStore {
        TieredStore::new(
            StoreConfig {
                memory_budget_bytes: 1 << 20,
                disk_dir: None,
            },
            &MetricsRegistry::new(),
        )
        .unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proof-store-tiered-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hit_after_miss() {
        let store = mem_store();
        let k = key("k1");
        match store.lookup_or_begin(&k) {
            Lookup::Miss(guard) => {
                guard.fulfill(r#"{"v":1}"#.to_string());
            }
            Lookup::Hit(..) => panic!("cold store cannot hit"),
        }
        match store.lookup_or_begin(&k) {
            Lookup::Hit(a, tier) => {
                assert_eq!(a.as_str(), r#"{"v":1}"#);
                assert_eq!(tier, HitTier::Memory);
            }
            Lookup::Miss(_) => panic!("must hit after fulfill"),
        }
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_under_tight_budget() {
        let store = TieredStore::new(
            StoreConfig {
                memory_budget_bytes: 20,
                disk_dir: None,
            },
            &MetricsRegistry::new(),
        )
        .unwrap();
        for k in ["a", "b"] {
            match store.lookup_or_begin(&key(k)) {
                Lookup::Miss(g) => {
                    g.fulfill(format!(r#"{{"k":"{k}"}}"#));
                }
                Lookup::Hit(..) => panic!(),
            }
        }
        // touch "a" so "b" is the LRU victim
        assert!(matches!(store.lookup_or_begin(&key("a")), Lookup::Hit(..)));
        match store.lookup_or_begin(&key("c")) {
            Lookup::Miss(g) => {
                g.fulfill(r#"{"k":"c"}"#.to_string());
            }
            Lookup::Hit(..) => panic!(),
        }
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(matches!(store.lookup_or_begin(&key("b")), Lookup::Miss(_)));
    }

    #[test]
    fn eviction_falls_back_to_disk_tier() {
        let dir = tmpdir("fallback");
        let store = TieredStore::new(
            StoreConfig {
                memory_budget_bytes: 12,
                disk_dir: Some(dir.clone()),
            },
            &MetricsRegistry::new(),
        )
        .unwrap();
        match store.lookup_or_begin(&key("a")) {
            Lookup::Miss(g) => {
                g.fulfill(r#"{"k":"a"}"#.to_string());
            }
            Lookup::Hit(..) => panic!(),
        }
        match store.lookup_or_begin(&key("b")) {
            Lookup::Miss(g) => {
                g.fulfill(r#"{"k":"b"}"#.to_string());
            }
            Lookup::Hit(..) => panic!(),
        }
        // "a" was evicted from memory but persists on disk
        match store.lookup_or_begin(&key("a")) {
            Lookup::Hit(a, tier) => {
                assert_eq!(a.as_str(), r#"{"k":"a"}"#);
                assert_eq!(tier, HitTier::Disk);
            }
            Lookup::Miss(_) => panic!("disk tier must answer"),
        }
        let s = store.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 2);
        // and the disk hit filled memory back in
        assert!(matches!(
            store.lookup_or_begin(&key("a")),
            Lookup::Hit(_, HitTier::Memory)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_artifact_is_a_miss_and_rebuilds() {
        let dir = tmpdir("corrupt");
        let store = TieredStore::new(
            StoreConfig {
                memory_budget_bytes: 1 << 20,
                disk_dir: Some(dir.clone()),
            },
            &MetricsRegistry::new(),
        )
        .unwrap();
        // plant a truncated artifact where the disk tier will find it
        std::fs::write(dir.join("feedc0de.json"), r#"{"cells":[{"lat"#).unwrap();
        match store.lookup_or_begin(&key("feedc0de")) {
            Lookup::Miss(g) => {
                g.fulfill(r#"{"cells":[]}"#.to_string());
            }
            Lookup::Hit(a, _) => panic!("served corrupt bytes: {a}"),
        }
        let s = store.stats();
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.misses, 1);
        // rebuilt artifact replaced the corrupt file
        assert_eq!(
            std::fs::read_to_string(dir.join("feedc0de.json")).unwrap(),
            r#"{"cells":[]}"#
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_lookups_build_once() {
        let store = Arc::new(mem_store());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || match store.lookup_or_begin(&key("shared")) {
                    Lookup::Hit(a, _) => a.as_str().to_string(),
                    Lookup::Miss(g) => {
                        builds.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        g.fulfill(r#"{"built":true}"#.to_string())
                            .as_str()
                            .to_string()
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), r#"{"built":true}"#);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight");
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn abandoned_build_releases_waiters() {
        let store = Arc::new(mem_store());
        let k = key("doomed");
        let guard = match store.lookup_or_begin(&k) {
            Lookup::Miss(g) => g,
            Lookup::Hit(..) => panic!(),
        };
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                matches!(store.lookup_or_begin(&key("doomed")), Lookup::Miss(_))
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // simulated builder death
        assert!(
            waiter.join().unwrap(),
            "waiter must get its own build claim"
        );
    }

    #[test]
    fn remote_tier_fills_disk_and_memory_inward() {
        use crate::remote::PeerClient;
        struct OneKeyPeer;
        impl PeerClient for OneKeyPeer {
            fn endpoint(&self) -> String {
                "peer:1".to_string()
            }
            fn fetch(&self, key: &ArtifactKey) -> Result<Option<String>, TierError> {
                Ok((key.as_str() == "warm").then(|| r#"{"from":"peer"}"#.to_string()))
            }
            fn publish(&self, _: &ArtifactKey, _: &str) -> Result<(), TierError> {
                Ok(())
            }
        }
        let dir = tmpdir("inward");
        let store = TieredStore::new(
            StoreConfig {
                memory_budget_bytes: 1 << 20,
                disk_dir: Some(dir.clone()),
            },
            &MetricsRegistry::new(),
        )
        .unwrap();
        store.add_peer(Arc::new(OneKeyPeer));
        match store.lookup_or_begin(&key("warm")) {
            Lookup::Hit(a, tier) => {
                assert_eq!(tier, HitTier::Remote);
                assert_eq!(a.as_str(), r#"{"from":"peer"}"#);
            }
            Lookup::Miss(_) => panic!("remote tier must answer"),
        }
        // filled inward: disk file exists, next lookup hits memory
        assert!(dir.join("warm.json").exists());
        assert!(matches!(
            store.lookup_or_begin(&key("warm")),
            Lookup::Hit(_, HitTier::Memory)
        ));
        assert_eq!(store.stats().remote_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_local_never_consults_peers() {
        use crate::remote::PeerClient;
        struct PanicPeer;
        impl PeerClient for PanicPeer {
            fn endpoint(&self) -> String {
                "peer:2".to_string()
            }
            fn fetch(&self, _: &ArtifactKey) -> Result<Option<String>, TierError> {
                panic!("get_local must not reach the remote tier");
            }
            fn publish(&self, _: &ArtifactKey, _: &str) -> Result<(), TierError> {
                Ok(())
            }
        }
        let store = mem_store();
        store.add_peer(Arc::new(PanicPeer));
        assert!(store.get_local(&key("absent")).is_none());
        store
            .insert_local(&key("present"), r#"{"v":9}"#.to_string())
            .unwrap();
        assert_eq!(
            store.get_local(&key("present")).unwrap().as_str(),
            r#"{"v":9}"#
        );
    }

    #[test]
    fn insert_local_rejects_non_json() {
        let store = mem_store();
        assert!(matches!(
            store.insert_local(&key("bad"), "not json".to_string()),
            Err(TierError::Corrupt(_))
        ));
        assert!(store.get_local(&key("bad")).is_none());
        assert_eq!(store.stats().corrupt, 1);
    }

    #[test]
    fn fulfill_publishes_to_peers() {
        use crate::remote::PeerClient;
        use std::sync::Mutex;
        struct RecordingPeer(Mutex<Vec<(String, String)>>);
        impl PeerClient for RecordingPeer {
            fn endpoint(&self) -> String {
                "peer:3".to_string()
            }
            fn fetch(&self, _: &ArtifactKey) -> Result<Option<String>, TierError> {
                Ok(None)
            }
            fn publish(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError> {
                self.0
                    .lock()
                    .unwrap()
                    .push((key.to_string(), artifact.to_string()));
                Ok(())
            }
        }
        let store = mem_store();
        let peer = Arc::new(RecordingPeer(Mutex::new(Vec::new())));
        store.add_peer(Arc::clone(&peer) as Arc<dyn PeerClient>);
        match store.lookup_or_begin(&key("pub")) {
            Lookup::Miss(g) => {
                g.fulfill(r#"{"v":7}"#.to_string());
            }
            Lookup::Hit(..) => panic!(),
        }
        let published = peer.0.lock().unwrap();
        assert_eq!(
            published.as_slice(),
            &[("pub".to_string(), r#"{"v":7}"#.to_string())]
        );
        assert_eq!(store.stats().publishes, 1);
    }
}
