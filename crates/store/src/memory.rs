//! In-memory LRU with sequence-number recency.
//!
//! The old serve cache kept a `VecDeque` recency list and linearly scanned
//! it on every hit to move the key to the back — O(n) per touch. Here each
//! entry carries a monotonically increasing sequence number and a
//! `BTreeMap<seq, key>` orders the keys; a touch is remove-old-seq +
//! insert-new-seq, O(log n), and eviction pops the smallest sequence.
//!
//! The map is generic over the cached value so the artifact store
//! (`MemoryLru<String>`, weighed in bytes) and the stage-prefix cache
//! (weighed per entry) share one implementation — and one recency fix.

use crate::key::ArtifactKey;
use crate::tier::{CacheTier, TierError};
use proof_obs::Counter;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

struct Entry<V> {
    value: Arc<V>,
    seq: u64,
    weight: usize,
}

struct Inner<V> {
    entries: HashMap<String, Entry<V>>,
    /// Recency order: smallest sequence = least recently used.
    recency: BTreeMap<u64, String>,
    next_seq: u64,
    weight: usize,
}

/// A weight-budgeted LRU. `weigher` maps a value to its cost against
/// `budget` (bytes for artifacts, 1-per-entry for capacity-counted caches).
pub struct MemoryLru<V> {
    inner: Mutex<Inner<V>>,
    budget: usize,
    weigher: fn(&V) -> usize,
    evictions: Arc<Counter>,
}

impl<V> MemoryLru<V> {
    pub fn new(budget: usize, weigher: fn(&V) -> usize, evictions: Arc<Counter>) -> MemoryLru<V> {
        MemoryLru {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                recency: BTreeMap::new(),
                next_seq: 0,
                weight: 0,
            }),
            budget,
            weigher,
            evictions,
        }
    }

    /// Fetch and touch: a hit moves the key to most-recently-used in
    /// O(log n).
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let next_seq = inner.next_seq;
        inner.next_seq += 1;
        let entry = inner.entries.get_mut(key)?;
        let old_seq = entry.seq;
        entry.seq = next_seq;
        let value = Arc::clone(&entry.value);
        inner.recency.remove(&old_seq);
        inner.recency.insert(next_seq, key.to_string());
        Some(value)
    }

    /// Insert (or replace) and evict least-recently-used entries until the
    /// weight budget holds. The just-inserted key is never evicted, even
    /// when it alone exceeds the budget — a too-big artifact still serves
    /// the request that built it.
    pub fn insert(&self, key: &str, value: Arc<V>) {
        let weight = (self.weigher)(&value);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if let Some(old) = inner
            .entries
            .insert(key.to_string(), Entry { value, seq, weight })
        {
            inner.recency.remove(&old.seq);
            inner.weight -= old.weight;
        }
        inner.recency.insert(seq, key.to_string());
        inner.weight += weight;
        while inner.weight > self.budget && inner.entries.len() > 1 {
            let (&victim_seq, _) = inner
                .recency
                .iter()
                .next()
                .expect("recency tracks every entry");
            if victim_seq == seq {
                // the newest entry is the only other candidate logic could
                // pick; never evict what we just inserted
                break;
            }
            let victim_key = inner
                .recency
                .remove(&victim_seq)
                .expect("victim seq present");
            let victim = inner
                .entries
                .remove(&victim_key)
                .expect("recency and entries agree");
            inner.weight -= victim.weight;
            self.evictions.inc();
        }
    }

    pub fn entries(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Current total weight (bytes for the artifact tier).
    pub fn weight(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).weight
    }

    pub fn budget(&self) -> usize {
        self.budget
    }
}

/// The memory tier of the artifact store: byte-weighed `MemoryLru<String>`.
pub struct MemoryTier {
    lru: MemoryLru<String>,
}

impl MemoryTier {
    pub fn new(budget_bytes: usize, evictions: Arc<Counter>) -> MemoryTier {
        MemoryTier {
            lru: MemoryLru::new(budget_bytes, |v: &String| v.len(), evictions),
        }
    }

    /// Shared-ownership fetch (avoids re-cloning artifact bytes per hit).
    pub fn get_arc(&self, key: &ArtifactKey) -> Option<Arc<String>> {
        self.lru.get(key.as_str())
    }

    pub fn insert_arc(&self, key: &ArtifactKey, value: Arc<String>) {
        self.lru.insert(key.as_str(), value);
    }

    pub fn entries(&self) -> usize {
        self.lru.entries()
    }

    pub fn bytes(&self) -> usize {
        self.lru.weight()
    }

    pub fn budget_bytes(&self) -> usize {
        self.lru.budget()
    }
}

impl CacheTier for MemoryTier {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&self, key: &ArtifactKey) -> Result<Option<String>, TierError> {
        Ok(self.get_arc(key).map(|v| (*v).clone()))
    }

    fn put(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError> {
        self.insert_arc(key, Arc::new(artifact.to_string()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(budget: usize) -> (MemoryLru<String>, Arc<Counter>) {
        let evictions = Arc::new(Counter::default());
        (
            MemoryLru::new(budget, |v: &String| v.len(), Arc::clone(&evictions)),
            evictions,
        )
    }

    #[test]
    fn touch_protects_recently_used_entries() {
        // budget 20, three 8-byte entries: inserting "c" overflows; "a" was
        // touched after "b", so "b" is the LRU victim
        let (lru, evictions) = lru(20);
        lru.insert("a", Arc::new("x".repeat(8)));
        lru.insert("b", Arc::new("y".repeat(8)));
        assert!(lru.get("a").is_some());
        lru.insert("c", Arc::new("z".repeat(8)));
        assert_eq!(evictions.get(), 1);
        assert_eq!(lru.entries(), 2);
        assert!(lru.get("b").is_none(), "b was least recently used");
        assert!(lru.get("a").is_some());
        assert!(lru.get("c").is_some());
    }

    #[test]
    fn oversized_insert_survives_alone() {
        let (lru, _) = lru(4);
        lru.insert("big", Arc::new("x".repeat(100)));
        assert!(
            lru.get("big").is_some(),
            "just-inserted key is never evicted"
        );
        assert_eq!(lru.entries(), 1);
        // the next insert evicts the oversized one
        lru.insert("small", Arc::new("y".repeat(2)));
        assert!(lru.get("big").is_none());
        assert!(lru.get("small").is_some());
    }

    #[test]
    fn replace_updates_weight_without_double_counting() {
        let (lru, evictions) = lru(100);
        lru.insert("k", Arc::new("x".repeat(10)));
        assert_eq!(lru.weight(), 10);
        lru.insert("k", Arc::new("y".repeat(30)));
        assert_eq!(lru.weight(), 30);
        assert_eq!(lru.entries(), 1);
        assert_eq!(evictions.get(), 0);
    }

    #[test]
    fn recency_order_matches_access_history_at_scale() {
        // deep history: every entry touched in a scrambled order; evictions
        // must pop exactly the access order, proving the seq index tracks
        // touches (the old VecDeque scan got this right but at O(n) a hit)
        let (lru, _) = lru(usize::MAX);
        for i in 0..64 {
            lru.insert(&format!("k{i}"), Arc::new("v".to_string()));
        }
        // touch in reverse so k63 becomes LRU and k0 MRU
        for i in (0..64).rev() {
            assert!(lru.get(&format!("k{i}")).is_some());
        }
        let evictions = Arc::new(Counter::default());
        let tight: MemoryLru<String> =
            MemoryLru::new(2, |v: &String| v.len(), Arc::clone(&evictions));
        tight.insert("a", Arc::new("1".to_string()));
        tight.insert("b", Arc::new("2".to_string()));
        assert!(tight.get("a").is_some()); // a now MRU
        tight.insert("c", Arc::new("3".to_string()));
        assert!(tight.get("b").is_none(), "b evicted as LRU");
        assert!(tight.get("a").is_some());
    }

    #[test]
    fn memory_tier_round_trips_through_trait() {
        let tier = MemoryTier::new(1 << 20, Arc::new(Counter::default()));
        let key = ArtifactKey::new("abc123").unwrap();
        assert_eq!(CacheTier::get(&tier, &key), Ok(None));
        CacheTier::put(&tier, &key, r#"{"v":1}"#).unwrap();
        assert_eq!(
            CacheTier::get(&tier, &key),
            Ok(Some(r#"{"v":1}"#.to_string()))
        );
        assert_eq!(tier.name(), "memory");
        assert_eq!(tier.bytes(), 7);
    }
}
