//! Single-flight build coordination, decoupled from any particular cache.
//!
//! `KeyedFlight` answers one question: "am I the builder for this key, or
//! is someone else already on it?" The store uses it to coalesce artifact
//! builds; the stage-prefix cache reuses the same guard to close its old
//! double-build race. Crucially the flight set holds *no* artifact state —
//! after a wake-up the caller re-checks its own cache, so a builder that
//! dies (guard dropped without `complete`) just releases the waiters to
//! race for the claim again.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

/// A set of in-flight keys with blocking claim semantics.
#[derive(Default)]
pub struct KeyedFlight {
    pending: Mutex<HashSet<String>>,
    cond: Condvar,
}

/// The outcome of [`KeyedFlight::claim`].
pub enum Claim<'a> {
    /// This caller owns the build. Fulfilling or dropping the guard wakes
    /// every waiter.
    Claimed(FlightGuard<'a>),
    /// Another caller held the key and has since released it (completed or
    /// abandoned). Re-check the cache and claim again if still missing.
    Released,
}

impl KeyedFlight {
    pub fn new() -> KeyedFlight {
        KeyedFlight::default()
    }

    /// Claim `key` for building. If another thread already holds it, block
    /// until that claim resolves and return [`Claim::Released`] — the caller
    /// must then re-check its cache, because the previous holder may have
    /// completed (value now cached) or abandoned (value still missing).
    pub fn claim(&self, key: &str) -> Claim<'_> {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if pending.insert(key.to_string()) {
            return Claim::Claimed(FlightGuard {
                flight: self,
                key: key.to_string(),
                done: false,
            });
        }
        while pending.contains(key) {
            pending = self.cond.wait(pending).unwrap_or_else(|e| e.into_inner());
        }
        Claim::Released
    }

    fn release(&self, key: &str) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        pending.remove(key);
        self.cond.notify_all();
    }
}

/// Ownership of one in-flight key. Dropping without [`FlightGuard::complete`]
/// still releases waiters (abandoned build — e.g. the builder panicked).
pub struct FlightGuard<'a> {
    flight: &'a KeyedFlight,
    key: String,
    done: bool,
}

impl FlightGuard<'_> {
    /// Mark the build finished and wake waiters. Identical to dropping,
    /// but explicit at call sites where completion is the happy path.
    pub fn complete(mut self) {
        self.done = true;
        self.flight.release(&self.key);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.flight.release(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn first_claim_wins_then_waiters_see_released() {
        let flight = Arc::new(KeyedFlight::new());
        let claims = Arc::new(AtomicUsize::new(0));
        let released = Arc::new(AtomicUsize::new(0));
        let guard = match flight.claim("k") {
            Claim::Claimed(g) => g,
            Claim::Released => panic!("first claim must win"),
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let claims = Arc::clone(&claims);
                let released = Arc::clone(&released);
                std::thread::spawn(move || match flight.claim("k") {
                    Claim::Claimed(g) => {
                        claims.fetch_add(1, Ordering::SeqCst);
                        g.complete();
                    }
                    Claim::Released => {
                        released.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        guard.complete();
        for h in handles {
            h.join().unwrap();
        }
        // after the owner completes, late waiters all observe Released
        // (none were waiting on a *new* claim for the same key here because
        // every waiter returns Released without reclaiming)
        assert_eq!(
            claims.load(Ordering::SeqCst) + released.load(Ordering::SeqCst),
            4
        );
        assert!(
            released.load(Ordering::SeqCst) >= 1,
            "someone must have waited"
        );
    }

    #[test]
    fn abandoned_claim_releases_waiters() {
        let flight = Arc::new(KeyedFlight::new());
        let guard = match flight.claim("k") {
            Claim::Claimed(g) => g,
            Claim::Released => panic!(),
        };
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || matches!(flight.claim("k"), Claim::Released))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // abandoned, not completed
        assert!(waiter.join().unwrap(), "drop must wake waiters");
        // the key is free again
        assert!(matches!(flight.claim("k"), Claim::Claimed(_)));
    }

    #[test]
    fn distinct_keys_do_not_contend() {
        let flight = KeyedFlight::new();
        let a = match flight.claim("a") {
            Claim::Claimed(g) => g,
            Claim::Released => panic!(),
        };
        // claiming "b" while "a" is held must not block
        match flight.claim("b") {
            Claim::Claimed(b) => b.complete(),
            Claim::Released => panic!(),
        }
        a.complete();
    }
}
