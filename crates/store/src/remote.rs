//! Remote-peer tier: other nodes' caches, reached through an injected
//! client.
//!
//! The store crate knows nothing about HTTP — callers hand it
//! [`PeerClient`] implementations (proof-serve provides one over its own
//! `/cache/<key>` surface) and the tier handles fan-out, validation, and
//! degradation. Every peer failure mode — connection refused, mid-transfer
//! death, corrupt bytes, 429 shedding — is counted and treated as a miss:
//! a broken peer can cost a rebuild, never a failed job.

use crate::key::ArtifactKey;
use crate::tier::{validate_artifact, CacheTier, TierError};
use proof_obs::Counter;
use std::sync::{Arc, Mutex};

/// Transport abstraction for one peer's cache endpoint.
pub trait PeerClient: Send + Sync {
    /// Stable identity for dedup and logs (e.g. `"10.0.0.2:7878"`).
    fn endpoint(&self) -> String;
    /// Fetch an artifact from the peer. `Ok(None)` means the peer answered
    /// and does not have it.
    fn fetch(&self, key: &ArtifactKey) -> Result<Option<String>, TierError>;
    /// Offer an artifact to the peer (best-effort replication).
    fn publish(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError>;
}

/// Degradation counters shared with the store's metrics registry.
pub struct RemoteCounters {
    /// Peer unreachable or died mid-transfer.
    pub errors: Arc<Counter>,
    /// Peer shedding load (429/503).
    pub busy: Arc<Counter>,
    /// Peer returned bytes that do not parse.
    pub corrupt: Arc<Counter>,
}

/// The remote tier: an updatable set of peers, probed in order on a local
/// miss. First valid answer wins.
pub struct RemoteTier {
    peers: Mutex<Vec<Arc<dyn PeerClient>>>,
    counters: RemoteCounters,
}

impl RemoteTier {
    pub fn new(counters: RemoteCounters) -> RemoteTier {
        RemoteTier {
            peers: Mutex::new(Vec::new()),
            counters,
        }
    }

    /// Add a peer; replaces any existing peer with the same endpoint (the
    /// fleet re-advertises the full set on topology changes).
    pub fn add_peer(&self, peer: Arc<dyn PeerClient>) {
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        let endpoint = peer.endpoint();
        peers.retain(|p| p.endpoint() != endpoint);
        peers.push(peer);
    }

    pub fn peer_count(&self) -> usize {
        self.peers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn peer_endpoints(&self) -> Vec<String> {
        self.peers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|p| p.endpoint())
            .collect()
    }

    fn snapshot(&self) -> Vec<Arc<dyn PeerClient>> {
        self.peers.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Best-effort replication of a freshly built artifact to every peer.
    /// Returns how many peers accepted it.
    pub fn publish(&self, key: &ArtifactKey, artifact: &str) -> usize {
        let mut accepted = 0;
        for peer in self.snapshot() {
            match peer.publish(key, artifact) {
                Ok(()) => accepted += 1,
                Err(TierError::Busy) => self.counters.busy.inc(),
                Err(_) => self.counters.errors.inc(),
            }
        }
        accepted
    }
}

impl CacheTier for RemoteTier {
    fn name(&self) -> &'static str {
        "remote"
    }

    /// Walk the peers; the first well-formed artifact wins. Failures are
    /// counted per kind and skipped — exhausting all peers is a miss.
    fn get(&self, key: &ArtifactKey) -> Result<Option<String>, TierError> {
        for peer in self.snapshot() {
            match peer.fetch(key) {
                Ok(Some(artifact)) => {
                    if validate_artifact(&artifact) {
                        return Ok(Some(artifact));
                    }
                    self.counters.corrupt.inc();
                }
                Ok(None) => {}
                Err(TierError::Busy) => self.counters.busy.inc(),
                Err(_) => self.counters.errors.inc(),
            }
        }
        Ok(None)
    }

    fn put(&self, key: &ArtifactKey, artifact: &str) -> Result<(), TierError> {
        self.publish(key, artifact);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakePeer {
        endpoint: String,
        response: Result<Option<String>, TierError>,
    }

    impl PeerClient for FakePeer {
        fn endpoint(&self) -> String {
            self.endpoint.clone()
        }
        fn fetch(&self, _key: &ArtifactKey) -> Result<Option<String>, TierError> {
            self.response.clone()
        }
        fn publish(&self, _key: &ArtifactKey, _artifact: &str) -> Result<(), TierError> {
            self.response.clone().map(|_| ())
        }
    }

    fn counters() -> RemoteCounters {
        RemoteCounters {
            errors: Arc::new(Counter::default()),
            busy: Arc::new(Counter::default()),
            corrupt: Arc::new(Counter::default()),
        }
    }

    fn peer(endpoint: &str, response: Result<Option<String>, TierError>) -> Arc<dyn PeerClient> {
        Arc::new(FakePeer {
            endpoint: endpoint.to_string(),
            response,
        })
    }

    #[test]
    fn first_valid_answer_wins_over_failures() {
        let tier = RemoteTier::new(counters());
        let key = ArtifactKey::new("k1").unwrap();
        tier.add_peer(peer("a", Err(TierError::Unavailable("down".into()))));
        tier.add_peer(peer("b", Ok(Some("not json".to_string()))));
        tier.add_peer(peer("c", Err(TierError::Busy)));
        tier.add_peer(peer("d", Ok(Some(r#"{"v":1}"#.to_string()))));
        assert_eq!(tier.get(&key), Ok(Some(r#"{"v":1}"#.to_string())));
        assert_eq!(tier.counters.errors.get(), 1);
        assert_eq!(tier.counters.corrupt.get(), 1);
        assert_eq!(tier.counters.busy.get(), 1);
    }

    #[test]
    fn all_peers_failing_is_a_clean_miss() {
        let tier = RemoteTier::new(counters());
        let key = ArtifactKey::new("k2").unwrap();
        tier.add_peer(peer("a", Err(TierError::Unavailable("down".into()))));
        tier.add_peer(peer("b", Err(TierError::Busy)));
        assert_eq!(tier.get(&key), Ok(None), "degradation, not propagation");
    }

    #[test]
    fn re_advertised_endpoint_replaces_the_old_peer() {
        let tier = RemoteTier::new(counters());
        tier.add_peer(peer("a", Ok(None)));
        tier.add_peer(peer("b", Ok(None)));
        tier.add_peer(peer("a", Ok(Some(r#"{"v":2}"#.to_string()))));
        assert_eq!(tier.peer_count(), 2, "same endpoint deduplicates");
        let key = ArtifactKey::new("k3").unwrap();
        assert_eq!(tier.get(&key), Ok(Some(r#"{"v":2}"#.to_string())));
    }

    #[test]
    fn publish_counts_acceptance_and_failures() {
        let tier = RemoteTier::new(counters());
        let key = ArtifactKey::new("k4").unwrap();
        tier.add_peer(peer("a", Ok(None)));
        tier.add_peer(peer("b", Err(TierError::Busy)));
        tier.add_peer(peer("c", Err(TierError::Unavailable("x".into()))));
        assert_eq!(tier.publish(&key, r#"{"v":3}"#), 1);
        assert_eq!(tier.counters.busy.get(), 1);
        assert_eq!(tier.counters.errors.get(), 1);
    }
}
