//! Canonical artifact addressing.
//!
//! Every tier — memory, disk, remote peer — speaks the same key type, so a
//! key that is safe as a `HashMap` entry is also safe as a filename on the
//! disk tier and as a URL path segment on the peer-cache HTTP surface.
//! Validation happens once, at the boundary where a string becomes a key;
//! everything downstream can treat the inner string as trusted.

use std::fmt;

/// Longest accepted key. Generous for content hashes (16 hex chars) and
/// stage-prefix keys (`model|backend|platform|batch|dtype|seed`), tight
/// enough that a hostile peer cannot feed us unbounded filenames.
pub const MAX_KEY_LEN: usize = 128;

/// A validated cache key: 1..=128 ASCII characters drawn from
/// `[A-Za-z0-9._|-]`, not starting with `.`. The charset covers FNV hex
/// digests, model slugs like `mobilenetv2-0.5`, and `|`-joined stage keys,
/// while excluding `/`, `..`-style traversal openers, whitespace, and
/// anything needing URL escaping.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(String);

impl ArtifactKey {
    /// Validate and wrap a raw string.
    pub fn new(raw: &str) -> Result<ArtifactKey, String> {
        if raw.is_empty() {
            return Err("artifact key must not be empty".to_string());
        }
        if raw.len() > MAX_KEY_LEN {
            return Err(format!(
                "artifact key exceeds {MAX_KEY_LEN} bytes ({} given)",
                raw.len()
            ));
        }
        if raw.starts_with('.') {
            return Err("artifact key must not start with '.'".to_string());
        }
        for c in raw.chars() {
            if !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '|')) {
                return Err(format!("artifact key contains invalid character {c:?}"));
            }
        }
        Ok(ArtifactKey(raw.to_string()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for ArtifactKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_content_hashes_and_stage_keys() {
        assert!(ArtifactKey::new("9f86d081884c7d65").is_ok());
        assert!(ArtifactKey::new("mobilenetv2-0.5|trt|a100|8|fp16|7").is_ok());
        assert!(ArtifactKey::new("a_b-c.d|e").is_ok());
    }

    #[test]
    fn rejects_traversal_and_junk() {
        assert!(ArtifactKey::new("").is_err());
        assert!(ArtifactKey::new("../../etc/passwd").is_err());
        assert!(ArtifactKey::new(".hidden").is_err());
        assert!(ArtifactKey::new("a/b").is_err());
        assert!(ArtifactKey::new("a b").is_err());
        assert!(ArtifactKey::new("a\nb").is_err());
        assert!(ArtifactKey::new(&"x".repeat(MAX_KEY_LEN + 1)).is_err());
        assert!(ArtifactKey::new(&"x".repeat(MAX_KEY_LEN)).is_ok());
    }

    #[test]
    fn key_round_trips_as_str() {
        let k = ArtifactKey::new("deadbeef01234567").unwrap();
        assert_eq!(k.as_str(), "deadbeef01234567");
        assert_eq!(k.to_string(), "deadbeef01234567");
    }
}
