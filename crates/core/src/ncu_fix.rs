//! PRoof's correction for the counter profiler's Tensor-Core FLOP bug
//! (paper §4.2).
//!
//! NCU computes Tensor-Core FLOP as `HMMA instructions × 512`, which is only
//! correct for Volta's `HMMA.884.F32.F32`. PRoof instead takes the **raw
//! instruction counters** and multiplies by the architecture- and
//! dtype-correct FLOP-per-instruction (from Tensor-Core reverse-engineering
//! work the paper cites), leaving non-Tensor-Core FLOP untouched.

use proof_counters::KernelMetrics;
use proof_hw::GpuArch;
use proof_ir::DType;
use proof_runtime::lower::mma_flops_per_instr;

/// Corrected FLOP count for one kernel's metrics.
pub fn corrected_kernel_flops(m: &KernelMetrics, arch: GpuArch, precision: DType) -> u64 {
    if !m.tensor_core {
        return m.reported_flops;
    }
    let per_instr = mma_flops_per_instr(arch, precision);
    if per_instr == 0 {
        return m.reported_flops;
    }
    m.mma_instrs * per_instr
}

/// Corrected FLOPs for an aggregated layer `(reported, mma_instrs)` pair.
pub fn corrected_layer_flops(
    reported_flops: u64,
    mma_instrs: u64,
    arch: GpuArch,
    precision: DType,
) -> u64 {
    let per_instr = mma_flops_per_instr(arch, precision);
    if mma_instrs == 0 || per_instr == 0 {
        return reported_flops;
    }
    // strip the buggy TC contribution, substitute the corrected one
    let buggy_tc = mma_instrs * proof_counters::NCU_ASSUMED_FLOPS_PER_MMA;
    reported_flops.saturating_sub(buggy_tc) + mma_instrs * per_instr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tc: bool, reported: u64, mma: u64) -> KernelMetrics {
        KernelMetrics {
            kernel_name: "k".into(),
            layer_index: 0,
            reported_flops: reported,
            mma_instrs: mma,
            tensor_core: tc,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            latency_us: 1.0,
        }
    }

    #[test]
    fn volta_needs_no_correction() {
        let m = metrics(true, 512_000, 1000);
        assert_eq!(
            corrected_kernel_flops(&m, GpuArch::Volta, DType::F16),
            512_000
        );
    }

    #[test]
    fn ampere_fp16_is_8x() {
        let m = metrics(true, 512_000, 1000);
        assert_eq!(
            corrected_kernel_flops(&m, GpuArch::Ampere, DType::F16),
            4_096_000
        );
    }

    #[test]
    fn ampere_int8_is_16x() {
        let m = metrics(true, 512_000, 1000);
        assert_eq!(
            corrected_kernel_flops(&m, GpuArch::Ampere, DType::I8),
            8_192_000
        );
    }

    #[test]
    fn non_tc_kernels_pass_through() {
        let m = metrics(false, 777, 0);
        assert_eq!(corrected_kernel_flops(&m, GpuArch::Ampere, DType::F16), 777);
    }

    #[test]
    fn layer_aggregate_mixes_tc_and_vector_flops() {
        // layer = TC kernel (1000 instrs, reported 512k) + 100k vector flops
        let corrected = corrected_layer_flops(612_000, 1000, GpuArch::Ampere, DType::F16);
        assert_eq!(corrected, 100_000 + 4_096_000);
    }
}
