//! # proof-core — the PRoof framework
//!
//! The paper's primary contribution, organized exactly as §3 describes:
//!
//! - [`cost`] / [`analysis`] — the *Analysis Representation*: operator
//!   defines predicting Model FLOP and Eq.-1 DRAM traffic per node,
//! - [`fused`] — the *Optimized Analyze Representation* with `_FusedOp` and
//!   the universal graph-search interfaces (`get_subgraph_ops_by_io`,
//!   `set_tensor_alias`, `set_fused_op`),
//! - `mapping` — per-backend layer-mapping strategies (TensorRT-like,
//!   ONNX-Runtime-like, OpenVINO-like),
//! - `ncu_fix` — the Tensor-Core FLOP correction for counter profilers,
//! - `roofline` — end-to-end and layer-wise roofline assembly,
//! - [`pipeline`] — the workflow as explicit, reusable stages with typed
//!   artifacts, per-stage spans/timings, and the unified [`ProofError`],
//! - [`trace_export`] — merged Chrome-trace export (stage spans + kernel
//!   timeline on one clock),
//! - [`grid`] — profiling grid specs (model × backend × platform ×
//!   precision × batch) and deterministic multi-node result merging,
//! - `profile` — the top-level profiler driver (predicted or measured),
//! - `peak` — achieved-roofline-peak measurement via a pseudo model,
//! - `report` / `viewer` — text/CSV reports and SVG roofline charts.

pub mod analysis;
pub mod cost;
pub mod distributed;
pub mod fused;
pub mod grid;
pub mod headroom;
pub mod html;
pub mod mapping;
pub mod memory;
pub mod ncu_fix;
pub mod peak;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod roofline;
pub mod sweep;
pub mod trace_export;
pub mod viewer;

pub use analysis::AnalyzeRepr;
pub use cost::{op_cost, op_cost_with, CostEstimate, CostOptions, FlopTable};
pub use distributed::{profile_pipeline, Interconnect, PipelineReport, StageReport};
pub use fused::{FuseError, Group, GroupId, OptimizedRepr, ReorderLayer};
pub use grid::{merge_cells, GridCell, GridSpec, DEFAULT_GRID_SEED, MAX_GRID_CELLS};
pub use headroom::{analyze_headroom, HeadroomReport, LayerHeadroom};
pub use html::html_report;
pub use mapping::{map_layers, MappedLayer, Mapping};
pub use memory::{max_batch_within, plan_memory, MemoryPlan};
pub use peak::{measure_achieved_peak, AchievedPeak};
pub use pipeline::{
    prepare_stages, prepare_stages_ctx, profile_both_modes, run_metric_stages,
    run_metric_stages_ctx, run_pipeline, run_pipeline_ctx, stage_assemble, stage_builtin_profile,
    stage_compile, stage_map, stage_metrics, BuiltinProfileArtifact, CompiledArtifact,
    MappedLayerArtifact, MappingArtifact, MetricsArtifact, PipelineStage, PipelineTrace,
    PreparedStages, ProofError, RunCtx, StageTiming,
};
pub use profile::{profile_model, LayerReport, MetricMode, ProfileReport};
pub use roofline::{categorize, LayerCategory, RooflineCeiling, RooflineChart, RooflinePoint};
pub use sweep::{pow2_grid, sweep_batches, BatchSweep, SweepPoint};
pub use trace_export::merged_chrome_trace;
pub use viewer::{render_roofline_svg, SvgOptions};
