//! Merged Chrome-trace export: pipeline-stage spans and the simulated
//! kernel timeline in one Perfetto-loadable document on one clock.
//!
//! Pipeline spans (collected by `proof_obs`) render on tid 0; the kernel
//! timeline of the profiled model renders on tids 1–2, anchored at the
//! start of the `builtin_profile` span — the stage whose wall-clock the
//! simulated kernels conceptually fill. Under the deterministic logical
//! clock the whole document is byte-identical across runs for the same
//! (spec, seed), which is what lets serve cache and tests diff traces.

use crate::pipeline::PipelineStage;
use proof_obs::export::{chrome_trace_json, spans_to_events};
use proof_obs::SpanRecord;
use proof_runtime::{kernel_events, CompiledModel};

/// Chrome-trace category for pipeline/stage spans in the merged document.
pub const PIPELINE_CAT: &str = "pipeline";

/// Render one trace's spans — plus, when the profiled plan is at hand, its
/// kernel timeline — as a Chrome-trace JSON document.
pub fn merged_chrome_trace(spans: &[SpanRecord], compiled: Option<&CompiledModel>) -> String {
    let mut events = spans_to_events(spans, 1, 0, PIPELINE_CAT);
    if let Some(model) = compiled {
        // anchor kernels at the profile stage; fall back to the earliest
        // span for traces that reused a cached prefix (no profile span)
        let t0 = spans
            .iter()
            .filter(|s| s.name == PipelineStage::BuiltinProfile.name())
            .map(|s| s.start_us)
            .min_by(f64::total_cmp)
            .or_else(|| spans.iter().map(|s| s.start_us).min_by(f64::total_cmp))
            .unwrap_or(0.0);
        events.extend(kernel_events(model, t0));
    }
    chrome_trace_json(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare_stages, run_metric_stages, PipelineTrace, PreparedStages};
    use crate::profile::MetricMode;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{BackendFlavor, SessionConfig};

    fn traced_run() -> (u64, PreparedStages, PipelineTrace) {
        let trace_id = proof_obs::new_trace_id();
        let root = proof_obs::span_in(trace_id, "profile");
        let g = ModelId::MobileNetV2x05.build(1);
        let prep = prepare_stages(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
        )
        .unwrap();
        let report = run_metric_stages(&prep, MetricMode::Predicted).unwrap();
        root.finish();
        (trace_id, prep, report.trace)
    }

    #[test]
    fn merged_trace_holds_pipeline_and_kernel_rows_on_one_clock() {
        let (_, ring) = proof_obs::shared_ring_tracer();
        let (trace_id, prep, _) = traced_run();
        let spans = ring.trace_spans(trace_id);
        let doc = merged_chrome_trace(&spans, Some(&prep.compiled.compiled));
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        let cat_count = |c: &str| events.iter().filter(|e| e["cat"] == c).count();
        assert_eq!(cat_count(PIPELINE_CAT), spans.len());
        assert!(cat_count("kernel") > 0 && cat_count("backend_layer") > 0);
        // all five stage spans are present by name
        for stage in PipelineStage::ALL {
            assert!(events.iter().any(|e| e["name"] == stage.name()));
        }
        // one shared clock: globally sorted, kernels anchored inside the
        // profile stage's span
        let ts: Vec<f64> = events.iter().map(|e| e["ts"].as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let profile_ts = events
            .iter()
            .find(|e| e["name"] == "builtin_profile")
            .unwrap()["ts"]
            .as_f64()
            .unwrap();
        let first_kernel_ts = events.iter().find(|e| e["cat"] == "kernel").unwrap()["ts"]
            .as_f64()
            .unwrap();
        assert_eq!(profile_ts, first_kernel_ts);
    }

    #[test]
    fn merged_trace_is_byte_identical_across_runs() {
        let (_, ring) = proof_obs::shared_ring_tracer();
        let (t1, prep1, _) = traced_run();
        let (t2, prep2, _) = traced_run();
        let a = merged_chrome_trace(&ring.trace_spans(t1), Some(&prep1.compiled.compiled));
        let b = merged_chrome_trace(&ring.trace_spans(t2), Some(&prep2.compiled.compiled));
        assert_eq!(a, b);
    }

    #[test]
    fn pipeline_trace_reconstructs_from_spans() {
        let (_, ring) = proof_obs::shared_ring_tracer();
        let (trace_id, _, trace) = traced_run();
        let spans = ring.trace_spans(trace_id);
        let derived = PipelineTrace::from_spans(spans.iter());
        assert_eq!(derived, trace);
        // stage spans hang off the root span of the trace
        let root = spans.iter().find(|s| s.name == "profile").unwrap();
        assert_eq!(root.parent, 0);
        assert!(spans
            .iter()
            .filter(|s| s.name != "profile")
            .all(|s| s.parent == root.id));
    }

    #[test]
    fn spans_only_trace_without_model_is_valid() {
        let (_, ring) = proof_obs::shared_ring_tracer();
        let trace_id = proof_obs::new_trace_id();
        proof_obs::span_in(trace_id, "profile").finish();
        let doc = merged_chrome_trace(&ring.trace_spans(trace_id), None);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 1);
    }
}
