//! Single-page HTML data viewer: the paper's "user-friendly visualization
//! of the profiled results" — embeds the roofline SVG, the end-to-end
//! summary, and a sortable per-layer table (a table view always ships with
//! a chart, so no value is gated behind color perception).

use crate::profile::ProfileReport;
use crate::viewer::{render_roofline_svg, SvgOptions};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a complete standalone HTML report for one or more profiles.
pub fn html_report(reports: &[&ProfileReport]) -> String {
    let mut h = String::with_capacity(64 * 1024);
    h.push_str(
        r#"<!doctype html><html><head><meta charset="utf-8"><title>PRoof report</title>
<style>
 body { font-family: system-ui, sans-serif; background:#fcfcfb; color:#0b0b0b; margin:2rem auto; max-width:980px; }
 h1 { font-size:1.3rem; } h2 { font-size:1.05rem; margin-top:2.2rem; }
 table { border-collapse:collapse; width:100%; font-size:0.82rem; }
 th, td { text-align:right; padding:3px 8px; border-bottom:1px solid #e7e6e2; }
 th { color:#52514e; font-weight:600; cursor:pointer; position:sticky; top:0; background:#fcfcfb; }
 td:first-child, th:first-child { text-align:left; max-width:340px; overflow:hidden; text-overflow:ellipsis; white-space:nowrap; }
 .summary { color:#52514e; margin:0.3rem 0 1rem; }
 .reorder { color:#52514e; font-style:italic; }
</style>
<script>
function sortTable(tbl, col) {
  const rows = Array.from(tbl.tBodies[0].rows);
  const dir = tbl.dataset.dir === 'asc' ? -1 : 1;
  tbl.dataset.dir = dir === 1 ? 'asc' : 'desc';
  rows.sort((a, b) => {
    const x = a.cells[col].dataset.v ?? a.cells[col].textContent;
    const y = b.cells[col].dataset.v ?? b.cells[col].textContent;
    const nx = parseFloat(x), ny = parseFloat(y);
    if (!isNaN(nx) && !isNaN(ny)) return dir * (ny - nx);
    return dir * String(x).localeCompare(String(y));
  });
  rows.forEach(r => tbl.tBodies[0].appendChild(r));
}
</script></head><body>
<h1>PRoof profiling report</h1>
"#,
    );
    for (i, r) in reports.iter().enumerate() {
        let chart = r.layerwise_chart(&format!(
            "{} on {} ({}, bs={})",
            r.model, r.platform, r.precision, r.batch
        ));
        let _ = write!(
            h,
            "<h2>{} on {} [{}]</h2>\n<p class='summary'>{} bs={} ({:?}) — {:.3} ms | {:.3} GFLOP | \
             {:.2} MB | {:.1} GFLOP/s | {:.1} GB/s | AI {:.2} | metric collection {:.2} s</p>\n",
            esc(&r.model),
            esc(&r.platform),
            r.backend,
            r.precision,
            r.batch,
            r.mode,
            r.total_latency_ms,
            r.total_flops as f64 / 1e9,
            r.total_memory_bytes as f64 / 1e6,
            r.achieved_gflops(),
            r.achieved_bw_gbs(),
            r.intensity(),
            r.metric_collection_s,
        );
        h.push_str(&render_roofline_svg(&chart, &SvgOptions::default()));
        let _ = writeln!(
            h,
            "<table id='t{i}' data-dir='desc'><thead><tr>{}</tr></thead><tbody>",
            [
                "backend layer",
                "category",
                "latency (µs)",
                "share %",
                "GFLOP",
                "mem (MB)",
                "GFLOP/s",
                "GB/s",
                "AI"
            ]
            .iter()
            .enumerate()
            .map(|(c, name)| format!(
                "<th onclick=\"sortTable(document.getElementById('t{i}'),{c})\">{name}</th>"
            ))
            .collect::<String>()
        );
        let total_us = (r.total_latency_ms * 1e3).max(1e-12);
        for l in &r.layers {
            let cls = if l.is_reorder { " class='reorder'" } else { "" };
            let _ = writeln!(
                h,
                "<tr{cls}><td title='{}'>{}</td><td>{}</td><td data-v='{:.3}'>{:.1}</td><td data-v='{:.5}'>{:.2}</td>\
                 <td data-v='{}'>{:.3}</td><td data-v='{}'>{:.2}</td><td data-v='{:.3}'>{:.1}</td>\
                 <td data-v='{:.3}'>{:.1}</td><td data-v='{:.4}'>{:.2}</td></tr>",
                esc(&l.original_nodes.join(", ")),
                esc(&l.name),
                l.category.label(),
                l.latency_us,
                l.latency_us,
                100.0 * l.latency_us / total_us,
                100.0 * l.latency_us / total_us,
                l.flops,
                l.flops as f64 / 1e9,
                l.memory_bytes,
                l.memory_bytes as f64 / 1e6,
                l.achieved_gflops(),
                l.achieved_gflops(),
                l.achieved_bw_gbs(),
                l.achieved_bw_gbs(),
                l.intensity(),
                l.intensity(),
            );
        }
        h.push_str("</tbody></table>\n");
    }
    h.push_str("</body></html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_model, MetricMode};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{BackendFlavor, SessionConfig};

    fn report() -> ProfileReport {
        profile_model(
            &ModelId::MobileNetV2x05.build(4),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap()
    }

    #[test]
    fn html_embeds_svg_and_one_row_per_layer() {
        let r = report();
        let html = html_report(&[&r]);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<svg"));
        let rows = html.matches("<tr>").count() + html.matches("<tr class='reorder'>").count();
        assert_eq!(rows, r.layers.len() + 1); // + header row
        assert!(html.contains("sortTable"));
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn multiple_reports_stack_sections() {
        let r = report();
        let html = html_report(&[&r, &r]);
        assert_eq!(html.matches("<h2>").count(), 2);
        assert_eq!(html.matches("<svg").count(), 2);
    }

    #[test]
    fn escapes_markup_in_names() {
        let mut r = report();
        r.model = "evil<script>".into();
        let html = html_report(&[&r]);
        assert!(!html.contains("evil<script>"));
        assert!(html.contains("evil&lt;script&gt;"));
    }
}
