//! Profiling *grid specs* and deterministic result merging — the shared
//! vocabulary between a fleet coordinator and its worker daemons.
//!
//! A [`GridSpec`] names the cross product of the paper's evaluation axes
//! (model × backend × platform × precision × batch, Tables 3–5) under one
//! metric mode and seed. [`GridSpec::cells`] expands it into *canonically
//! ordered* [`GridCell`]s — the order depends only on the spec, never on
//! which node ran which cell — and [`merge_cells`] reassembles per-cell
//! report JSON into one combined artifact. Because every per-cell report is
//! already byte-deterministic for a given spec and seed, and the merge
//! orders cells canonically and serializes through sorted-key JSON, the
//! merged artifact is **byte-identical** no matter how the grid was sharded
//! across nodes (or whether it ran on a single daemon).

use crate::pipeline::ProofError;
use crate::profile::ProfileReport;
use crate::sweep::{BatchSweep, SweepPoint};
use serde_json::{Map, Value};

/// Largest cell count a single grid may expand to (mirrors the serve
/// daemon's sweep cap).
pub const MAX_GRID_CELLS: usize = 4096;

/// A profiling grid: every axis is a list, optional axes (`backends`,
/// `dtypes`, `mode`) default to the worker-side defaults when empty/None.
/// Axis order within each list is preserved — the canonical cell order is a
/// function of the spec as given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    pub models: Vec<String>,
    /// Empty → each cell omits `backend` (worker picks the platform-native
    /// flavor).
    pub backends: Vec<String>,
    pub platforms: Vec<String>,
    /// Empty → each cell omits `dtype` (worker default).
    pub dtypes: Vec<String>,
    pub batches: Vec<u64>,
    /// `None` → worker default (`predicted`).
    pub mode: Option<String>,
    pub seed: u64,
}

/// One point of the grid — exactly the fields of a `POST /jobs` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridCell {
    pub model: String,
    pub backend: Option<String>,
    pub platform: String,
    pub dtype: Option<String>,
    pub batch: u64,
    pub mode: Option<String>,
    pub seed: u64,
}

impl GridCell {
    /// The job-spec JSON object this cell submits to a worker daemon.
    pub fn to_job_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("model".to_string(), Value::from(self.model.as_str()));
        if let Some(b) = &self.backend {
            m.insert("backend".to_string(), Value::from(b.as_str()));
        }
        m.insert("hardware".to_string(), Value::from(self.platform.as_str()));
        if let Some(d) = &self.dtype {
            m.insert("dtype".to_string(), Value::from(d.as_str()));
        }
        m.insert("batch".to_string(), Value::from(self.batch));
        if let Some(mo) = &self.mode {
            m.insert("mode".to_string(), Value::from(mo.as_str()));
        }
        m.insert("seed".to_string(), Value::from(self.seed));
        Value::Object(m)
    }
}

fn str_list(obj: &Map<String, Value>, scalar: &str, list: &str) -> Result<Vec<String>, ProofError> {
    let values = match (obj.get(list), obj.get(scalar)) {
        // a lone string under the plural spelling is accepted as a
        // one-element axis (this also serves aliases like `hardware`,
        // which have a single spelling for both shapes)
        (Some(Value::String(_)), _) => vec![obj.get(list).unwrap().clone()],
        (Some(v), _) => {
            let arr = v.as_array().ok_or_else(|| {
                ProofError::InvalidSpec(format!("field '{list}' must be an array"))
            })?;
            arr.clone()
        }
        (None, Some(v)) => vec![v.clone()],
        (None, None) => return Ok(Vec::new()),
    };
    values
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                ProofError::InvalidSpec(format!("'{scalar}' entries must be strings, got {v}"))
            })
        })
        .collect()
}

impl GridSpec {
    /// Parse the coordinator's grid-spec JSON. Scalar and plural spellings
    /// are both accepted per axis (`model`/`models`, ...), plus the serve
    /// daemon's aliases `hardware` and `precision(s)`.
    pub fn from_value(v: &Value) -> Result<GridSpec, ProofError> {
        let obj = v
            .as_object()
            .ok_or_else(|| ProofError::InvalidSpec("grid spec must be a JSON object".into()))?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "model"
                    | "models"
                    | "backend"
                    | "backends"
                    | "platform"
                    | "platforms"
                    | "hardware"
                    | "dtype"
                    | "dtypes"
                    | "precision"
                    | "precisions"
                    | "batch"
                    | "batches"
                    | "mode"
                    | "seed"
            ) {
                return Err(ProofError::InvalidSpec(format!(
                    "unknown field '{key}' in grid spec"
                )));
            }
        }
        let models = str_list(obj, "model", "models")?;
        let backends = str_list(obj, "backend", "backends")?;
        let mut platforms = str_list(obj, "platform", "platforms")?;
        if platforms.is_empty() {
            platforms = str_list(obj, "hardware", "hardware")?;
        }
        let mut dtypes = str_list(obj, "dtype", "dtypes")?;
        if dtypes.is_empty() {
            dtypes = str_list(obj, "precision", "precisions")?;
        }
        let batches = match (obj.get("batches"), obj.get("batch")) {
            (Some(v), _) => v
                .as_array()
                .ok_or_else(|| ProofError::InvalidSpec("field 'batches' must be an array".into()))?
                .iter()
                .map(|b| {
                    b.as_u64().ok_or_else(|| {
                        ProofError::InvalidSpec(format!("batch entries must be integers, got {b}"))
                    })
                })
                .collect::<Result<Vec<u64>, ProofError>>()?,
            (None, Some(v)) => vec![v.as_u64().ok_or_else(|| {
                ProofError::InvalidSpec(format!("field 'batch' must be an integer, got {v}"))
            })?],
            (None, None) => vec![1],
        };
        let mode = match obj.get("mode") {
            None | Some(Value::Null) => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(other) => {
                return Err(ProofError::InvalidSpec(format!(
                    "field 'mode' must be a string, got {other}"
                )))
            }
        };
        let seed = match obj.get("seed") {
            None | Some(Value::Null) => crate::grid::DEFAULT_GRID_SEED,
            Some(v) => v.as_u64().ok_or_else(|| {
                ProofError::InvalidSpec(format!(
                    "field 'seed' must be a non-negative integer, got {v}"
                ))
            })?,
        };
        let spec = GridSpec {
            models,
            backends,
            platforms,
            dtypes,
            batches,
            mode,
            seed,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation (axis presence and grid size; slug validity is
    /// checked by the worker-spec parser when cells become jobs).
    pub fn validate(&self) -> Result<(), ProofError> {
        if self.models.is_empty() {
            return Err(ProofError::InvalidSpec(
                "grid spec needs at least one model".into(),
            ));
        }
        if self.platforms.is_empty() {
            return Err(ProofError::InvalidSpec(
                "grid spec needs at least one platform".into(),
            ));
        }
        if self.batches.is_empty() {
            return Err(ProofError::InvalidSpec(
                "grid spec needs at least one batch size".into(),
            ));
        }
        if self.cell_count() > MAX_GRID_CELLS {
            return Err(ProofError::InvalidSpec(format!(
                "grid expands to {} cells, larger than {MAX_GRID_CELLS}",
                self.cell_count()
            )));
        }
        Ok(())
    }

    /// How many cells [`GridSpec::cells`] will produce.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.backends.len().max(1)
            * self.platforms.len()
            * self.dtypes.len().max(1)
            * self.batches.len()
    }

    /// Expand into cells in **canonical order**: model-major, then
    /// platform, backend, dtype, batch — each axis in spec order. The shard
    /// id of a cell is its index in this expansion.
    pub fn cells(&self) -> Vec<GridCell> {
        let opt = |axis: &[String]| -> Vec<Option<String>> {
            if axis.is_empty() {
                vec![None]
            } else {
                axis.iter().map(|s| Some(s.clone())).collect()
            }
        };
        let backends = opt(&self.backends);
        let dtypes = opt(&self.dtypes);
        let mut out = Vec::with_capacity(self.cell_count());
        for model in &self.models {
            for platform in &self.platforms {
                for backend in &backends {
                    for dtype in &dtypes {
                        for &batch in &self.batches {
                            out.push(GridCell {
                                model: model.clone(),
                                backend: backend.clone(),
                                platform: platform.clone(),
                                dtype: dtype.clone(),
                                batch,
                                mode: self.mode.clone(),
                                seed: self.seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The spec as a canonical JSON object (sorted keys via the `Map`
    /// backing; optional axes serialized as `null` when defaulted).
    pub fn to_value(&self) -> Value {
        let strs = |v: &[String]| Value::Array(v.iter().map(|s| Value::from(s.as_str())).collect());
        let mut m = Map::new();
        m.insert("models".to_string(), strs(&self.models));
        m.insert(
            "backends".to_string(),
            if self.backends.is_empty() {
                Value::Null
            } else {
                strs(&self.backends)
            },
        );
        m.insert("platforms".to_string(), strs(&self.platforms));
        m.insert(
            "dtypes".to_string(),
            if self.dtypes.is_empty() {
                Value::Null
            } else {
                strs(&self.dtypes)
            },
        );
        m.insert(
            "batches".to_string(),
            Value::Array(self.batches.iter().map(|&b| Value::from(b)).collect()),
        );
        m.insert(
            "mode".to_string(),
            self.mode.as_deref().map(Value::from).unwrap_or(Value::Null),
        );
        m.insert("seed".to_string(), Value::from(self.seed));
        Value::Object(m)
    }

    /// Whether the grid is a pure batch sweep of one configuration (single
    /// model/platform/backend/dtype, the batch axis free) — the case where
    /// the merged artifact also carries a derived [`BatchSweep`].
    pub fn is_batch_sweep(&self) -> bool {
        self.models.len() == 1
            && self.platforms.len() == 1
            && self.backends.len() <= 1
            && self.dtypes.len() <= 1
    }
}

/// Default seed for grid runs (same default as the serve daemon's job spec,
/// duplicated here so proof-core does not depend on proof-serve).
pub const DEFAULT_GRID_SEED: u64 = 0xC0FFEE;

/// Merge per-cell report JSON into the combined grid artifact.
///
/// `reports` pairs each shard id (index into [`GridSpec::cells`]) with the
/// worker-produced report JSON for that cell, in **any** order — the merge
/// sorts them canonically. Every shard must appear exactly once; a missing
/// or duplicate shard is an error, never a silently partial document.
///
/// The document is `{"cells": [...], "grid": ..., "sweep": ...}` with
/// sorted keys throughout, so its bytes depend only on (spec, per-cell
/// report bytes) — not on node count, dispatch order, or retry history.
pub fn merge_cells(spec: &GridSpec, reports: &[(usize, String)]) -> Result<String, ProofError> {
    let cells = spec.cells();
    let mut slots: Vec<Option<&str>> = vec![None; cells.len()];
    for (shard, json) in reports {
        let slot = slots.get_mut(*shard).ok_or_else(|| {
            ProofError::InvalidSpec(format!(
                "shard {shard} out of range for a {}-cell grid",
                cells.len()
            ))
        })?;
        if slot.is_some() {
            return Err(ProofError::InvalidSpec(format!(
                "shard {shard} reported twice"
            )));
        }
        *slot = Some(json.as_str());
    }
    let mut cell_values = Vec::with_capacity(cells.len());
    let mut parsed = Vec::with_capacity(cells.len());
    for (shard, (cell, slot)) in cells.iter().zip(&slots).enumerate() {
        let json = slot.ok_or_else(|| {
            ProofError::InvalidSpec(format!("shard {shard} missing from the merge"))
        })?;
        let report: Value = serde_json::from_str(json)
            .map_err(|e| ProofError::Serialize(format!("shard {shard} report: {e}")))?;
        parsed.push(json);
        let mut m = Map::new();
        m.insert("report".to_string(), report);
        m.insert("spec".to_string(), cell.to_job_value());
        cell_values.push(Value::Object(m));
    }
    let sweep = if spec.is_batch_sweep() && cells.len() > 1 {
        batch_sweep_from_reports(&parsed)?
    } else {
        None
    };
    let mut doc = Map::new();
    doc.insert("cells".to_string(), Value::Array(cell_values));
    doc.insert("grid".to_string(), spec.to_value());
    doc.insert(
        "sweep".to_string(),
        match sweep {
            Some(s) => serde_json::to_value(&s),
            None => Value::Null,
        },
    );
    Ok(Value::Object(doc).to_string())
}

/// Derive a [`BatchSweep`] from the per-batch reports of a single-config
/// grid, computing each point exactly as [`crate::sweep::sweep_batches`]
/// does so the curve is interchangeable with a direct sweep.
fn batch_sweep_from_reports(reports: &[&str]) -> Result<Option<BatchSweep>, ProofError> {
    let mut points = Vec::with_capacity(reports.len());
    let mut model = String::new();
    let mut platform = String::new();
    for json in reports {
        let r = ProfileReport::from_json(json)
            .map_err(|e| ProofError::Serialize(format!("sweep cell report: {e}")))?;
        model = r.model.clone();
        platform = r.platform.clone();
        points.push(SweepPoint {
            batch: r.batch,
            latency_ms: r.total_latency_ms,
            throughput_per_s: r.throughput_per_s(),
            achieved_gflops: r.achieved_gflops(),
        });
    }
    points.sort_by_key(|p| p.batch);
    Ok(Some(BatchSweep {
        model,
        platform,
        points,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec {
            models: vec!["resnet-50".into(), "vit-tiny".into()],
            backends: vec![],
            platforms: vec!["a100".into()],
            dtypes: vec!["fp16".into()],
            batches: vec![1, 4],
            mode: None,
            seed: 7,
        }
    }

    #[test]
    fn expansion_is_canonical_and_counts_match() {
        let s = spec();
        let cells = s.cells();
        assert_eq!(cells.len(), s.cell_count());
        assert_eq!(cells.len(), 4);
        // model-major, batch-minor
        assert_eq!(cells[0].model, "resnet-50");
        assert_eq!(cells[0].batch, 1);
        assert_eq!(cells[1].batch, 4);
        assert_eq!(cells[2].model, "vit-tiny");
        // empty backend axis → omitted from the job spec
        assert!(cells[0].backend.is_none());
        let job = cells[0].to_job_value();
        assert!(job.as_object().unwrap().get("backend").is_none());
        assert_eq!(job["hardware"], "a100");
        assert_eq!(job["seed"], 7u64);
    }

    #[test]
    fn from_value_accepts_scalar_and_plural_spellings() {
        let a = GridSpec::from_value(
            &serde_json::from_str(
                r#"{"models":["resnet-50"],"platform":"a100","batches":[1,2],"seed":3}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let b = GridSpec::from_value(
            &serde_json::from_str(
                r#"{"model":"resnet-50","hardware":"a100","batches":[1,2],"seed":3}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cells().len(), 2);
        // precision alias feeds the dtype axis
        let c = GridSpec::from_value(
            &serde_json::from_str(
                r#"{"model":"resnet-50","platform":"a100","precisions":["fp16","fp32"]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(c.dtypes, vec!["fp16".to_string(), "fp32".to_string()]);
        assert_eq!(c.batches, vec![1]);
        assert_eq!(c.seed, DEFAULT_GRID_SEED);
    }

    #[test]
    fn from_value_rejects_malformed_specs() {
        for bad in [
            r#"{"platform":"a100"}"#,                                  // no model
            r#"{"model":"resnet-50"}"#,                                // no platform
            r#"{"model":"resnet-50","platform":"a100","batches":[]}"#, // empty axis
            r#"{"model":"resnet-50","platform":"a100","bogus":1}"#,    // unknown field
            r#"{"models":[1],"platform":"a100"}"#,                     // non-string entry
        ] {
            let v: Value = serde_json::from_str(bad).unwrap();
            assert!(GridSpec::from_value(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn merge_requires_exactly_one_report_per_shard() {
        let s = spec();
        let fake = |i: usize| (i, format!(r#"{{"cell":{i}}}"#));
        // missing shard 3
        let partial: Vec<_> = (0..3).map(fake).collect();
        assert!(merge_cells(&s, &partial).is_err());
        // duplicate shard
        let mut dup: Vec<_> = (0..4).map(fake).collect();
        dup.push(fake(0));
        assert!(merge_cells(&s, &dup).is_err());
        // out of range
        let mut oob: Vec<_> = (0..4).map(fake).collect();
        oob.push(fake(9));
        assert!(merge_cells(&s, &oob).is_err());
    }

    #[test]
    fn merge_is_order_independent() {
        let s = spec();
        let fake = |i: usize| (i, format!(r#"{{"cell":{i}}}"#));
        let forward: Vec<_> = (0..4).map(fake).collect();
        let reverse: Vec<_> = (0..4).rev().map(fake).collect();
        let a = merge_cells(&s, &forward).unwrap();
        let b = merge_cells(&s, &reverse).unwrap();
        assert_eq!(a, b, "merge must not depend on report arrival order");
        // cells land in canonical order inside the document
        let doc: Value = serde_json::from_str(&a).unwrap();
        let cells = doc["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0]["report"]["cell"], 0u64);
        assert_eq!(cells[3]["report"]["cell"], 3u64);
        assert_eq!(doc["grid"]["seed"], 7u64);
        // a 2-model grid is not a batch sweep
        assert!(doc["sweep"].is_null());
    }

    #[test]
    fn batch_sweep_grid_detection() {
        let mut s = spec();
        assert!(!s.is_batch_sweep());
        s.models = vec!["resnet-50".into()];
        assert!(s.is_batch_sweep());
    }
}
