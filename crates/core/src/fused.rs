//! The *Optimized Analyze Representation* and `_FusedOp` (paper §3.2.3),
//! plus the universal graph-search interfaces the layer-mapping step uses
//! (§3.3, Figure 2): `get_subgraph_ops_by_io`, `set_tensor_alias`,
//! `set_fused_op`.

use crate::analysis::AnalyzeRepr;
use crate::cost::CostEstimate;
use proof_ir::{Graph, NodeId, TensorId, TensorKind};
use std::collections::{HashMap, HashSet};

/// Identifier of a layer group (one group ≙ one backend layer after mapping).
pub type GroupId = u32;

/// A group of original model nodes that the backend executes as one layer.
/// A single-member group is an unfused operator; a multi-member group is the
/// paper's `_FusedOp` (it "maintains a subgraph of these original operators").
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    pub name: String,
    /// Member nodes, in topological order.
    pub members: Vec<NodeId>,
    /// Whether this group was created by `set_fused_op`.
    pub fused: bool,
}

/// A backend-inserted layer with no counterpart in the model (tensor format
/// or datatype conversion — the `reorder_1` of the paper's Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderLayer {
    pub name: String,
    /// The model tensor whose converted copy this layer produces.
    pub tensor: TensorId,
    pub cost: CostEstimate,
}

/// Errors from the mapping interfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum FuseError {
    UnknownTensor(String),
    UnknownNode(NodeId),
    /// The io-bounded closure escaped the given inputs (not a valid subgraph).
    NotAClosedSubgraph {
        escaped_tensor: String,
    },
    /// A member already belongs to another fused group.
    AlreadyFused {
        node: String,
    },
    EmptyMemberSet,
}

impl std::fmt::Display for FuseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseError::UnknownTensor(n) => write!(f, "unknown tensor {n}"),
            FuseError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            FuseError::NotAClosedSubgraph { escaped_tensor } => {
                write!(
                    f,
                    "subgraph escapes its declared inputs via {escaped_tensor}"
                )
            }
            FuseError::AlreadyFused { node } => write!(f, "node {node} is already fused"),
            FuseError::EmptyMemberSet => write!(f, "empty member set"),
        }
    }
}

impl std::error::Error for FuseError {}

/// The Optimized Analyze Representation: starts identical to the
/// [`AnalyzeRepr`] (one group per node) and is transformed towards the
/// backend's fused structure through the interfaces below.
pub struct OptimizedRepr<'g> {
    analysis: AnalyzeRepr<'g>,
    groups: Vec<Group>,
    /// group id per node.
    node_group: Vec<GroupId>,
    /// Runtime tensor-name aliases (`t2_r` → `t2`).
    aliases: HashMap<String, TensorId>,
    reorders: Vec<ReorderLayer>,
    producers: HashMap<TensorId, NodeId>,
    consumers: HashMap<TensorId, Vec<NodeId>>,
}

impl<'g> OptimizedRepr<'g> {
    pub fn new(analysis: AnalyzeRepr<'g>) -> Self {
        let graph = analysis.graph();
        let groups = graph
            .nodes
            .iter()
            .map(|n| Group {
                name: n.name.clone(),
                members: vec![graph.node_by_name(&n.name).expect("own node")],
                fused: false,
            })
            .collect::<Vec<_>>();
        let node_group = (0..graph.nodes.len() as GroupId).collect();
        OptimizedRepr {
            producers: graph.producers(),
            consumers: graph.consumers(),
            analysis,
            groups,
            node_group,
            aliases: HashMap::new(),
            reorders: Vec::new(),
        }
    }

    pub fn graph(&self) -> &'g Graph {
        self.analysis.graph()
    }

    pub fn analysis(&self) -> &AnalyzeRepr<'g> {
        &self.analysis
    }

    // ------------------------------------------------------------------
    // Universal mapping interfaces (paper Figure 2)
    // ------------------------------------------------------------------

    /// Resolve a runtime tensor name to a model tensor, through aliases.
    pub fn resolve_tensor(&self, name: &str) -> Option<TensorId> {
        self.aliases
            .get(name)
            .copied()
            .or_else(|| self.graph().tensor_by_name(name))
    }

    /// Register that the runtime refers to model tensor `target` under
    /// `alias` (e.g. after inserting a reorder layer).
    pub fn set_tensor_alias(&mut self, alias: &str, target: TensorId) {
        self.aliases.insert(alias.to_string(), target);
    }

    /// Find the node subgraph whose boundary is exactly `inputs` → `outputs`
    /// (paper: "search the computational graph and leverage context and data
    /// dependencies"). Runs a backward closure from the producers of
    /// `outputs`, cut at `inputs`; fails if the closure needs any activation
    /// outside `inputs` that has no producer inside the closure, i.e. the io
    /// description does not bound a subgraph.
    ///
    /// Returns members in topological order.
    pub fn get_subgraph_ops_by_io(
        &self,
        inputs: &[TensorId],
        outputs: &[TensorId],
    ) -> Result<Vec<NodeId>, FuseError> {
        let g = self.graph();
        let input_set: HashSet<TensorId> = inputs.iter().copied().collect();
        let mut members: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &out in outputs {
            match self.producers.get(&out) {
                Some(&nid) => {
                    if members.insert(nid) {
                        stack.push(nid);
                    }
                }
                None => {
                    return Err(FuseError::UnknownTensor(g.tensor(out).name.clone()));
                }
            }
        }
        while let Some(nid) = stack.pop() {
            for &inp in &g.node(nid).inputs {
                if input_set.contains(&inp) {
                    continue;
                }
                let t = g.tensor(inp);
                if t.kind == TensorKind::Weight {
                    continue; // weights live inside the fused layer
                }
                match self.producers.get(&inp) {
                    Some(&p) => {
                        if members.insert(p) {
                            stack.push(p);
                        }
                    }
                    None => {
                        // a graph input not listed in `inputs`: escape
                        return Err(FuseError::NotAClosedSubgraph {
                            escaped_tensor: t.name.clone(),
                        });
                    }
                }
            }
        }
        let mut sorted: Vec<NodeId> = members.into_iter().collect();
        sorted.sort_unstable();
        Ok(sorted)
    }

    /// Fuse `members` into a single `_FusedOp` named `name`. Members must be
    /// currently unfused (their initial one-node groups are absorbed).
    pub fn set_fused_op(&mut self, name: &str, members: &[NodeId]) -> Result<GroupId, FuseError> {
        if members.is_empty() {
            return Err(FuseError::EmptyMemberSet);
        }
        let g = self.graph();
        for &m in members {
            if m as usize >= g.nodes.len() {
                return Err(FuseError::UnknownNode(m));
            }
            let gid = self.node_group[m as usize];
            if self.groups[gid as usize].fused || self.groups[gid as usize].members.len() > 1 {
                return Err(FuseError::AlreadyFused {
                    node: g.node(m).name.clone(),
                });
            }
        }
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let new_id = self.groups.len() as GroupId;
        // retire the old singleton groups
        for &m in &sorted {
            let old = self.node_group[m as usize];
            self.groups[old as usize].members.clear();
            self.node_group[m as usize] = new_id;
        }
        self.groups.push(Group {
            name: name.to_string(),
            members: sorted,
            fused: true,
        });
        Ok(new_id)
    }

    /// Record a backend-inserted reorder/reformat layer converting `tensor`;
    /// its traffic is one read + one write of that tensor, and `alias` (the
    /// runtime's name for the converted tensor) resolves back to `tensor`.
    pub fn add_reorder_layer(&mut self, name: &str, tensor: TensorId, alias: Option<&str>) {
        let bytes = self
            .graph()
            .tensor(tensor)
            .size_bytes_at(self.analysis.precision());
        self.reorders.push(ReorderLayer {
            name: name.to_string(),
            tensor,
            cost: CostEstimate {
                flops: 0,
                input_bytes: bytes,
                weight_bytes: 0,
                output_bytes: bytes,
            },
        });
        if let Some(a) = alias {
            self.set_tensor_alias(a, tensor);
        }
    }

    /// Attach a leftover no-op node (view/metadata) to an existing group —
    /// used after fusion so every original node stays mapped.
    pub fn absorb_into(&mut self, node: NodeId, group: GroupId) -> Result<(), FuseError> {
        if node as usize >= self.node_group.len() {
            return Err(FuseError::UnknownNode(node));
        }
        let old = self.node_group[node as usize];
        if old == group {
            return Ok(());
        }
        let idx = self.groups[old as usize]
            .members
            .iter()
            .position(|&m| m == node)
            .expect("node listed in its group");
        self.groups[old as usize].members.remove(idx);
        self.groups[group as usize].members.push(node);
        self.groups[group as usize].members.sort_unstable();
        self.node_group[node as usize] = group;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    pub fn group_of(&self, node: NodeId) -> GroupId {
        self.node_group[node as usize]
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id as usize]
    }

    /// Live groups (non-empty), in topological order of their first member.
    pub fn groups(&self) -> impl Iterator<Item = (GroupId, &Group)> {
        let mut ids: Vec<GroupId> = (0..self.groups.len() as GroupId)
            .filter(|&i| !self.groups[i as usize].members.is_empty())
            .collect();
        ids.sort_by_key(|&i| self.groups[i as usize].members[0]);
        ids.into_iter().map(move |i| (i, &self.groups[i as usize]))
    }

    pub fn reorder_layers(&self) -> &[ReorderLayer] {
        &self.reorders
    }

    /// Boundary input/output tensors of a group (activations only; weights
    /// are interior by definition).
    pub fn group_io(&self, id: GroupId) -> (Vec<TensorId>, Vec<TensorId>) {
        let g = self.graph();
        let members: HashSet<NodeId> = self.groups[id as usize].members.iter().copied().collect();
        let mut ins: Vec<TensorId> = Vec::new();
        let mut outs: Vec<TensorId> = Vec::new();
        for &m in &self.groups[id as usize].members {
            for &t in &g.node(m).inputs {
                if g.tensor(t).kind == TensorKind::Weight {
                    continue;
                }
                let produced_inside = self
                    .producers
                    .get(&t)
                    .map(|p| members.contains(p))
                    .unwrap_or(false);
                if !produced_inside && !ins.contains(&t) {
                    ins.push(t);
                }
            }
            for &t in &g.node(m).outputs {
                let all_inside = self
                    .consumers
                    .get(&t)
                    .map(|cs| !cs.is_empty() && cs.iter().all(|c| members.contains(c)))
                    .unwrap_or(false);
                let is_graph_output = g.outputs.contains(&t);
                if (!all_inside || is_graph_output) && !outs.contains(&t) {
                    outs.push(t);
                }
            }
        }
        (ins, outs)
    }

    /// Predicted cost of a group: FLOP is the sum over members; memory
    /// counts only boundary activations plus member weights — the paper's
    /// on-chip-intermediate assumption for `_FusedOp` ("intermediate tensors
    /// in the fused subgraphs will no longer need to be passed through
    /// DRAM").
    pub fn group_cost(&self, id: GroupId) -> CostEstimate {
        let grp = &self.groups[id as usize];
        if grp.members.is_empty() {
            return CostEstimate::default();
        }
        if grp.members.len() == 1 {
            return *self.analysis.node_cost(grp.members[0]);
        }
        let precision = self.analysis.precision();
        let g = self.graph();
        let mut cost = CostEstimate::default();
        for &m in &grp.members {
            let nc = self.analysis.node_cost(m);
            cost.flops += nc.flops;
            cost.weight_bytes += nc.weight_bytes;
        }
        let (ins, outs) = self.group_io(id);
        let members: std::collections::HashSet<NodeId> = grp.members.iter().copied().collect();
        for t in ins {
            // the fused kernel reads each boundary tensor once; honour the
            // per-consumer read rules (e.g. strided-conv partial reads) by
            // charging the largest in-group read of that tensor
            let read = self
                .consumers
                .get(&t)
                .map(|cs| {
                    cs.iter()
                        .filter(|c| members.contains(c))
                        .map(|&c| {
                            // a view member still pulls the full tensor into
                            // the fused kernel; real readers apply their
                            // sparse/strided read rules
                            if g.node(c).op.is_noop_at_inference() {
                                g.tensor(t).size_bytes_at(precision)
                            } else {
                                crate::cost::input_read_bytes(
                                    g,
                                    c,
                                    t,
                                    precision,
                                    crate::cost::CostOptions::default(),
                                )
                            }
                        })
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            cost.input_bytes += read;
        }
        for t in outs {
            cost.output_bytes += g.tensor(t).size_bytes_at(precision);
        }
        cost
    }

    /// Whole-model predicted cost at backend-layer granularity (fused
    /// groups + reorder layers).
    pub fn total_cost(&self) -> CostEstimate {
        let groups: CostEstimate = self.groups().map(|(id, _)| self.group_cost(id)).sum();
        let reorders: CostEstimate = self.reorders.iter().map(|r| r.cost).sum();
        groups + reorders
    }

    /// Every original node's group assignment, for partition checks.
    pub fn node_assignments(&self) -> &[GroupId] {
        &self.node_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::{DType, GraphBuilder};

    /// conv → add(residual) → relu, plus a side branch input
    fn block() -> Graph {
        let mut b = GraphBuilder::new("blk");
        let x = b.input("x", &[1, 8, 16, 16], DType::F32);
        let c = b.conv("conv", x, 8, 3, 1, 1, 1, false);
        let a = b.add("add", c, x);
        let r = b.relu("relu", a);
        b.output(r);
        b.finish()
    }

    fn repr(g: &Graph) -> OptimizedRepr<'_> {
        OptimizedRepr::new(AnalyzeRepr::new(g, DType::F32))
    }

    #[test]
    fn starts_identical_to_analysis() {
        let g = block();
        let o = repr(&g);
        assert_eq!(o.groups().count(), 3);
        let total = o.total_cost();
        assert_eq!(total, o.analysis().total());
    }

    #[test]
    fn subgraph_by_io_finds_the_block() {
        let g = block();
        let o = repr(&g);
        let x = g.tensor_by_name("x").unwrap();
        let out = g.node(2).output();
        let members = o.get_subgraph_ops_by_io(&[x], &[out]).unwrap();
        assert_eq!(members, vec![0, 1, 2]);
    }

    #[test]
    fn subgraph_by_io_rejects_escaping_io() {
        let mut b = GraphBuilder::new("two-in");
        let x = b.input("x", &[1, 4], DType::F32);
        let y = b.input("y", &[1, 4], DType::F32);
        let s = b.add("add", x, y);
        b.output(s);
        let g = b.finish();
        let o = repr(&g);
        let x = g.tensor_by_name("x").unwrap();
        let out = g.node(0).output();
        // declaring only x as input misses y → escape
        let err = o.get_subgraph_ops_by_io(&[x], &[out]).unwrap_err();
        assert!(matches!(err, FuseError::NotAClosedSubgraph { .. }));
    }

    #[test]
    fn fused_cost_drops_interior_traffic_but_keeps_flops() {
        let g = block();
        let mut o = repr(&g);
        let unfused = o.total_cost();
        let gid = o.set_fused_op("conv+add+relu", &[0, 1, 2]).unwrap();
        let fused = o.group_cost(gid);
        assert_eq!(fused.flops, unfused.flops);
        assert!(fused.memory_bytes() < unfused.memory_bytes());
        // boundary: reads x (once), writes relu output; conv weights kept
        let x_bytes = g.tensor(g.tensor_by_name("x").unwrap()).size_bytes();
        assert_eq!(fused.input_bytes, x_bytes);
        assert_eq!(fused.weight_bytes, 8 * 8 * 3 * 3 * 4);
    }

    #[test]
    fn group_io_reports_boundary() {
        let g = block();
        let mut o = repr(&g);
        let gid = o.set_fused_op("f", &[0, 1]).unwrap(); // conv+add, relu outside
        let (ins, outs) = o.group_io(gid);
        assert_eq!(ins, vec![g.tensor_by_name("x").unwrap()]);
        assert_eq!(outs, vec![g.node(1).output()]);
    }

    #[test]
    fn double_fusion_is_rejected() {
        let g = block();
        let mut o = repr(&g);
        o.set_fused_op("f1", &[0, 1]).unwrap();
        let err = o.set_fused_op("f2", &[1, 2]).unwrap_err();
        assert!(matches!(err, FuseError::AlreadyFused { .. }));
    }

    #[test]
    fn aliases_resolve_through_reorders() {
        let g = block();
        let mut o = repr(&g);
        let conv_out = g.node(0).output();
        o.add_reorder_layer("reorder_1", conv_out, Some("conv:0_r"));
        assert_eq!(o.resolve_tensor("conv:0_r"), Some(conv_out));
        assert_eq!(o.resolve_tensor("conv:0"), Some(conv_out));
        let r = &o.reorder_layers()[0];
        assert_eq!(r.cost.input_bytes, r.cost.output_bytes);
        assert!(r.cost.input_bytes > 0);
    }

    #[test]
    fn absorb_moves_membership() {
        let g = block();
        let mut o = repr(&g);
        let gid = o.set_fused_op("f", &[0, 1]).unwrap();
        o.absorb_into(2, gid).unwrap();
        assert_eq!(o.group_of(2), gid);
        assert_eq!(o.group(gid).members, vec![0, 1, 2]);
        // every node maps to exactly one live group
        let live: Vec<_> = o.groups().collect();
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn groups_iterate_in_topo_order_after_fusion() {
        let g = block();
        let mut o = repr(&g);
        o.set_fused_op("tail", &[1, 2]).unwrap();
        let names: Vec<&str> = o.groups().map(|(_, g)| g.name.as_str()).collect();
        assert_eq!(names, vec!["conv", "tail"]);
    }
}
