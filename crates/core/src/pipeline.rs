//! The profiling workflow as an explicit staged pipeline (paper Figure 1):
//!
//! ```text
//! compile ─▶ built-in profile ─▶ layer mapping ─▶ metric acquisition ─▶ assembly
//!   CompiledArtifact  BuiltinProfileArtifact  MappingArtifact  MetricsArtifact  ProfileReport
//! ```
//!
//! Each stage is a plain function from the previous stage's artifact to the
//! next, and every artifact is fully owned (no graph borrows), so a prefix
//! of the pipeline can be computed once and reused: the first three stages
//! depend only on (model, backend, platform, precision, batch, seed), while
//! the metric stage additionally depends on [`MetricMode`]. That split is
//! what lets `sweep_batches` and proof-serve profile the same configuration
//! in both modes — or resweep a grid — paying compile/profile/map once.
//!
//! Every stage body runs inside a `proof_obs` span named after the stage
//! ([`PipelineStage::name`]), inheriting trace and parent from whatever
//! span the caller has open — a serve job's root span, the CLI's `profile`
//! span — so one Chrome-trace file can show the whole stage hierarchy (see
//! [`crate::trace_export`]). Every produced [`ProfileReport`] still carries
//! a [`PipelineTrace`] with wall-clock per-stage timings (`proof profile
//! --trace`, serve's `/metrics` stage histograms); it is now derived from
//! the span records ([`PipelineTrace::from_spans`] reconstructs an equal
//! trace from a collector) rather than being a separate timing source. The
//! trace is observability metadata: it is excluded from the report's JSON
//! form and equality so reports stay bit-for-bit reproducible for a given
//! (spec, seed).

use crate::analysis::AnalyzeRepr;
use crate::fused::FuseError;
use crate::mapping::map_layers;
use crate::ncu_fix::corrected_layer_flops;
use crate::profile::{LayerReport, MetricMode, ProfileReport};
use crate::roofline::{categorize, LayerCategory, RooflineCeiling};
use crate::OptimizedRepr;
use proof_counters::profile_with_counters;
use proof_hw::Platform;
use proof_ir::Graph;
use proof_obs::SpanRecord;
use proof_runtime::{
    compile, BackendError, BackendFlavor, CompiledModel, LayerProfile, SessionConfig, Utilization,
};

// ---------------------------------------------------------------------------
// Unified error
// ---------------------------------------------------------------------------

/// The single error type crossing stage boundaries — replaces the previous
/// mix of [`BackendError`], [`FuseError`], and internal panics.
///
/// Errors split into *permanent* (resubmitting the same work fails the same
/// way) and *transient* ([`ProofError::is_transient`]; a retry of the same
/// run may succeed — workers retry these with backoff). Deadline overruns
/// get their own variant so callers can report `timed_out` distinctly.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofError {
    /// The backend rejected or failed to convert the model (compile stage).
    Backend(BackendError),
    /// A mapping-interface operation failed (map stage).
    Fuse(FuseError),
    /// Graph construction/partitioning failed (distributed profiling).
    Graph(String),
    /// A report could not be rendered to JSON losslessly.
    Serialize(String),
    /// A stage failed transiently; retrying the run may succeed.
    Transient(String),
    /// The run's deadline expired before `stage` could start.
    Timeout { stage: PipelineStage },
    /// The request was invalid before any stage ran (empty sweep, bad spec).
    InvalidSpec(String),
}

impl ProofError {
    /// Whether a retry of the same run may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, ProofError::Transient(_))
    }

    /// Whether this run failed by exceeding its deadline.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ProofError::Timeout { .. })
    }
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::Backend(e) => write!(f, "backend: {e}"),
            ProofError::Fuse(e) => write!(f, "mapping: {e}"),
            ProofError::Graph(m) => write!(f, "graph: {m}"),
            ProofError::Serialize(m) => write!(f, "serialize: {m}"),
            ProofError::Transient(m) => write!(f, "transient: {m}"),
            ProofError::Timeout { stage } => {
                write!(f, "deadline exceeded before stage '{}'", stage.name())
            }
            ProofError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for ProofError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProofError::Backend(e) => Some(e),
            ProofError::Fuse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BackendError> for ProofError {
    fn from(e: BackendError) -> Self {
        ProofError::Backend(e)
    }
}

impl From<FuseError> for ProofError {
    fn from(e: FuseError) -> Self {
        ProofError::Fuse(e)
    }
}

// ---------------------------------------------------------------------------
// Run context: deadlines, cooperative cancellation, fault hooks
// ---------------------------------------------------------------------------

/// Per-run execution context: an optional deadline checked cooperatively
/// *between* stages, and the seed that keys the `proof_obs` fault plan.
///
/// Stage bodies stay pure; the drivers call [`RunCtx::checkpoint`] before
/// each stage, which (in order) fires any planned fault for that stage —
/// panic, stall, or transient failure — and then checks the deadline, so a
/// stall that overshoots the deadline surfaces as [`ProofError::Timeout`]
/// exactly as a slow real stage would.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCtx {
    /// Absolute deadline; `None` never times out.
    pub deadline: Option<std::time::Instant>,
    /// Job seed, used to scope fault-plan entries (`site:kind@seed`).
    pub seed: u64,
}

impl RunCtx {
    /// No deadline; faults still fire for `seed`-scoped plan entries.
    pub fn unbounded(seed: u64) -> RunCtx {
        RunCtx {
            deadline: None,
            seed,
        }
    }

    /// Deadline `timeout` from now.
    pub fn with_timeout(seed: u64, timeout: std::time::Duration) -> RunCtx {
        RunCtx {
            deadline: Some(std::time::Instant::now() + timeout),
            seed,
        }
    }

    /// Cooperative cancellation point, called by the drivers before each
    /// stage. Fault hook first, deadline second (see type docs).
    pub fn checkpoint(&self, stage: PipelineStage) -> Result<(), ProofError> {
        proof_obs::fault::fire(stage.name(), self.seed).map_err(ProofError::Transient)?;
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => Err(ProofError::Timeout { stage }),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Stage identity and timing
// ---------------------------------------------------------------------------

/// The five stages of the paper's Figure-1 workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Backend compilation (fusion, lowering, reorder insertion).
    Compile,
    /// The runtime's built-in profiler: per-layer latencies + hints.
    BuiltinProfile,
    /// Backend-layer → model-layer mapping (§3.3).
    Map,
    /// FLOP/memory acquisition: analytical prediction or counter replay.
    Metrics,
    /// Roofline + report assembly.
    Assemble,
}

impl PipelineStage {
    /// All stages, in execution order.
    pub const ALL: [PipelineStage; 5] = [
        PipelineStage::Compile,
        PipelineStage::BuiltinProfile,
        PipelineStage::Map,
        PipelineStage::Metrics,
        PipelineStage::Assemble,
    ];

    /// Stable snake_case name (used as the `/metrics` histogram key and the
    /// stage span name).
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Compile => "compile",
            PipelineStage::BuiltinProfile => "builtin_profile",
            PipelineStage::Map => "map",
            PipelineStage::Metrics => "metrics",
            PipelineStage::Assemble => "assemble",
        }
    }

    /// Inverse of [`PipelineStage::name`].
    pub fn from_name(name: &str) -> Option<PipelineStage> {
        PipelineStage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Wall-clock spent in one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    pub stage: PipelineStage,
    pub duration_us: f64,
}

/// Per-stage timings of one pipeline run, in execution order. Stages served
/// from a cache simply don't appear (a serve stage-cache hit yields a trace
/// with only `metrics` and `assemble` entries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineTrace {
    pub stages: Vec<StageTiming>,
}

impl PipelineTrace {
    pub fn record(&mut self, stage: PipelineStage, duration_us: f64) {
        self.stages.push(StageTiming { stage, duration_us });
    }

    /// Total traced wall-clock, µs.
    pub fn total_us(&self) -> f64 {
        self.stages.iter().map(|s| s.duration_us).sum()
    }

    /// Duration of `stage` if it ran (first occurrence), µs.
    pub fn stage_us(&self, stage: PipelineStage) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.duration_us)
    }

    /// Human-readable per-stage breakdown (the `--trace` output).
    pub fn summary(&self) -> String {
        let total = self.total_us().max(1e-12);
        let mut out = String::from("stage            time        share\n");
        for t in &self.stages {
            out.push_str(&format!(
                "{:<16} {:>9.1} µs {:>5.1} %\n",
                t.stage.name(),
                t.duration_us,
                100.0 * t.duration_us / total
            ));
        }
        out.push_str(&format!("{:<16} {:>9.1} µs\n", "total", self.total_us()));
        out
    }

    /// Rebuild a trace from collected span records: stage-named spans, in
    /// start order, with their real wall durations. Given the spans of one
    /// pipeline run this equals the trace the drivers recorded directly.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a SpanRecord>) -> PipelineTrace {
        let mut staged: Vec<(&SpanRecord, PipelineStage)> = spans
            .into_iter()
            .filter_map(|s| PipelineStage::from_name(s.name).map(|stage| (s, stage)))
            .collect();
        staged.sort_by(|a, b| {
            a.0.start_us
                .total_cmp(&b.0.start_us)
                .then(a.0.id.cmp(&b.0.id))
        });
        PipelineTrace {
            stages: staged
                .into_iter()
                .map(|(s, stage)| StageTiming {
                    stage,
                    duration_us: s.wall_us,
                })
                .collect(),
        }
    }
}

/// Run one stage body inside a span named after the stage and record its
/// wall duration in `trace`. The span is the single timing source: the
/// trace entry is taken from the finished record, so a collector sees
/// exactly the durations the report carries.
fn timed<T>(trace: &mut PipelineTrace, stage: PipelineStage, f: impl FnOnce() -> T) -> T {
    let span = proof_obs::span(stage.name());
    let out = f();
    let rec = span.finish();
    if proof_obs::event_enabled(proof_obs::Level::Debug) {
        proof_obs::event(
            proof_obs::Level::Debug,
            "proof_core::pipeline",
            format!("stage {} finished in {:.1} µs", stage.name(), rec.wall_us),
            Vec::new(),
        );
    }
    trace.record(stage, rec.wall_us);
    out
}

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

/// Output of the compile stage: the backend's executable plan.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    pub compiled: CompiledModel,
    /// The model's batch size (leading input dimension).
    pub batch: u64,
}

/// Output of the built-in-profile stage: what the runtime's profiler prints.
#[derive(Debug, Clone)]
pub struct BuiltinProfileArtifact {
    /// Per-layer latency + fusion hint, in profile order.
    pub profile: Vec<LayerProfile>,
    /// For each profile entry, its index in the compiled plan — the
    /// Nsight-trace correlation key used by the measured metric stage.
    pub plan_indices: Vec<usize>,
    /// Time-averaged GPU/memory busy fractions (drives the power model).
    pub utilization: Utilization,
}

/// One backend layer after mapping, with everything later stages need —
/// fully owned, so a mapping can outlive the graph it was derived from.
#[derive(Debug, Clone)]
pub struct MappedLayerArtifact {
    pub backend_name: String,
    pub category: LayerCategory,
    pub avg_latency_us: f64,
    pub is_reorder: bool,
    /// Names of the original model nodes this backend layer executes.
    pub original_nodes: Vec<String>,
    /// Index in the compiled plan, if the profile entry correlates to one.
    pub plan_index: Option<usize>,
    /// Analytical Model-FLOP / Eq.-1 DRAM traffic (the Predicted metrics).
    pub predicted_flops: u64,
    pub predicted_bytes: u64,
}

/// Output of the mapping stage.
#[derive(Debug, Clone)]
pub struct MappingArtifact {
    pub layers: Vec<MappedLayerArtifact>,
    /// Backend layers whose members could not be resolved (diagnostic).
    pub unresolved: usize,
    /// Node count of the source graph (sizes the modeled analysis cost).
    pub node_count: usize,
}

/// Output of the metric-acquisition stage.
#[derive(Debug, Clone)]
pub struct MetricsArtifact {
    pub mode: MetricMode,
    /// (FLOPs, DRAM bytes) per mapped layer, aligned with
    /// [`MappingArtifact::layers`]. Measured values carry the Tensor-Core
    /// correction already applied.
    pub per_layer: Vec<(u64, u64)>,
    /// Extra wall-clock spent collecting metrics (Table 4 "Prof. time").
    pub metric_collection_s: f64,
    /// Mapped layers with no counter correlation (adds to the diagnostic).
    pub unresolved: usize,
}

// ---------------------------------------------------------------------------
// Stage functions
// ---------------------------------------------------------------------------

/// Stage 1 — compile the model on the backend.
pub fn stage_compile(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
) -> Result<CompiledArtifact, ProofError> {
    let compiled = compile(g, flavor, platform, cfg)?;
    Ok(CompiledArtifact {
        compiled,
        batch: g.batch_size(),
    })
}

/// Stage 2 — collect the runtime's built-in profile and utilization.
pub fn stage_builtin_profile(c: &CompiledArtifact) -> BuiltinProfileArtifact {
    // plan indices of profiled (non-empty) layers, in profile order
    let plan_indices: Vec<usize> = c
        .compiled
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kernels.is_empty())
        .map(|(i, _)| i)
        .collect();
    BuiltinProfileArtifact {
        profile: c.compiled.builtin_profile(),
        plan_indices,
        utilization: c.compiled.utilization(),
    }
}

/// Stage 3 — map backend layers to model layers and extract the owned
/// per-layer facts (category, members, plan correlation, predicted costs).
pub fn stage_map(
    g: &Graph,
    profile: &BuiltinProfileArtifact,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
) -> MappingArtifact {
    let analysis = AnalyzeRepr::new(g, cfg.precision);
    let mapping = map_layers(OptimizedRepr::new(analysis), &profile.profile, flavor);

    let mut layers = Vec::with_capacity(mapping.layers.len());
    let mut reorder_seen = 0usize;
    for ml in &mapping.layers {
        let (predicted_flops, predicted_bytes) = match ml.group {
            Some(gid) => {
                let c = mapping.repr.group_cost(gid);
                (c.flops, c.memory_bytes())
            }
            None => {
                let c = mapping.repr.reorder_layers()[reorder_seen].cost;
                (c.flops, c.memory_bytes())
            }
        };
        if ml.is_reorder {
            reorder_seen += 1;
        }
        let (category, original_nodes) = match ml.group {
            Some(gid) => {
                let members = &mapping.repr.group(gid).members;
                (
                    categorize(g, members),
                    members.iter().map(|&m| g.node(m).name.clone()).collect(),
                )
            }
            None => (LayerCategory::DataCopy, Vec::new()),
        };
        layers.push(MappedLayerArtifact {
            backend_name: ml.backend_name.clone(),
            category,
            avg_latency_us: ml.avg_latency_us,
            is_reorder: ml.is_reorder,
            original_nodes,
            // checked positional lookup: an unresolvable profile entry used
            // to desynchronize this correlation and panic downstream
            plan_index: profile.plan_indices.get(ml.profile_index).copied(),
            predicted_flops,
            predicted_bytes,
        });
    }

    MappingArtifact {
        layers,
        unresolved: mapping.unresolved.len(),
        node_count: g.nodes.len(),
    }
}

/// Stage 4 — acquire FLOP/memory metrics, analytically or from counters.
pub fn stage_metrics(
    c: &CompiledArtifact,
    mapping: &MappingArtifact,
    mode: MetricMode,
) -> MetricsArtifact {
    match mode {
        MetricMode::Predicted => MetricsArtifact {
            mode,
            per_layer: mapping
                .layers
                .iter()
                .map(|l| (l.predicted_flops, l.predicted_bytes))
                .collect(),
            // Deterministic cost model for the analytical pass (~50 µs per
            // node): the paper's point is that prediction overhead is
            // negligible vs counter replay, and a modeled figure keeps
            // reports bit-for-bit reproducible for a given (spec, seed) —
            // which content-addressed caching relies on.
            metric_collection_s: mapping.node_count as f64 * 50e-6,
            unresolved: 0,
        },
        MetricMode::Measured => {
            let ncu = profile_with_counters(&c.compiled, c.compiled.config.seed);
            let per_plan_layer = ncu.per_layer();
            let mut unresolved = 0usize;
            let per_layer = mapping
                .layers
                .iter()
                .map(|l| match l.plan_index {
                    Some(pi) => {
                        let (reported, mma, bytes) =
                            per_plan_layer.get(&pi).copied().unwrap_or_default();
                        (
                            corrected_layer_flops(
                                reported,
                                mma,
                                c.compiled.platform.arch,
                                c.compiled.config.precision,
                            ),
                            bytes,
                        )
                    }
                    None => {
                        unresolved += 1;
                        (0, 0)
                    }
                })
                .collect();
            MetricsArtifact {
                mode,
                per_layer,
                metric_collection_s: ncu.profiling_overhead_s,
                unresolved,
            }
        }
    }
}

/// Stage 5 — assemble the roofline report. The trace is attached by the
/// driver afterwards so it can include this stage's own duration.
pub fn stage_assemble(
    c: &CompiledArtifact,
    profile: &BuiltinProfileArtifact,
    mapping: &MappingArtifact,
    metrics: &MetricsArtifact,
) -> ProfileReport {
    let layers: Vec<LayerReport> = mapping
        .layers
        .iter()
        .zip(&metrics.per_layer)
        .map(|(l, &(flops, bytes))| LayerReport {
            name: l.backend_name.clone(),
            category: l.category,
            latency_us: l.avg_latency_us,
            flops,
            memory_bytes: bytes,
            is_reorder: l.is_reorder,
            original_nodes: l.original_nodes.clone(),
        })
        .collect();

    let total_latency_ms = layers.iter().map(|l| l.latency_us).sum::<f64>() / 1e3;
    let total_flops = layers.iter().map(|l| l.flops).sum();
    let total_memory_bytes = layers.iter().map(|l| l.memory_bytes).sum();

    ProfileReport {
        model: c.compiled.model_name.clone(),
        platform: c.compiled.platform.name.clone(),
        backend: c.compiled.flavor.name().to_string(),
        precision: c.compiled.config.precision.short_name().to_string(),
        batch: c.batch,
        mode: metrics.mode,
        layers,
        ceiling: RooflineCeiling::theoretical(&c.compiled.platform, c.compiled.config.precision),
        total_latency_ms,
        total_flops,
        total_memory_bytes,
        metric_collection_s: metrics.metric_collection_s,
        util_gpu: profile.utilization.gpu,
        util_mem: profile.utilization.mem,
        unresolved_layers: mapping.unresolved + metrics.unresolved,
        trace: PipelineTrace::default(),
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// The mode-independent pipeline prefix (compile + built-in profile + map),
/// reusable across [`MetricMode`]s, batch-sweep points, and serve jobs.
#[derive(Debug, Clone)]
pub struct PreparedStages {
    pub compiled: CompiledArtifact,
    pub profile: BuiltinProfileArtifact,
    pub mapping: MappingArtifact,
    /// Timings of the three prefix stages.
    pub trace: PipelineTrace,
}

/// Run the pipeline prefix once, unbounded ([`prepare_stages_ctx`] with no
/// deadline; the fault plan still fires for the config's seed).
pub fn prepare_stages(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
) -> Result<PreparedStages, ProofError> {
    prepare_stages_ctx(g, platform, flavor, cfg, &RunCtx::unbounded(cfg.seed))
}

/// Run the pipeline prefix under a [`RunCtx`]: the deadline is checked (and
/// planned faults fire) at the boundary before each stage.
pub fn prepare_stages_ctx(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    ctx: &RunCtx,
) -> Result<PreparedStages, ProofError> {
    let mut trace = PipelineTrace::default();
    ctx.checkpoint(PipelineStage::Compile)?;
    let compiled = timed(&mut trace, PipelineStage::Compile, || {
        stage_compile(g, platform, flavor, cfg)
    })?;
    ctx.checkpoint(PipelineStage::BuiltinProfile)?;
    let profile = timed(&mut trace, PipelineStage::BuiltinProfile, || {
        stage_builtin_profile(&compiled)
    });
    ctx.checkpoint(PipelineStage::Map)?;
    let mapping = timed(&mut trace, PipelineStage::Map, || {
        stage_map(g, &profile, flavor, cfg)
    });
    Ok(PreparedStages {
        compiled,
        profile,
        mapping,
        trace,
    })
}

/// Run the mode-dependent suffix (metrics + assembly) on a prepared prefix,
/// unbounded. The returned report's trace holds the prefix timings (as paid
/// when the prefix was built) plus this run's metric/assembly timings.
pub fn run_metric_stages(
    prep: &PreparedStages,
    mode: MetricMode,
) -> Result<ProfileReport, ProofError> {
    let seed = prep.compiled.compiled.config.seed;
    run_metric_stages_ctx(prep, mode, &RunCtx::unbounded(seed))
}

/// [`run_metric_stages`] under a [`RunCtx`] (deadline + fault checkpoints
/// before the metric and assembly stages).
pub fn run_metric_stages_ctx(
    prep: &PreparedStages,
    mode: MetricMode,
    ctx: &RunCtx,
) -> Result<ProfileReport, ProofError> {
    let mut trace = prep.trace.clone();
    ctx.checkpoint(PipelineStage::Metrics)?;
    let metrics = timed(&mut trace, PipelineStage::Metrics, || {
        stage_metrics(&prep.compiled, &prep.mapping, mode)
    });
    ctx.checkpoint(PipelineStage::Assemble)?;
    let mut report = timed(&mut trace, PipelineStage::Assemble, || {
        stage_assemble(&prep.compiled, &prep.profile, &prep.mapping, &metrics)
    });
    report.trace = trace;
    Ok(report)
}

/// Run all five stages end to end (what [`crate::profile_model`] drives).
pub fn run_pipeline(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    mode: MetricMode,
) -> Result<ProfileReport, ProofError> {
    run_pipeline_ctx(g, platform, flavor, cfg, mode, &RunCtx::unbounded(cfg.seed))
}

/// [`run_pipeline`] under a [`RunCtx`] — the cancellable end-to-end driver.
pub fn run_pipeline_ctx(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    mode: MetricMode,
    ctx: &RunCtx,
) -> Result<ProfileReport, ProofError> {
    let prep = prepare_stages_ctx(g, platform, flavor, cfg, ctx)?;
    run_metric_stages_ctx(&prep, mode, ctx)
}

/// Profile one configuration in both modes off a single shared prefix —
/// compile/profile/map are paid once instead of twice.
pub fn profile_both_modes(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
) -> Result<(ProfileReport, ProfileReport), ProofError> {
    let prep = prepare_stages(g, platform, flavor, cfg)?;
    Ok((
        run_metric_stages(&prep, MetricMode::Predicted)?,
        run_metric_stages(&prep, MetricMode::Measured)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_model;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::LayerHint;

    fn prep(model: ModelId, batch: u64) -> PreparedStages {
        let g = model.build(batch);
        prepare_stages(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
        )
        .unwrap()
    }

    #[test]
    fn staged_run_matches_monolithic_driver_in_both_modes() {
        let g = ModelId::ResNet50.build(4);
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        let prep = prepare_stages(&g, &platform, BackendFlavor::TrtLike, &cfg).unwrap();
        for mode in [MetricMode::Predicted, MetricMode::Measured] {
            let staged = run_metric_stages(&prep, mode).unwrap();
            let mono = profile_model(&g, &platform, BackendFlavor::TrtLike, &cfg, mode).unwrap();
            assert_eq!(staged, mono);
            assert_eq!(staged.to_json(), mono.to_json());
        }
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in PipelineStage::ALL {
            assert_eq!(PipelineStage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(PipelineStage::from_name("no_such_stage"), None);
    }

    #[test]
    fn trace_covers_all_five_stages_in_order() {
        let g = ModelId::MobileNetV2x05.build(1);
        let r = run_pipeline(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap();
        let order: Vec<PipelineStage> = r.trace.stages.iter().map(|t| t.stage).collect();
        assert_eq!(order, PipelineStage::ALL.to_vec());
        assert!(r.trace.stages.iter().all(|t| t.duration_us >= 0.0));
        assert!(r.trace.total_us() > 0.0);
        let s = r.trace.summary();
        assert!(s.contains("builtin_profile") && s.contains("total"));
    }

    #[test]
    fn prefix_reuse_keeps_prefix_timings_and_appends_suffix() {
        let prep = prep(ModelId::ShuffleNetV2x05, 1);
        let a = run_metric_stages(&prep, MetricMode::Predicted).unwrap();
        let b = run_metric_stages(&prep, MetricMode::Measured).unwrap();
        for r in [&a, &b] {
            assert_eq!(r.trace.stages.len(), 5);
            // the shared prefix timings are carried over verbatim
            assert_eq!(r.trace.stages[..3].to_vec(), prep.trace.stages);
        }
        assert_eq!(
            a.trace.stage_us(PipelineStage::Compile),
            b.trace.stage_us(PipelineStage::Compile)
        );
    }

    #[test]
    fn reorder_layers_cost_as_data_copies() {
        // ORT-like plans insert reorder layers on ResNet (conv inputs)
        let g = ModelId::ResNet50.build(1);
        let r = run_pipeline(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::OrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap();
        let reorders: Vec<_> = r.layers.iter().filter(|l| l.is_reorder).collect();
        assert!(!reorders.is_empty());
        for l in &reorders {
            assert_eq!(l.category, LayerCategory::DataCopy);
            assert!(l.original_nodes.is_empty());
            // a pure copy: bytes move, no FLOPs
            assert_eq!(l.flops, 0);
            assert!(l.memory_bytes > 0);
        }
        assert_eq!(r.unresolved_layers, 0);
    }

    #[test]
    fn unresolvable_profile_entry_counts_as_unresolved_not_panic() {
        // a profile entry naming nodes that don't exist cannot be mapped;
        // downstream plan-index correlation must degrade, not panic
        let g = ModelId::MobileNetV2x05.build(1);
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        let compiled = stage_compile(&g, &platform, BackendFlavor::TrtLike, &cfg).unwrap();
        let mut profile = stage_builtin_profile(&compiled);
        // corrupt the middle of the profile: an alien layer the mapper
        // cannot resolve, desynchronizing position-based correlation
        profile.profile.insert(
            profile.profile.len() / 2,
            LayerProfile {
                name: "alien_layer".into(),
                avg_latency_us: 1.0,
                hint: LayerHint::NodeNames(vec!["no_such_node".into()]),
            },
        );
        let mapping = stage_map(&g, &profile, BackendFlavor::TrtLike, &cfg);
        assert_eq!(mapping.unresolved, 1);
        // the extra entry shifts every later profile position by one, so the
        // final mapped layer falls off the end of the plan correlation — the
        // checked lookup degrades it to None instead of indexing out of
        // bounds (the old positional code's latent panic)
        let lost = mapping
            .layers
            .iter()
            .filter(|l| l.plan_index.is_none())
            .count();
        assert_eq!(lost, 1);
        let metrics = stage_metrics(&compiled, &mapping, MetricMode::Measured);
        assert_eq!(metrics.unresolved, 1);
        let report = stage_assemble(&compiled, &profile, &mapping, &metrics);
        assert_eq!(report.unresolved_layers, 2);
        assert!(report.total_flops > 0);
    }

    #[test]
    fn missing_plan_index_degrades_to_zero_metrics() {
        let prep = prep(ModelId::MobileNetV2x05, 1);
        let mut mapping = prep.mapping.clone();
        mapping.layers[0].plan_index = None;
        let metrics = stage_metrics(&prep.compiled, &mapping, MetricMode::Measured);
        assert_eq!(metrics.unresolved, 1);
        assert_eq!(metrics.per_layer[0], (0, 0));
        let report = stage_assemble(&prep.compiled, &prep.profile, &mapping, &metrics);
        assert!(report.unresolved_layers >= 1);
    }

    #[test]
    fn proof_error_displays_and_chains_sources() {
        let e = ProofError::from(BackendError::ConversionFailure("boom".into()));
        assert!(e.to_string().contains("backend"));
        assert!(std::error::Error::source(&e).is_some());
        let f = ProofError::from(FuseError::EmptyMemberSet);
        assert!(f.to_string().contains("mapping"));
        assert!(ProofError::Graph("bad cut".into())
            .to_string()
            .contains("bad cut"));
        assert!(ProofError::Serialize("nan".into())
            .to_string()
            .contains("nan"));
    }

    #[test]
    fn error_taxonomy_splits_transient_and_timeout() {
        assert!(ProofError::Transient("flaky".into()).is_transient());
        assert!(!ProofError::Transient("flaky".into()).is_timeout());
        let t = ProofError::Timeout {
            stage: PipelineStage::Metrics,
        };
        assert!(t.is_timeout() && !t.is_transient());
        assert!(t.to_string().contains("metrics"));
        for permanent in [
            ProofError::Graph("g".into()),
            ProofError::Serialize("s".into()),
            ProofError::InvalidSpec("empty".into()),
        ] {
            assert!(!permanent.is_transient() && !permanent.is_timeout());
        }
    }

    #[test]
    fn expired_deadline_cancels_between_stages() {
        let g = ModelId::MobileNetV2x05.build(1);
        let platform = PlatformId::A100.spec();
        let cfg = SessionConfig::new(DType::F16);
        // an already-expired deadline trips the very first checkpoint
        let ctx = RunCtx {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            seed: cfg.seed,
        };
        match prepare_stages_ctx(&g, &platform, BackendFlavor::TrtLike, &cfg, &ctx) {
            Err(ProofError::Timeout { stage }) => assert_eq!(stage, PipelineStage::Compile),
            other => panic!("expected timeout, got {other:?}"),
        }
        // a prefix built in time can still expire before the suffix runs
        let prep = prepare_stages(&g, &platform, BackendFlavor::TrtLike, &cfg).unwrap();
        match run_metric_stages_ctx(&prep, MetricMode::Predicted, &ctx) {
            Err(ProofError::Timeout { stage }) => assert_eq!(stage, PipelineStage::Metrics),
            other => panic!("expected timeout, got {other:?}"),
        }
        // unbounded contexts never time out
        assert!(run_metric_stages_ctx(&prep, MetricMode::Predicted, &RunCtx::unbounded(0)).is_ok());
    }
}
