//! The top-level PRoof workflow (paper Figure 1): compile on a backend,
//! collect latencies from its built-in profiler, map backend layers to the
//! model, obtain FLOP/memory per layer (analytically predicted or measured
//! via the counter profiler + correction), and assemble the end-to-end and
//! layer-wise rooflines.

use crate::analysis::AnalyzeRepr;
use crate::mapping::map_layers;
use crate::ncu_fix::corrected_layer_flops;
use crate::roofline::{categorize, LayerCategory, RooflineCeiling, RooflineChart, RooflinePoint};
use crate::OptimizedRepr;
use proof_counters::profile_with_counters;
use proof_hw::Platform;
use proof_ir::Graph;
use proof_runtime::{compile, BackendError, BackendFlavor, SessionConfig};
use serde::{Deserialize, Serialize};

/// Where FLOP/memory numbers come from (the paper's two modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricMode {
    /// PRoof's analytical model — platform-independent, negligible overhead.
    Predicted,
    /// The vendor counter profiler (simulated NCU) + PRoof's TC correction.
    Measured,
}

/// One profiled + mapped backend layer with its metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    pub name: String,
    pub category: LayerCategory,
    pub latency_us: f64,
    pub flops: u64,
    pub memory_bytes: u64,
    pub is_reorder: bool,
    /// Names of the original model nodes this backend layer executes.
    pub original_nodes: Vec<String>,
}

impl LayerReport {
    pub fn achieved_gflops(&self) -> f64 {
        self.flops as f64 / (self.latency_us * 1e-6).max(1e-12) / 1e9
    }

    pub fn achieved_bw_gbs(&self) -> f64 {
        self.memory_bytes as f64 / (self.latency_us * 1e-6).max(1e-12) / 1e9
    }

    pub fn intensity(&self) -> f64 {
        if self.memory_bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.memory_bytes as f64
        }
    }
}

/// The complete profiling result for one (model, platform, backend, config).
/// Round-trips losslessly through JSON (`to_json` / `from_json`), which is
/// what lets proof-serve persist reports as content-addressed artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub model: String,
    pub platform: String,
    pub backend: String,
    pub precision: String,
    pub batch: u64,
    pub mode: MetricMode,
    pub layers: Vec<LayerReport>,
    pub ceiling: RooflineCeiling,
    pub total_latency_ms: f64,
    pub total_flops: u64,
    pub total_memory_bytes: u64,
    /// Extra wall-clock spent collecting metrics (Table 4 "Prof. time"):
    /// counter-replay time in Measured mode, analysis time in Predicted.
    pub metric_collection_s: f64,
    /// Time-averaged GPU/memory busy fractions (drives the power model).
    pub util_gpu: f64,
    pub util_mem: f64,
    /// Backend layers the mapping could not resolve (diagnostic; 0 expected).
    pub unresolved_layers: usize,
}

impl ProfileReport {
    pub fn achieved_gflops(&self) -> f64 {
        self.total_flops as f64 / (self.total_latency_ms * 1e-3).max(1e-12) / 1e9
    }

    pub fn achieved_bw_gbs(&self) -> f64 {
        self.total_memory_bytes as f64 / (self.total_latency_ms * 1e-3).max(1e-12) / 1e9
    }

    pub fn intensity(&self) -> f64 {
        if self.total_memory_bytes == 0 {
            0.0
        } else {
            self.total_flops as f64 / self.total_memory_bytes as f64
        }
    }

    /// Throughput in inferences (images/sequences) per second.
    pub fn throughput_per_s(&self) -> f64 {
        self.batch as f64 / (self.total_latency_ms * 1e-3).max(1e-12)
    }

    /// The end-to-end roofline point (one marker in the paper's Figure 4).
    pub fn end_to_end_point(&self, label: &str) -> RooflinePoint {
        RooflinePoint {
            label: label.to_string(),
            category: LayerCategory::Other,
            flops: self.total_flops,
            bytes: self.total_memory_bytes,
            latency_us: self.total_latency_ms * 1e3,
            latency_share: 1.0,
        }
    }

    /// The layer-wise roofline chart (the paper's Figures 5/6/8).
    pub fn layerwise_chart(&self, title: &str) -> RooflineChart {
        let mut chart = RooflineChart::new(title, self.ceiling.clone());
        for l in &self.layers {
            if l.latency_us <= 0.0 {
                continue;
            }
            chart.points.push(RooflinePoint {
                label: l.name.clone(),
                category: l.category,
                flops: l.flops,
                bytes: l.memory_bytes,
                latency_us: l.latency_us,
                latency_share: 0.0,
            });
        }
        chart.finalize();
        chart
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Run the full PRoof workflow on one configuration.
pub fn profile_model(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    mode: MetricMode,
) -> Result<ProfileReport, BackendError> {
    let compiled = compile(g, flavor, platform, cfg)?;
    let profile = compiled.builtin_profile();

    let analysis = AnalyzeRepr::new(g, cfg.precision);
    let mapping = map_layers(OptimizedRepr::new(analysis), &profile, flavor);
    // Deterministic cost model for the analytical pass (~50 µs/node): the
    // paper's point is that prediction overhead is negligible vs counter
    // replay, and a modeled figure keeps reports bit-for-bit reproducible
    // for a given (spec, seed) — which content-addressed caching relies on.
    let analysis_s = g.nodes.len() as f64 * 50e-6;

    // measured mode: counter metrics aggregated per backend layer + TC fix
    let (measured, overhead_s) = match mode {
        MetricMode::Measured => {
            let ncu = profile_with_counters(&compiled, cfg.seed);
            let overhead = ncu.profiling_overhead_s;
            (Some(ncu.per_layer()), overhead)
        }
        MetricMode::Predicted => (None, analysis_s),
    };
    // indices of profiled (non-empty) layers in the compiled plan, in
    // profile order — the Nsight-trace correlation key
    let profiled_indices: Vec<usize> = compiled
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kernels.is_empty())
        .map(|(i, _)| i)
        .collect();

    let mut layers = Vec::with_capacity(mapping.layers.len());
    let mut reorder_seen = 0usize;
    for (i, ml) in mapping.layers.iter().enumerate() {
        let (flops, bytes) = match (&measured, ml.group) {
            (Some(per_layer), _) => {
                let (reported, mma, bytes) = per_layer
                    .get(&profiled_indices[i])
                    .copied()
                    .unwrap_or_default();
                (
                    corrected_layer_flops(reported, mma, platform.arch, cfg.precision),
                    bytes,
                )
            }
            (None, Some(gid)) => {
                let c = mapping.repr.group_cost(gid);
                (c.flops, c.memory_bytes())
            }
            (None, None) => {
                let c = mapping.repr.reorder_layers()[reorder_seen].cost;
                (c.flops, c.memory_bytes())
            }
        };
        if ml.is_reorder {
            reorder_seen += 1;
        }
        let (category, original_nodes) = match ml.group {
            Some(gid) => {
                let members = &mapping.repr.group(gid).members;
                (
                    categorize(g, members),
                    members.iter().map(|&m| g.node(m).name.clone()).collect(),
                )
            }
            None => (LayerCategory::DataCopy, Vec::new()),
        };
        layers.push(LayerReport {
            name: ml.backend_name.clone(),
            category,
            latency_us: ml.avg_latency_us,
            flops,
            memory_bytes: bytes,
            is_reorder: ml.is_reorder,
            original_nodes,
        });
    }

    let total_latency_ms = layers.iter().map(|l| l.latency_us).sum::<f64>() / 1e3;
    let total_flops = layers.iter().map(|l| l.flops).sum();
    let total_memory_bytes = layers.iter().map(|l| l.memory_bytes).sum();
    let util = compiled.utilization();

    Ok(ProfileReport {
        model: g.name.clone(),
        platform: platform.name.clone(),
        backend: flavor.name().to_string(),
        precision: cfg.precision.short_name().to_string(),
        batch: g.batch_size(),
        mode,
        layers,
        ceiling: RooflineCeiling::theoretical(platform, cfg.precision),
        total_latency_ms,
        total_flops,
        total_memory_bytes,
        metric_collection_s: overhead_s,
        util_gpu: util.gpu,
        util_mem: util.mem,
        unresolved_layers: mapping.unresolved.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn run(mode: MetricMode) -> ProfileReport {
        let g = ModelId::ResNet50.build(8);
        profile_model(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn predicted_profile_is_complete_and_consistent() {
        let r = run(MetricMode::Predicted);
        assert_eq!(r.unresolved_layers, 0);
        assert!(r.total_latency_ms > 0.0);
        assert!(r.total_flops > 0);
        let layer_sum: u64 = r.layers.iter().map(|l| l.flops).sum();
        assert_eq!(layer_sum, r.total_flops);
        // ResNet-50 at bs=8 ≈ 8 × 8.2 GFLOP
        let gflop = r.total_flops as f64 / 1e9;
        assert!((gflop - 8.0 * 8.2).abs() < 8.0, "{gflop}");
    }

    #[test]
    fn measured_mode_applies_tc_correction_and_charges_overhead() {
        let p = run(MetricMode::Predicted);
        let m = run(MetricMode::Measured);
        // corrected measured FLOP within 2× of model FLOP (hardware > model)
        let ratio = m.total_flops as f64 / p.total_flops as f64;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio {ratio}");
        // counter profiling costs minutes; analysis costs (sub)seconds
        assert!(m.metric_collection_s > 60.0);
        assert!(p.metric_collection_s < 5.0);
    }

    #[test]
    fn end_to_end_point_sits_under_the_roofline() {
        let r = run(MetricMode::Predicted);
        let pt = r.end_to_end_point("resnet50");
        let attainable = r.ceiling.attainable_gflops(pt.intensity());
        assert!(
            pt.achieved_gflops() <= attainable * 1.05,
            "{} > {}",
            pt.achieved_gflops(),
            attainable
        );
        assert!(pt.achieved_gflops() > 0.0);
    }

    #[test]
    fn layerwise_chart_has_normalized_shares_and_categories() {
        let r = run(MetricMode::Predicted);
        let chart = r.layerwise_chart("ResNet-50 on A100");
        let share_sum: f64 = chart.points.iter().map(|p| p.latency_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(chart
            .points
            .iter()
            .any(|p| p.category == LayerCategory::OtherConv));
    }

    #[test]
    fn json_roundtrips_structurally() {
        let r = run(MetricMode::Predicted);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["model"], "resnet50");
        assert!(v["layers"].as_array().unwrap().len() > 10);
    }

    #[test]
    fn json_roundtrips_losslessly() {
        let r = run(MetricMode::Predicted);
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
        // and the re-serialized JSON is byte-identical (canonical key order)
        assert_eq!(r.to_json(), back.to_json());
    }
}
