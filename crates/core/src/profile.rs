//! The top-level PRoof workflow (paper Figure 1): compile on a backend,
//! collect latencies from its built-in profiler, map backend layers to the
//! model, obtain FLOP/memory per layer (analytically predicted or measured
//! via the counter profiler + correction), and assemble the end-to-end and
//! layer-wise rooflines.
//!
//! [`profile_model`] is a thin driver over the staged pipeline in
//! [`crate::pipeline`] — callers that profile the same configuration more
//! than once (mode pairs, batch sweeps, serve resubmissions) should use the
//! stage functions directly to reuse the compile/profile/map prefix.

use crate::pipeline::{run_pipeline, PipelineTrace, ProofError};
use crate::roofline::{LayerCategory, RooflineCeiling, RooflineChart, RooflinePoint};
use proof_hw::Platform;
use proof_ir::Graph;
use proof_runtime::{BackendFlavor, SessionConfig};
use serde::{Deserialize, Serialize};

/// Where FLOP/memory numbers come from (the paper's two modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricMode {
    /// PRoof's analytical model — platform-independent, negligible overhead.
    Predicted,
    /// The vendor counter profiler (simulated NCU) + PRoof's TC correction.
    Measured,
}

/// One profiled + mapped backend layer with its metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    pub name: String,
    pub category: LayerCategory,
    pub latency_us: f64,
    pub flops: u64,
    pub memory_bytes: u64,
    pub is_reorder: bool,
    /// Names of the original model nodes this backend layer executes.
    pub original_nodes: Vec<String>,
}

impl LayerReport {
    pub fn achieved_gflops(&self) -> f64 {
        self.flops as f64 / (self.latency_us * 1e-6).max(1e-12) / 1e9
    }

    pub fn achieved_bw_gbs(&self) -> f64 {
        self.memory_bytes as f64 / (self.latency_us * 1e-6).max(1e-12) / 1e9
    }

    pub fn intensity(&self) -> f64 {
        if self.memory_bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.memory_bytes as f64
        }
    }
}

/// The complete profiling result for one (model, platform, backend, config).
/// Round-trips losslessly through JSON (`to_json` / `from_json`), which is
/// what lets proof-serve persist reports as content-addressed artifacts.
///
/// The [`trace`](ProfileReport::trace) field carries wall-clock per-stage
/// timings of the run that produced the report. It is observability
/// metadata, deliberately excluded from both the JSON form and equality:
/// two runs of the same (spec, seed) yield equal, byte-identical reports
/// even though their stage timings differ.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub model: String,
    pub platform: String,
    pub backend: String,
    pub precision: String,
    pub batch: u64,
    pub mode: MetricMode,
    pub layers: Vec<LayerReport>,
    pub ceiling: RooflineCeiling,
    pub total_latency_ms: f64,
    pub total_flops: u64,
    pub total_memory_bytes: u64,
    /// Extra wall-clock spent collecting metrics (Table 4 "Prof. time"):
    /// counter-replay time in Measured mode, analysis time in Predicted.
    pub metric_collection_s: f64,
    /// Time-averaged GPU/memory busy fractions (drives the power model).
    pub util_gpu: f64,
    pub util_mem: f64,
    /// Backend layers the mapping could not resolve (diagnostic; 0 expected).
    pub unresolved_layers: usize,
    /// Per-stage timings of the pipeline run that produced this report
    /// (not serialized, not part of equality).
    pub trace: PipelineTrace,
}

// Hand-written (instead of derived) so `trace` stays out of the canonical
// JSON form — the vendored derive has no `#[serde(skip)]`.
impl Serialize for ProfileReport {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::value::new_object();
        m.insert("model".to_string(), self.model.to_value());
        m.insert("platform".to_string(), self.platform.to_value());
        m.insert("backend".to_string(), self.backend.to_value());
        m.insert("precision".to_string(), self.precision.to_value());
        m.insert("batch".to_string(), self.batch.to_value());
        m.insert("mode".to_string(), self.mode.to_value());
        m.insert("layers".to_string(), self.layers.to_value());
        m.insert("ceiling".to_string(), self.ceiling.to_value());
        m.insert(
            "total_latency_ms".to_string(),
            self.total_latency_ms.to_value(),
        );
        m.insert("total_flops".to_string(), self.total_flops.to_value());
        m.insert(
            "total_memory_bytes".to_string(),
            self.total_memory_bytes.to_value(),
        );
        m.insert(
            "metric_collection_s".to_string(),
            self.metric_collection_s.to_value(),
        );
        m.insert("util_gpu".to_string(), self.util_gpu.to_value());
        m.insert("util_mem".to_string(), self.util_mem.to_value());
        m.insert(
            "unresolved_layers".to_string(),
            self.unresolved_layers.to_value(),
        );
        serde::Value::Object(m)
    }
}

impl Deserialize for ProfileReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("ProfileReport: expected object"))?;
        Ok(ProfileReport {
            model: serde::de::field(obj, "model")?,
            platform: serde::de::field(obj, "platform")?,
            backend: serde::de::field(obj, "backend")?,
            precision: serde::de::field(obj, "precision")?,
            batch: serde::de::field(obj, "batch")?,
            mode: serde::de::field(obj, "mode")?,
            layers: serde::de::field(obj, "layers")?,
            ceiling: serde::de::field(obj, "ceiling")?,
            total_latency_ms: serde::de::field(obj, "total_latency_ms")?,
            total_flops: serde::de::field(obj, "total_flops")?,
            total_memory_bytes: serde::de::field(obj, "total_memory_bytes")?,
            metric_collection_s: serde::de::field(obj, "metric_collection_s")?,
            util_gpu: serde::de::field(obj, "util_gpu")?,
            util_mem: serde::de::field(obj, "util_mem")?,
            unresolved_layers: serde::de::field(obj, "unresolved_layers")?,
            trace: PipelineTrace::default(),
        })
    }
}

impl PartialEq for ProfileReport {
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model
            && self.platform == other.platform
            && self.backend == other.backend
            && self.precision == other.precision
            && self.batch == other.batch
            && self.mode == other.mode
            && self.layers == other.layers
            && self.ceiling == other.ceiling
            && self.total_latency_ms == other.total_latency_ms
            && self.total_flops == other.total_flops
            && self.total_memory_bytes == other.total_memory_bytes
            && self.metric_collection_s == other.metric_collection_s
            && self.util_gpu == other.util_gpu
            && self.util_mem == other.util_mem
            && self.unresolved_layers == other.unresolved_layers
        // trace intentionally excluded: timing jitter must not make two
        // otherwise-identical reports unequal
    }
}

/// Locate a non-finite float in a serialized value tree, if any.
fn non_finite_path(v: &serde::Value, path: &str) -> Option<String> {
    match v {
        serde::Value::Number(serde::Number::F(f)) if !f.is_finite() => Some(path.to_string()),
        serde::Value::Array(items) => items
            .iter()
            .enumerate()
            .find_map(|(i, x)| non_finite_path(x, &format!("{path}[{i}]"))),
        serde::Value::Object(m) => m
            .iter()
            .find_map(|(k, x)| non_finite_path(x, &format!("{path}.{k}"))),
        _ => None,
    }
}

impl ProfileReport {
    pub fn achieved_gflops(&self) -> f64 {
        self.total_flops as f64 / (self.total_latency_ms * 1e-3).max(1e-12) / 1e9
    }

    pub fn achieved_bw_gbs(&self) -> f64 {
        self.total_memory_bytes as f64 / (self.total_latency_ms * 1e-3).max(1e-12) / 1e9
    }

    pub fn intensity(&self) -> f64 {
        if self.total_memory_bytes == 0 {
            0.0
        } else {
            self.total_flops as f64 / self.total_memory_bytes as f64
        }
    }

    /// Throughput in inferences (images/sequences) per second.
    pub fn throughput_per_s(&self) -> f64 {
        self.batch as f64 / (self.total_latency_ms * 1e-3).max(1e-12)
    }

    /// The end-to-end roofline point (one marker in the paper's Figure 4).
    pub fn end_to_end_point(&self, label: &str) -> RooflinePoint {
        RooflinePoint {
            label: label.to_string(),
            category: LayerCategory::Other,
            flops: self.total_flops,
            bytes: self.total_memory_bytes,
            latency_us: self.total_latency_ms * 1e3,
            latency_share: 1.0,
        }
    }

    /// The layer-wise roofline chart (the paper's Figures 5/6/8).
    pub fn layerwise_chart(&self, title: &str) -> RooflineChart {
        let mut chart = RooflineChart::new(title, self.ceiling.clone());
        for l in &self.layers {
            if l.latency_us <= 0.0 {
                continue;
            }
            chart.points.push(RooflinePoint {
                label: l.name.clone(),
                category: l.category,
                flops: l.flops,
                bytes: l.memory_bytes,
                latency_us: l.latency_us,
                latency_share: 0.0,
            });
        }
        chart.finalize();
        chart
    }

    /// Canonical pretty JSON, or an error if the report cannot round-trip.
    /// The vendored serializer renders non-finite floats as `null`, which
    /// would silently corrupt a stored artifact — surface that as
    /// [`ProofError::Serialize`] instead.
    pub fn try_to_json(&self) -> Result<String, ProofError> {
        let v = Serialize::to_value(self);
        if let Some(path) = non_finite_path(&v, "report") {
            return Err(ProofError::Serialize(format!(
                "non-finite number at {path} would not survive a JSON round-trip"
            )));
        }
        serde_json::to_string_pretty(&v).map_err(|e| ProofError::Serialize(e.to_string()))
    }

    pub fn to_json(&self) -> String {
        self.try_to_json().expect("report serialization")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Run the full PRoof workflow on one configuration — the five pipeline
/// stages end to end. See [`crate::pipeline`] for the staged interface.
pub fn profile_model(
    g: &Graph,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    mode: MetricMode,
) -> Result<ProfileReport, ProofError> {
    run_pipeline(g, platform, flavor, cfg, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn run(mode: MetricMode) -> ProfileReport {
        let g = ModelId::ResNet50.build(8);
        profile_model(
            &g,
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn predicted_profile_is_complete_and_consistent() {
        let r = run(MetricMode::Predicted);
        assert_eq!(r.unresolved_layers, 0);
        assert!(r.total_latency_ms > 0.0);
        assert!(r.total_flops > 0);
        let layer_sum: u64 = r.layers.iter().map(|l| l.flops).sum();
        assert_eq!(layer_sum, r.total_flops);
        // ResNet-50 at bs=8 ≈ 8 × 8.2 GFLOP
        let gflop = r.total_flops as f64 / 1e9;
        assert!((gflop - 8.0 * 8.2).abs() < 8.0, "{gflop}");
    }

    #[test]
    fn measured_mode_applies_tc_correction_and_charges_overhead() {
        let p = run(MetricMode::Predicted);
        let m = run(MetricMode::Measured);
        // corrected measured FLOP within 2× of model FLOP (hardware > model)
        let ratio = m.total_flops as f64 / p.total_flops as f64;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio {ratio}");
        // counter profiling costs minutes; analysis costs (sub)seconds
        assert!(m.metric_collection_s > 60.0);
        assert!(p.metric_collection_s < 5.0);
    }

    #[test]
    fn end_to_end_point_sits_under_the_roofline() {
        let r = run(MetricMode::Predicted);
        let pt = r.end_to_end_point("resnet50");
        let attainable = r.ceiling.attainable_gflops(pt.intensity());
        assert!(
            pt.achieved_gflops() <= attainable * 1.05,
            "{} > {}",
            pt.achieved_gflops(),
            attainable
        );
        assert!(pt.achieved_gflops() > 0.0);
    }

    #[test]
    fn layerwise_chart_has_normalized_shares_and_categories() {
        let r = run(MetricMode::Predicted);
        let chart = r.layerwise_chart("ResNet-50 on A100");
        let share_sum: f64 = chart.points.iter().map(|p| p.latency_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(chart
            .points
            .iter()
            .any(|p| p.category == LayerCategory::OtherConv));
    }

    #[test]
    fn json_roundtrips_structurally() {
        let r = run(MetricMode::Predicted);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["model"], "resnet50");
        assert!(v["layers"].as_array().unwrap().len() > 10);
    }

    #[test]
    fn json_roundtrips_losslessly() {
        let r = run(MetricMode::Predicted);
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
        // and the re-serialized JSON is byte-identical (canonical key order)
        assert_eq!(r.to_json(), back.to_json());
    }

    #[test]
    fn trace_is_populated_but_stays_out_of_json_and_equality() {
        let r = run(MetricMode::Predicted);
        assert_eq!(r.trace.stages.len(), 5);
        assert!(!r.to_json().contains("\"trace\""));
        // a round-trip drops the trace without breaking equality
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert!(back.trace.stages.is_empty());
        assert_eq!(r, back);
    }

    #[test]
    fn try_to_json_rejects_non_finite_values() {
        let mut r = run(MetricMode::Predicted);
        assert!(r.try_to_json().is_ok());
        r.total_latency_ms = f64::NAN;
        let err = r.try_to_json().unwrap_err();
        assert!(matches!(err, ProofError::Serialize(_)), "{err}");
        assert!(err.to_string().contains("total_latency_ms"), "{err}");
    }
}
