//! Text/CSV reporting: the non-graphical half of the PRoof data viewer.

use crate::profile::ProfileReport;
use crate::roofline::RooflineChart;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&format!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Human-readable per-layer summary: top-N layers by latency plus totals —
/// the textual view of a layer-wise roofline.
pub fn profile_summary(report: &ProfileReport, top_n: usize) -> String {
    let mut t = TextTable::new(&[
        "backend layer",
        "category",
        "latency (us)",
        "share",
        "GFLOP",
        "mem (MB)",
        "GFLOP/s",
        "GB/s",
        "AI",
    ]);
    let total_us = report.total_latency_ms * 1e3;
    let mut order: Vec<usize> = (0..report.layers.len()).collect();
    order.sort_by(|&a, &b| {
        report.layers[b]
            .latency_us
            .total_cmp(&report.layers[a].latency_us)
    });
    for &i in order.iter().take(top_n) {
        let l = &report.layers[i];
        let name = if l.name.len() > 44 {
            format!("{}...", &l.name[..41])
        } else {
            l.name.clone()
        };
        t.row(vec![
            name,
            l.category.label().to_string(),
            format!("{:.1}", l.latency_us),
            format!("{:.1}%", 100.0 * l.latency_us / total_us.max(1e-12)),
            format!("{:.3}", l.flops as f64 / 1e9),
            format!("{:.2}", l.memory_bytes as f64 / 1e6),
            format!("{:.1}", l.achieved_gflops()),
            format!("{:.1}", l.achieved_bw_gbs()),
            format!("{:.2}", l.intensity()),
        ]);
    }
    format!(
        "{} on {} [{}] {} bs={} ({:?})\n\
         end-to-end: {:.3} ms | {:.3} GFLOP | {:.2} MB | {:.1} GFLOP/s | {:.1} GB/s | AI {:.2}\n\
         metric collection: {:.2} s | unresolved layers: {}\n\n{}",
        report.model,
        report.platform,
        report.backend,
        report.precision,
        report.batch,
        report.mode,
        report.total_latency_ms,
        report.total_flops as f64 / 1e9,
        report.total_memory_bytes as f64 / 1e6,
        report.achieved_gflops(),
        report.achieved_bw_gbs(),
        report.intensity(),
        report.metric_collection_s,
        report.unresolved_layers,
        t.render()
    )
}

/// Side-by-side comparison of several profiles (precision sweeps, backend
/// comparisons, platform shoot-outs) as one table.
pub fn compare_summary(reports: &[&ProfileReport]) -> String {
    let mut t = TextTable::new(&[
        "model",
        "platform",
        "backend",
        "prec",
        "bs",
        "latency (ms)",
        "thr (/s)",
        "GFLOP/s",
        "GB/s",
        "AI",
        "layers",
    ]);
    for r in reports {
        t.row(vec![
            r.model.clone(),
            r.platform.clone(),
            r.backend.to_string(),
            r.precision.clone(),
            r.batch.to_string(),
            format!("{:.3}", r.total_latency_ms),
            format!("{:.0}", r.throughput_per_s()),
            format!("{:.1}", r.achieved_gflops()),
            format!("{:.1}", r.achieved_bw_gbs()),
            format!("{:.2}", r.intensity()),
            r.layers.len().to_string(),
        ]);
    }
    t.render()
}

/// CSV export of a roofline chart (the data-viewer's table view).
pub fn chart_to_csv(chart: &RooflineChart) -> String {
    let mut out = String::from(
        "label,category,flops,bytes,latency_us,latency_share,intensity,achieved_gflops,achieved_gbs\n",
    );
    for p in &chart.points {
        out.push_str(&format!(
            "{:?},{},{},{},{:.3},{:.6},{:.6},{:.3},{:.3}\n",
            p.label,
            p.category.label(),
            p.flops,
            p.bytes,
            p.latency_us,
            p.latency_share,
            p.intensity(),
            p.achieved_gflops(),
            p.achieved_bw_gbs()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_model, MetricMode};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{BackendFlavor, SessionConfig};

    fn report() -> ProfileReport {
        profile_model(
            &ModelId::ResNet50.build(4),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap()
    }

    #[test]
    fn table_alignment_and_separator() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn summary_contains_totals_and_top_layers() {
        let r = report();
        let s = profile_summary(&r, 10);
        assert!(s.contains("resnet50 on NVIDIA A100"));
        assert!(s.contains("end-to-end:"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn compare_summary_has_one_row_per_report() {
        let r = report();
        let s = compare_summary(&[&r, &r, &r]);
        assert_eq!(s.lines().count(), 2 + 3); // header + separator + rows
        assert!(s.contains("resnet50"));
    }

    #[test]
    fn csv_has_one_line_per_point_plus_header() {
        let r = report();
        let chart = r.layerwise_chart("t");
        let csv = chart_to_csv(&chart);
        assert_eq!(csv.lines().count(), chart.points.len() + 1);
        assert!(csv.starts_with("label,category"));
    }
}
