//! Achieved-roofline-peak measurement (paper Table 6): PRoof assembles "a
//! pseudo ONNX model including a series of MatMul and memory copy operators
//! of different sizes", runs it through the backend, and takes the best
//! per-layer achieved FLOP/s and bandwidth as the *achieved* ceilings.

use crate::pipeline::ProofError;
use crate::profile::{profile_model, MetricMode};
use proof_hw::Platform;
use proof_ir::{DType, Graph, GraphBuilder};
use proof_runtime::{BackendFlavor, SessionConfig};
use serde::Serialize;

/// Measured achievable ceilings.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AchievedPeak {
    pub gflops: f64,
    pub bw_gbs: f64,
}

/// Build the pseudo benchmark model: square MatMuls of growing size (peak
/// compute) and large elementwise copies (peak bandwidth).
pub fn pseudo_peak_model(matmul_sizes: &[u64], copy_mib: &[u64]) -> Graph {
    let mut b = GraphBuilder::new("proof-peak-pseudo");
    for (i, &n) in matmul_sizes.iter().enumerate() {
        let x = b.input(&format!("mm_in_{i}"), &[n, n], DType::F32);
        let w = b.weight(&format!("mm_w_{i}"), &[n, n]);
        let y = b.matmul(&format!("peak_matmul_{i}"), x, w);
        b.output(y);
    }
    for (i, &mib) in copy_mib.iter().enumerate() {
        let elems = mib * 1024 * 1024 / 4;
        let x = b.input(&format!("copy_in_{i}"), &[elems], DType::F32);
        let y = b.relu(&format!("peak_copy_{i}"), x);
        b.output(y);
    }
    b.finish()
}

/// Default sizes: scaled so every platform (Raspberry Pi included) gets at
/// least one chip-filling matmul and copy.
pub fn default_pseudo_model() -> Graph {
    pseudo_peak_model(&[1024, 2048, 4096, 8192], &[16, 64, 256])
}

/// Measure the achieved roofline peaks of a platform under a backend.
pub fn measure_achieved_peak(
    platform: &Platform,
    flavor: BackendFlavor,
    precision: DType,
) -> Result<AchievedPeak, ProofError> {
    let g = default_pseudo_model();
    let cfg = SessionConfig::new(precision);
    let report = profile_model(&g, platform, flavor, &cfg, MetricMode::Predicted)?;
    let mut best_gflops = 0.0f64;
    let mut best_bw = 0.0f64;
    for l in &report.layers {
        if l.name.contains("matmul") {
            best_gflops = best_gflops.max(l.achieved_gflops());
        } else {
            best_bw = best_bw.max(l.achieved_bw_gbs());
        }
    }
    Ok(AchievedPeak {
        gflops: best_gflops,
        bw_gbs: best_bw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::{ClockConfig, PlatformId};

    #[test]
    fn pseudo_model_builds_and_validates() {
        let g = default_pseudo_model();
        g.validate().unwrap();
        assert!(g.node_count() >= 7);
    }

    #[test]
    fn achieved_peaks_are_below_theoretical_but_close() {
        let p = PlatformId::A100.spec();
        let peak = measure_achieved_peak(&p, BackendFlavor::TrtLike, DType::F16).unwrap();
        let theo_gflops = p.peak_flops(DType::F16, true) / 1e9;
        let theo_bw = p.theoretical_bw() / 1e9;
        assert!(peak.gflops < theo_gflops);
        assert!(
            peak.gflops > 0.6 * theo_gflops,
            "{} of {}",
            peak.gflops,
            theo_gflops
        );
        assert!(peak.bw_gbs < theo_bw);
        assert!(peak.bw_gbs > 0.5 * theo_bw);
    }

    #[test]
    fn orin_peaks_scale_with_clocks_like_table6() {
        let orin = PlatformId::OrinNx.spec();
        let hi = measure_achieved_peak(&orin, BackendFlavor::TrtLike, DType::F16).unwrap();
        let lo_gpu = measure_achieved_peak(
            &orin.with_clocks(ClockConfig::new(510, 3199)),
            BackendFlavor::TrtLike,
            DType::F16,
        )
        .unwrap();
        // GPU clock down → FLOP/s down proportionally, bandwidth ~unchanged
        assert!((lo_gpu.gflops / hi.gflops - 510.0 / 918.0).abs() < 0.05);
        assert!((lo_gpu.bw_gbs / hi.bw_gbs - 1.0).abs() < 0.05);
        let lo_mem = measure_achieved_peak(
            &orin.with_clocks(ClockConfig::new(918, 2133)),
            BackendFlavor::TrtLike,
            DType::F16,
        )
        .unwrap();
        assert!((lo_mem.bw_gbs / hi.bw_gbs - 2133.0 / 3199.0).abs() < 0.05);
    }

    #[test]
    fn rpi_peak_respects_the_axi_cap() {
        let rpi = PlatformId::RaspberryPi4.spec();
        let peak = measure_achieved_peak(&rpi, BackendFlavor::OrtLike, DType::F32).unwrap();
        assert!(peak.bw_gbs < 5.5);
        assert!(peak.gflops < 48.0);
    }
}
