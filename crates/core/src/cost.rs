//! Operator defines: per-operator FLOP and memory-traffic prediction rules
//! (the paper's §3.2.1).
//!
//! FLOP counts are **Model FLOP** — "only the calculations required to
//! accomplish the model inference" (§4.2) — as opposed to the Hardware FLOP
//! a counter profiler reports. Memory traffic follows Eq. 1 with the paper's
//! special rules: strided convolutions read only the touched fraction of
//! their input, `Shape`/`Reshape`-like ops move nothing, and gathers read
//! only the indexed rows.

use proof_ir::{DType, Graph, Node, NodeId, OpKind, TensorKind};
use serde::{Deserialize, Serialize};

/// FLOP cost of one scalar application of each basic operation.
///
/// The paper: basic computations are mapped "to the theoretical number of
/// FLOP according to the underlying device characteristics" — a MAC is 2
/// FLOP; transcendentals vary per device but their share is small, so a
/// single representative table suffices (and is swappable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlopTable {
    pub mac: u64,
    pub add: u64,
    pub mul: u64,
    pub cmp: u64,
    pub div: u64,
    pub sqrt: u64,
    pub exp: u64,
    pub log: u64,
    pub erf: u64,
    pub tanh: u64,
    pub pow: u64,
}

impl Default for FlopTable {
    fn default() -> Self {
        FlopTable {
            mac: 2,
            add: 1,
            mul: 1,
            cmp: 1,
            div: 4,
            sqrt: 4,
            exp: 8,
            log: 8,
            erf: 8,
            tanh: 12,
            pow: 8,
        }
    }
}

impl FlopTable {
    fn sigmoid(&self) -> u64 {
        // 1 / (1 + e^-x)
        self.exp + self.add + self.div
    }
}

/// Predicted cost of one operator (or fused group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Model FLOP (integer OP for quantized models; the paper's footnote 1).
    pub flops: u64,
    /// Activation bytes read from DRAM.
    pub input_bytes: u64,
    /// Parameter bytes read from DRAM (counted once — weights don't scale
    /// with batch, which is exactly Eq. 1's `Σ params` term).
    pub weight_bytes: u64,
    /// Bytes written to DRAM.
    pub output_bytes: u64,
}

impl CostEstimate {
    /// Total DRAM traffic (Eq. 1's `Memory`).
    pub fn memory_bytes(&self) -> u64 {
        self.input_bytes + self.weight_bytes + self.output_bytes
    }

    /// Arithmetic intensity in FLOP/byte; 0 when no traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let m = self.memory_bytes();
        if m == 0 {
            0.0
        } else {
            self.flops as f64 / m as f64
        }
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &CostEstimate) {
        self.flops += other.flops;
        self.input_bytes += other.input_bytes;
        self.weight_bytes += other.weight_bytes;
        self.output_bytes += other.output_bytes;
    }
}

impl std::ops::Add for CostEstimate {
    type Output = CostEstimate;
    fn add(mut self, rhs: CostEstimate) -> CostEstimate {
        self.accumulate(&rhs);
        self
    }
}

impl std::iter::Sum for CostEstimate {
    fn sum<I: Iterator<Item = CostEstimate>>(iter: I) -> CostEstimate {
        iter.fold(CostEstimate::default(), |a, b| a + b)
    }
}

fn bytes_of(g: &Graph, id: proof_ir::TensorId, precision: DType) -> u64 {
    g.tensor(id).size_bytes_at(precision)
}

/// Default memory rule: read every input, write every output, at the
/// execution precision; weights are attributed to `weight_bytes`.
fn default_memory(g: &Graph, node: &Node, precision: DType) -> CostEstimate {
    let mut c = CostEstimate::default();
    for &i in &node.inputs {
        let b = bytes_of(g, i, precision);
        if g.tensor(i).kind == TensorKind::Weight {
            c.weight_bytes += b;
        } else {
            c.input_bytes += b;
        }
    }
    for &o in &node.outputs {
        c.output_bytes += bytes_of(g, o, precision);
    }
    c
}

/// Toggles for the memory-rule ablations (everything on by default; the
/// `exp_ablation` harness quantifies what each rule buys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostOptions {
    /// Strided convolutions read only the touched input fraction (§3.2.1).
    pub strided_conv_rule: bool,
    /// Gather/Slice read only the indexed rows / kept range.
    pub sparse_read_rule: bool,
}

impl Default for CostOptions {
    fn default() -> Self {
        CostOptions {
            strided_conv_rule: true,
            sparse_read_rule: true,
        }
    }
}

/// Predict the cost of one node (the *operator define* dispatch).
pub fn op_cost(g: &Graph, node_id: NodeId, precision: DType, t: &FlopTable) -> CostEstimate {
    op_cost_with(g, node_id, precision, t, CostOptions::default())
}

/// [`op_cost`] with explicit rule toggles.
pub fn op_cost_with(
    g: &Graph,
    node_id: NodeId,
    precision: DType,
    t: &FlopTable,
    opts: CostOptions,
) -> CostEstimate {
    let node = g.node(node_id);
    let out_numel: u64 = node.outputs.iter().map(|&o| g.tensor(o).numel()).sum();
    let in_numel: u64 = node
        .inputs
        .iter()
        .filter(|&&i| g.tensor(i).kind != TensorKind::Weight)
        .map(|&i| g.tensor(i).numel())
        .sum();

    // -- no-ops: zero everything (paper: Shape/Reshape move no content) --
    if node.op.is_noop_at_inference() {
        return CostEstimate::default();
    }

    let mut c = default_memory(g, node, precision);
    use OpKind::*;
    c.flops = match node.op {
        Conv => {
            let w = g.tensor(node.inputs[1]);
            let k_elems: u64 = w.shape.dims()[1..].iter().product(); // Cin/g × kh × kw
            let mut f = out_numel * k_elems * t.mac;
            if node.inputs.len() > 2 {
                f += out_numel * t.add; // bias
            }
            // strided-conv input-read correction: with stride > kernel not
            // all input pixels are touched (paper §3.2.1)
            let kernel = node.attrs.ints("kernel_shape").unwrap_or(&[1, 1]).to_vec();
            let strides = node.attrs.ints("strides").unwrap_or(&[1, 1]).to_vec();
            let mut frac = 1.0f64;
            for (k, s) in kernel.iter().zip(&strides) {
                frac *= (*k as f64 / *s as f64).min(1.0);
            }
            if frac < 1.0 && opts.strided_conv_rule {
                c.input_bytes = (c.input_bytes as f64 * frac).round() as u64;
            }
            f
        }
        Gemm => {
            let a = &g.tensor(node.inputs[0]).shape;
            let k = if node.attrs.int_or("transA", 0) != 0 {
                a.dims()[0]
            } else {
                a.dims()[1]
            };
            let mut f = out_numel * k * t.mac;
            if node.inputs.len() > 2 {
                f += out_numel * t.add;
            }
            f
        }
        MatMul => {
            let k = *g.tensor(node.inputs[0]).shape.dims().last().unwrap_or(&1);
            out_numel * k * t.mac
        }
        BatchNormalization => out_numel * t.mac, // folded scale+shift
        LayerNormalization | GroupNormalization => {
            // mean + variance accumulation, then (x-μ)·inv_std·γ+β
            out_numel * (2 * t.add + t.sub_cost() + 2 * t.mul + t.add)
                + row_count(g, node) * (t.div + t.sqrt)
        }
        Relu | Abs | Neg => out_numel * t.cmp,
        LeakyRelu => out_numel * (t.cmp + t.mul),
        Clip => out_numel * 2 * t.cmp,
        Sigmoid => out_numel * t.sigmoid(),
        HardSigmoid => out_numel * (t.mul + t.add + 2 * t.cmp),
        HardSwish => out_numel * (t.mul + t.add + 2 * t.cmp + t.mul),
        Tanh => out_numel * t.tanh,
        Erf => out_numel * t.erf,
        Exp => out_numel * t.exp,
        Log => out_numel * t.log,
        Sqrt => out_numel * t.sqrt,
        Reciprocal => out_numel * t.div,
        Gelu => out_numel * (t.div + t.erf + t.add + 2 * t.mul),
        Softplus => out_numel * (t.exp + t.add + t.log),
        Add | Sub => out_numel * t.add,
        Mul => out_numel * t.mul,
        Div => out_numel * t.div,
        Pow => out_numel * t.pow,
        Min | Max | Equal | Greater | Less | Where => out_numel * t.cmp,
        Softmax => out_numel * (2 * t.cmp + t.add + t.exp + t.div),
        ReduceMean => in_numel * t.add + out_numel * t.div,
        ReduceSum => in_numel * t.add,
        ReduceMax | ArgMax => in_numel * t.cmp,
        MaxPool => out_numel * window_elems(node) * t.cmp,
        AveragePool => out_numel * (window_elems(node) * t.add + t.div),
        GlobalAveragePool => in_numel * t.add + out_numel * t.div,
        // pure data movement: 0 Model FLOP (format conversion work is
        // implementation overhead, i.e. Hardware FLOP)
        Transpose | Concat | Split | Slice | Gather | Expand | Tile | Pad | Resize | Cast => 0,
        // no-ops handled above
        Reshape | Flatten | Squeeze | Unsqueeze | Identity | Dropout | Shape | Constant
        | ConstantOfShape | Range => 0,
    };

    // -- memory special cases --
    if !opts.sparse_read_rule {
        return c;
    }
    match node.op {
        // read only the gathered rows, plus the (integer) index tensor
        Gather => {
            let idx = g.tensor(node.inputs[1]);
            c.input_bytes = idx.size_bytes(); // indices keep native width
            let gathered: u64 = node
                .outputs
                .iter()
                .map(|&o| bytes_of(g, o, precision))
                .sum();
            if g.tensor(node.inputs[0]).kind == TensorKind::Weight {
                c.weight_bytes = gathered;
            } else {
                c.input_bytes += gathered;
            }
        }
        // read only the kept slice
        Slice => {
            c.input_bytes = node
                .outputs
                .iter()
                .map(|&o| bytes_of(g, o, precision))
                .sum();
        }
        // nearest-neighbour upsampling reads each source pixel once
        Resize | Expand | Tile => {
            // default already reads the (smaller) input once — keep it
        }
        _ => {}
    }
    c
}

impl FlopTable {
    fn sub_cost(&self) -> u64 {
        self.add
    }
}

/// Bytes `node` reads from one specific input tensor, honouring the same
/// special rules as [`op_cost`] (strided-conv partial reads, gather/slice
/// sparse reads). Used for fused-group boundary costing so `_FusedOp`
/// memory stays consistent with per-node predictions.
pub fn input_read_bytes(
    g: &Graph,
    node_id: NodeId,
    tensor: proof_ir::TensorId,
    precision: DType,
    opts: CostOptions,
) -> u64 {
    let node = g.node(node_id);
    let full = bytes_of(g, tensor, precision);
    if node.op.is_noop_at_inference() {
        return 0;
    }
    match node.op {
        OpKind::Conv if Some(&tensor) == node.inputs.first() && opts.strided_conv_rule => {
            let kernel = node.attrs.ints("kernel_shape").unwrap_or(&[1, 1]).to_vec();
            let strides = node.attrs.ints("strides").unwrap_or(&[1, 1]).to_vec();
            let mut frac = 1.0f64;
            for (k, s) in kernel.iter().zip(&strides) {
                frac *= (*k as f64 / *s as f64).min(1.0);
            }
            (full as f64 * frac).round() as u64
        }
        OpKind::Slice if opts.sparse_read_rule => node
            .outputs
            .iter()
            .map(|&o| bytes_of(g, o, precision))
            .sum(),
        OpKind::Gather if opts.sparse_read_rule => {
            if Some(&tensor) == node.inputs.get(1) {
                g.tensor(tensor).size_bytes() // indices at native width
            } else {
                node.outputs
                    .iter()
                    .map(|&o| bytes_of(g, o, precision))
                    .sum()
            }
        }
        _ => full,
    }
}

/// Number of reduced rows for row-wise norm ops (per-row sqrt/div).
fn row_count(g: &Graph, node: &Node) -> u64 {
    let s = &g.tensor(node.inputs[0]).shape;
    match s.dims().last() {
        Some(&last) if last > 0 => s.numel() / last,
        _ => 0,
    }
}

/// Window element count for pooling ops.
fn window_elems(node: &Node) -> u64 {
    node.attrs
        .ints("kernel_shape")
        .map(|k| k.iter().map(|&x| x as u64).product())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::{DType, GraphBuilder};

    fn table() -> FlopTable {
        FlopTable::default()
    }

    #[test]
    fn conv_flops_match_textbook_formula() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 3, 224, 224], DType::F32);
        let y = b.conv("c", x, 64, 7, 2, 3, 1, false);
        b.output(y);
        let g = b.finish();
        let c = op_cost(&g, 0, DType::F32, &table());
        // 2 × N·M·Ho·Wo × Cin·k²  = 2 × 1·64·112·112 × 3·49
        assert_eq!(c.flops, 2 * 64 * 112 * 112 * 3 * 49);
        // memory: input + weight + output at fp32
        assert_eq!(c.input_bytes, 3 * 224 * 224 * 4);
        assert_eq!(c.weight_bytes, 64 * 3 * 7 * 7 * 4);
        assert_eq!(c.output_bytes, 64 * 112 * 112 * 4);
    }

    #[test]
    fn depthwise_conv_flops_scale_with_groups() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 32, 56, 56], DType::F32);
        let y = b.conv("dw", x, 32, 3, 1, 1, 32, false);
        b.output(y);
        let g = b.finish();
        let c = op_cost(&g, 0, DType::F32, &table());
        // per-output MACs = (Cin/g)·k² = 9
        assert_eq!(c.flops, 2 * 32 * 56 * 56 * 9);
    }

    #[test]
    fn strided_pointwise_conv_reads_quarter_of_input() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 16, 32, 32], DType::F32);
        let y = b.conv("pw", x, 32, 1, 2, 0, 1, false);
        b.output(y);
        let g = b.finish();
        let c = op_cost(&g, 0, DType::F32, &table());
        // k=1, s=2: only 1/4 of input pixels are touched
        assert_eq!(c.input_bytes, 16 * 32 * 32 * 4 / 4);
    }

    #[test]
    fn matmul_and_gemm_flops() {
        let mut b = GraphBuilder::new("t");
        let a = b.input("a", &[8, 197, 192], DType::F32);
        let w = b.weight("w", &[192, 576]);
        let y = b.matmul("mm", a, w);
        let x2 = b.input("x2", &[128, 2048], DType::F32);
        let z = b.linear("fc", x2, 1000, true);
        b.output(y);
        b.output(z);
        let g = b.finish();
        let mm = op_cost(&g, 0, DType::F32, &table());
        assert_eq!(mm.flops, 2 * 8 * 197 * 192 * 576);
        assert_eq!(mm.weight_bytes, 192 * 576 * 4);
        let gemm = op_cost(&g, 1, DType::F32, &table());
        assert_eq!(gemm.flops, 2 * 128 * 2048 * 1000 + 128 * 1000);
    }

    #[test]
    fn precision_halves_float_traffic_but_not_flops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 64], DType::F32);
        let y = b.relu("r", x);
        b.output(y);
        let g = b.finish();
        let c32 = op_cost(&g, 0, DType::F32, &table());
        let c16 = op_cost(&g, 0, DType::F16, &table());
        assert_eq!(c16.flops, c32.flops);
        assert_eq!(c16.input_bytes * 2, c32.input_bytes);
        assert_eq!(c16.output_bytes * 2, c32.output_bytes);
    }

    #[test]
    fn reshape_and_shape_are_free() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4, 64], DType::F32);
        let r = b.reshape("rs", x, &[8, 32]);
        let s = b.push("sh", OpKind::Shape, proof_ir::Attributes::new(), &[r]);
        b.output(s);
        let g = b.finish();
        for id in 0..2 {
            let c = op_cost(&g, id, DType::F32, &table());
            assert_eq!(c, CostEstimate::default(), "node {id}");
        }
    }

    #[test]
    fn transpose_moves_bytes_without_flops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 58, 2, 784], DType::F32);
        let y = b.transpose("tr", x, &[0, 2, 1, 3]);
        b.output(y);
        let g = b.finish();
        let c = op_cost(&g, 0, DType::F32, &table());
        assert_eq!(c.flops, 0);
        assert_eq!(c.input_bytes, 2 * 58 * 2 * 784 * 4);
        assert_eq!(c.output_bytes, c.input_bytes);
    }

    #[test]
    fn gather_reads_only_indexed_rows() {
        let mut b = GraphBuilder::new("t");
        let table_w = b.weight_typed("emb", &[30522, 768], DType::F32);
        let idx = b.input("ids", &[4, 128], DType::I64);
        let y = b.gather("g", table_w, idx, 0);
        b.output(y);
        let g = b.finish();
        let c = op_cost(&g, 0, DType::F32, &table());
        // far less than the 30522×768 table
        assert_eq!(c.weight_bytes, 4 * 128 * 768 * 4);
        assert_eq!(c.input_bytes, 4 * 128 * 8); // i64 indices
    }

    #[test]
    fn softmax_flops_are_per_element_constants() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[8, 12, 197, 197], DType::F32);
        let y = b.softmax("sm", x, -1);
        b.output(y);
        let g = b.finish();
        let t = table();
        let c = op_cost(&g, 0, DType::F32, &t);
        let n = 8 * 12 * 197 * 197;
        assert_eq!(c.flops, n * (2 * t.cmp + t.add + t.exp + t.div));
    }

    #[test]
    fn pooling_costs() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 64, 112, 112], DType::F32);
        let y = b.maxpool("mp", x, 3, 2, 1);
        let z = b.global_avg_pool("gap", y);
        b.output(z);
        let g = b.finish();
        let mp = op_cost(&g, 0, DType::F32, &table());
        assert_eq!(mp.flops, 64 * 56 * 56 * 9);
        let gap = op_cost(&g, 1, DType::F32, &table());
        assert_eq!(gap.flops, 64 * 56 * 56 + 64 * 4);
    }

    #[test]
    fn batch_scaling_is_linear_for_activations_constant_for_weights() {
        // Eq. 1: Memory = Σ params + batch × (Σ in + Σ out)
        let build = |batch: u64| {
            let mut b = GraphBuilder::new("t");
            let x = b.input("x", &[batch, 3, 32, 32], DType::F32);
            let y = b.conv("c", x, 8, 3, 1, 1, 1, true);
            b.output(y);
            b.finish()
        };
        let g1 = build(1);
        let g4 = build(4);
        let c1 = op_cost(&g1, 0, DType::F32, &table());
        let c4 = op_cost(&g4, 0, DType::F32, &table());
        assert_eq!(c4.input_bytes, 4 * c1.input_bytes);
        assert_eq!(c4.output_bytes, 4 * c1.output_bytes);
        assert_eq!(c4.weight_bytes, c1.weight_bytes);
        assert_eq!(c4.flops, 4 * c1.flops);
    }

    #[test]
    fn arithmetic_intensity_and_sum() {
        let a = CostEstimate {
            flops: 100,
            input_bytes: 10,
            weight_bytes: 5,
            output_bytes: 10,
        };
        assert!((a.arithmetic_intensity() - 4.0).abs() < 1e-12);
        let s: CostEstimate = vec![a, a].into_iter().sum();
        assert_eq!(s.flops, 200);
        assert_eq!(s.memory_bytes(), 50);
    }

    use proof_ir::OpKind;
}
