//! SVG roofline charts — the graphical half of the PRoof data viewer.
//!
//! Rendering follows a validated design system: a fixed categorical colour
//! order (CVD-checked, worst adjacent ΔE 24.2 on the light surface), ≥8 px
//! markers with a 2 px surface ring, hairline solid gridlines, text in ink
//! tokens (never the series colour), a legend whenever ≥2 categories are
//! present, and native `<title>` tooltips per mark. Opacity encodes each
//! layer's latency share, exactly like the paper's Figures 5/6/8; a CSV
//! table view ships alongside every chart (see [`crate::report`]).

use crate::roofline::{LayerCategory, RooflineChart};
use std::fmt::Write as _;

const SURFACE: &str = "#fcfcfb";
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const GRID: &str = "#e7e6e2";
const CEILING: &str = "#7a786f";

/// Fixed categorical slots (validated order — do not re-order).
fn category_color(c: LayerCategory) -> &'static str {
    match c {
        LayerCategory::Transpose => "#2a78d6",     // blue
        LayerCategory::DataCopy => "#1baf7a",      // aqua
        LayerCategory::DepthwiseConv => "#eda100", // yellow
        LayerCategory::MatMul => "#008300",        // green
        LayerCategory::NormReduce => "#4a3aa7",    // violet
        LayerCategory::OtherConv => "#e34948",     // red
        LayerCategory::PointwiseConv => "#e87ba4", // magenta
        LayerCategory::Other => "#eb6834",         // orange
    }
}

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    pub width: u32,
    pub height: u32,
    /// Direct-label every point (end-to-end charts label model indices;
    /// layer-wise charts leave identity to hover + legend).
    pub label_points: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 860,
            height: 560,
            label_points: false,
        }
    }
}

fn nice_log_bounds(vals: impl Iterator<Item = f64>, pad: f64) -> (f64, f64) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in vals.filter(|v| v.is_finite() && *v > 0.0) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.1, 10.0);
    }
    ((lo / pad).log10().floor(), (hi * pad).log10().ceil())
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn fmt_si(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}P", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}T", v / 1e3)
    } else if v >= 1.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Render a roofline chart (log-log) to a standalone SVG document.
pub fn render_roofline_svg(chart: &RooflineChart, opts: &SvgOptions) -> String {
    let (w, h) = (opts.width as f64, opts.height as f64);
    let (ml, mr, mt, mb) = (74.0, 190.0, 46.0, 56.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);

    let ceil = &chart.ceiling;
    let (x0, x1) = nice_log_bounds(
        chart
            .points
            .iter()
            .map(|p| p.intensity())
            .chain([ceil.ridge_intensity()]),
        3.0,
    );
    let (y0, y1) = nice_log_bounds(
        chart
            .points
            .iter()
            .map(|p| p.achieved_gflops())
            .chain([ceil.peak_gflops]),
        2.0,
    );
    // clamp into the plot area: zero-FLOP layers (pure data movement)
    // pin to the bottom edge instead of escaping the chart at log(0)
    let sx = move |v: f64| {
        (ml + (v.max(1e-12).log10() - x0) / (x1 - x0).max(1e-9) * pw).clamp(ml, ml + pw)
    };
    let sy = move |v: f64| {
        (mt + ph - (v.max(1e-12).log10() - y0) / (y1 - y0).max(1e-9) * ph).clamp(mt, mt + ph)
    };

    let mut s = String::with_capacity(16 * 1024);
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">
<rect width="{w}" height="{h}" fill="{SURFACE}"/>
<text x="{ml}" y="26" font-size="15" font-weight="600" fill="{INK_PRIMARY}">{}</text>
"#,
        esc(&chart.title)
    );

    // decade gridlines + tick labels (hairline, solid, recessive)
    for d in (x0 as i64)..=(x1 as i64) {
        let x = sx(10f64.powi(d as i32));
        let _ = write!(
            s,
            "<line x1='{x:.1}' y1='{mt}' x2='{x:.1}' y2='{:.1}' stroke='{GRID}' stroke-width='1'/>\n\
             <text x='{x:.1}' y='{:.1}' font-size='11' fill='{INK_SECONDARY}' text-anchor='middle'>1e{d}</text>\n",
            mt + ph,
            mt + ph + 16.0
        );
    }
    for d in (y0 as i64)..=(y1 as i64) {
        let y = sy(10f64.powi(d as i32));
        let _ = write!(
            s,
            "<line x1='{ml}' y1='{y:.1}' x2='{:.1}' y2='{y:.1}' stroke='{GRID}' stroke-width='1'/>\n\
             <text x='{:.1}' y='{:.1}' font-size='11' fill='{INK_SECONDARY}' text-anchor='end'>1e{d}</text>\n",
            ml + pw,
            ml - 6.0,
            y + 4.0
        );
    }
    // axis titles
    let _ = write!(
        s,
        "<text x='{:.1}' y='{:.1}' font-size='12' fill='{INK_PRIMARY}' text-anchor='middle'>Arithmetic intensity (FLOP/byte)</text>\n\
         <text x='16' y='{:.1}' font-size='12' fill='{INK_PRIMARY}' text-anchor='middle' transform='rotate(-90 16 {:.1})'>Performance (GFLOP/s)</text>\n",
        ml + pw / 2.0,
        mt + ph + 40.0,
        mt + ph / 2.0,
        mt + ph / 2.0
    );

    // rooflines: memory diagonal(s) up to the ridge, then the flat peak
    let draw_bw = |s: &mut String, bw_gbs: f64, color: &str, label: &str| {
        let ridge_x = ceil.peak_gflops / bw_gbs;
        let start_i = 10f64.powf(x0);
        let (a, b) = (
            (sx(start_i), sy(bw_gbs * start_i)),
            (
                sx(ridge_x.min(10f64.powf(x1))),
                sy((bw_gbs * ridge_x).min(ceil.peak_gflops)),
            ),
        );
        let _ = writeln!(
            s,
            "<line x1='{:.1}' y1='{:.1}' x2='{:.1}' y2='{:.1}' stroke='{color}' stroke-width='2'/>",
            a.0, a.1, b.0, b.1
        );
        // direct label midway along the diagonal
        let mid_i = (start_i * ridge_x).sqrt();
        let _ = writeln!(
            s,
            "<text x='{:.1}' y='{:.1}' font-size='11' fill='{INK_SECONDARY}'>{}</text>",
            sx(mid_i) + 6.0,
            sy(bw_gbs * mid_i) - 6.0,
            esc(label)
        );
    };
    draw_bw(
        &mut s,
        ceil.mem_bw_gbs,
        CEILING,
        &format!("{:.1} GB/s", ceil.mem_bw_gbs),
    );
    for (i, (label, bw)) in ceil.extra_bw_lines.iter().enumerate() {
        let color = ["#eda100", "#e34948", "#4a3aa7"][i % 3];
        draw_bw(&mut s, *bw, color, &format!("{label} ({bw:.1} GB/s)"));
    }
    let peak_y = sy(ceil.peak_gflops);
    let _ = write!(
        s,
        "<line x1='{:.1}' y1='{peak_y:.1}' x2='{:.1}' y2='{peak_y:.1}' stroke='{CEILING}' stroke-width='2'/>\n\
         <text x='{:.1}' y='{:.1}' font-size='11' fill='{INK_SECONDARY}' text-anchor='end'>{} FLOP/s peak</text>\n",
        sx(ceil.ridge_intensity()),
        ml + pw,
        ml + pw,
        peak_y - 8.0,
        fmt_si(ceil.peak_gflops * 1e9 / 1e9)
    );

    // points: ≥8px markers, 2px surface ring, opacity = latency share
    let max_share = chart
        .points
        .iter()
        .map(|p| p.latency_share)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for p in &chart.points {
        let (x, y) = (sx(p.intensity()), sy(p.achieved_gflops()));
        let opacity = 0.25 + 0.75 * (p.latency_share / max_share);
        let _ = write!(
            s,
            "<circle cx='{x:.1}' cy='{y:.1}' r='5' fill='{}' fill-opacity='{opacity:.3}' stroke='{SURFACE}' stroke-width='2'>\
             <title>{}\nAI {:.2} FLOP/B | {:.1} GFLOP/s | {:.1} GB/s | {:.1} us ({:.1}%)</title></circle>\n",
            category_color(p.category),
            esc(&p.label),
            p.intensity(),
            p.achieved_gflops(),
            p.achieved_bw_gbs(),
            p.latency_us,
            100.0 * p.latency_share
        );
        if opts.label_points {
            let _ = writeln!(
                s,
                "<text x='{:.1}' y='{:.1}' font-size='10' fill='{INK_SECONDARY}'>{}</text>",
                x + 7.0,
                y + 3.0,
                esc(&p.label)
            );
        }
    }

    // legend (only categories present; identity never by colour alone)
    let mut present: Vec<LayerCategory> = LayerCategory::ALL
        .into_iter()
        .filter(|c| chart.points.iter().any(|p| p.category == *c))
        .collect();
    if present.len() >= 2 {
        let lx = ml + pw + 18.0;
        let _ = writeln!(
            s,
            "<text x='{lx:.1}' y='{:.1}' font-size='11' font-weight='600' fill='{INK_PRIMARY}'>Layer type</text>",
            mt + 6.0
        );
        for (i, c) in present.drain(..).enumerate() {
            let y = mt + 24.0 + i as f64 * 18.0;
            let _ = write!(
                s,
                "<circle cx='{:.1}' cy='{:.1}' r='5' fill='{}' stroke='{SURFACE}' stroke-width='2'/>\n\
                 <text x='{:.1}' y='{:.1}' font-size='11' fill='{INK_SECONDARY}'>{}</text>\n",
                lx + 5.0,
                y - 4.0,
                category_color(c),
                lx + 16.0,
                y,
                c.label()
            );
        }
        let _ = writeln!(
            s,
            "<text x='{lx:.1}' y='{:.1}' font-size='10' fill='{INK_SECONDARY}'>opacity = latency share</text>",
            mt + 36.0 + 8.0 * 18.0
        );
    }

    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_model, MetricMode};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{BackendFlavor, SessionConfig};

    fn chart() -> RooflineChart {
        profile_model(
            &ModelId::ResNet50.build(4),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap()
        .layerwise_chart("ResNet-50 on A100 (fp16)")
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = render_roofline_svg(&chart(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // one circle per point + legend swatches
        let c = chart();
        let circles = svg.matches("<circle").count();
        assert!(circles >= c.points.len());
        assert!(svg.contains("Arithmetic intensity"));
        assert!(svg.contains("FLOP/s peak"));
        assert!(svg.contains("Layer type")); // legend present
        assert!(svg.contains("<title>")); // hover tooltips
    }

    #[test]
    fn opacity_encodes_latency_share() {
        let svg = render_roofline_svg(&chart(), &SvgOptions::default());
        let opacities: Vec<f64> = svg
            .match_indices("fill-opacity='")
            .filter_map(|(i, pat)| {
                let rest = &svg[i + pat.len()..];
                rest.split('\'').next()?.parse().ok()
            })
            .collect();
        let max = opacities.iter().copied().fold(0.0f64, f64::max);
        let min = opacities.iter().copied().fold(1.0f64, f64::min);
        assert!((max - 1.0).abs() < 1e-9, "dominant layer at full opacity");
        assert!(
            min < 0.8 * max,
            "minor layers visibly lighter: {min} vs {max}"
        );
    }

    #[test]
    fn extra_bandwidth_lines_are_drawn_with_labels() {
        let mut c = chart();
        c.ceiling = c.ceiling.clone().with_extra_bw("EMC 2133", 62.0);
        let svg = render_roofline_svg(&c, &SvgOptions::default());
        assert!(svg.contains("EMC 2133"));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut c = chart();
        c.points[0].label = "a <b> & \"c\"".into();
        let svg = render_roofline_svg(&c, &SvgOptions::default());
        assert!(!svg.contains("<b>"));
        assert!(svg.contains("&lt;b&gt;"));
    }
}
