//! Pipeline-parallel profiling — the paper's stated future work ("we aim to
//! investigate the adaptation of PRoof to distributed environments", §5),
//! implemented for the inference-pipeline case:
//!
//! - partition the model into contiguous stages, one per device,
//! - profile each stage on its device with the normal PRoof pipeline,
//! - charge inter-stage activation transfers over an interconnect model,
//! - report per-stage rooflines, the single-sample pipeline latency, and
//!   the steady-state throughput (bounded by the slowest stage).
//!
//! Partitioning balances predicted per-node work, then improves the cut
//! points by local search on the simulated stage latencies.

use crate::analysis::AnalyzeRepr;
use crate::pipeline::ProofError;
use crate::profile::{profile_model, MetricMode, ProfileReport};
use proof_hw::Platform;
use proof_ir::subgraph::{boundary_out_bytes, extract_subgraph};
use proof_ir::{Graph, NodeId};
use proof_runtime::{BackendFlavor, SessionConfig};
use serde::Serialize;

/// Interconnect between pipeline stages.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Interconnect {
    /// Sustained bandwidth, GB/s (PCIe 4.0 x16 ≈ 24, NVLink 3 ≈ 250).
    pub bandwidth_gbs: f64,
    /// Per-transfer latency, microseconds.
    pub latency_us: f64,
}

impl Interconnect {
    pub fn pcie4() -> Self {
        Interconnect {
            bandwidth_gbs: 24.0,
            latency_us: 10.0,
        }
    }

    pub fn nvlink() -> Self {
        Interconnect {
            bandwidth_gbs: 250.0,
            latency_us: 4.0,
        }
    }

    fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_us / 1e3 + bytes as f64 / (self.bandwidth_gbs * 1e9) * 1e3
    }
}

/// One profiled pipeline stage.
#[derive(Debug, Serialize)]
pub struct StageReport {
    pub device: String,
    pub first_node: String,
    pub last_node: String,
    pub node_count: usize,
    pub report: ProfileReport,
    /// Bytes shipped to the next stage (0 for the last).
    pub egress_bytes: u64,
    /// Transfer time to the next stage, ms.
    pub transfer_ms: f64,
}

/// The full pipeline profile.
#[derive(Debug, Serialize)]
pub struct PipelineReport {
    pub stages: Vec<StageReport>,
    /// One-sample latency: Σ stage latency + Σ transfers.
    pub single_sample_ms: f64,
    /// Steady-state bottleneck interval (max stage+its transfer), ms.
    pub bottleneck_ms: f64,
    /// Steady-state throughput, inferences/s.
    pub throughput_per_s: f64,
}

impl PipelineReport {
    /// Speedup over running the whole model on stage 0's device.
    pub fn speedup_over(&self, single_device_ms: f64) -> f64 {
        single_device_ms / self.bottleneck_ms
    }
}

/// Cut `[0, n)` into `k` contiguous spans with balanced weights.
fn balanced_cuts(weights: &[f64], k: usize) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    let mut cuts = Vec::with_capacity(k - 1);
    let mut acc = 0.0;
    let mut next = total / k as f64;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if acc >= next && cuts.len() < k - 1 && i + 1 < weights.len() {
            cuts.push(i + 1);
            next += total / k as f64;
        }
    }
    while cuts.len() < k - 1 {
        cuts.push(weights.len().saturating_sub(1).max(1));
    }
    cuts
}

fn spans(cuts: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0;
    for &c in cuts {
        out.push((start, c));
        start = c;
    }
    out.push((start, n));
    out
}

/// Profile a model pipelined over `devices` (one contiguous stage each).
pub fn profile_pipeline(
    g: &Graph,
    devices: &[Platform],
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    link: Interconnect,
) -> Result<PipelineReport, ProofError> {
    assert!(!devices.is_empty(), "need at least one device");
    let n = g.nodes.len();
    let k = devices.len().min(n);

    // balance weight: predicted per-node latency proxy (flops + traffic)
    let analysis = AnalyzeRepr::new(g, cfg.precision);
    let weights: Vec<f64> = (0..n as NodeId)
        .map(|id| {
            let c = analysis.node_cost(id);
            c.flops as f64 / 1e9 + c.memory_bytes() as f64 / 1e8
        })
        .collect();
    let mut cuts = balanced_cuts(&weights, k);

    // evaluate a cut vector: max stage latency (the steady-state bound)
    let eval = |cuts: &[usize]| -> Result<f64, ProofError> {
        let mut worst = 0.0f64;
        for (d, &(lo, hi)) in spans(cuts, n).iter().enumerate() {
            let members: Vec<NodeId> = (lo as NodeId..hi as NodeId).collect();
            let stage = extract_subgraph(g, &members, &format!("{}-stage{d}", g.name))
                .map_err(|e| ProofError::Graph(e.to_string()))?;
            let r = profile_model(&stage, &devices[d], flavor, cfg, MetricMode::Predicted)?;
            let egress = boundary_out_bytes(g, &members, cfg.precision);
            let t = r.total_latency_ms
                + if d + 1 < k {
                    link.transfer_ms(egress)
                } else {
                    0.0
                };
            worst = worst.max(t);
        }
        Ok(worst)
    };

    // local search: nudge each cut ±step while it improves
    let mut best = eval(&cuts)?;
    for step in [32usize, 8, 2, 1] {
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..cuts.len() {
                for dir in [-1isize, 1] {
                    let mut cand = cuts.clone();
                    let moved = cand[i] as isize + dir * step as isize;
                    let lo = if i == 0 { 1 } else { cand[i - 1] + 1 };
                    let hi = if i + 1 < cand.len() {
                        cand[i + 1] - 1
                    } else {
                        n - 1
                    };
                    if moved < lo as isize || moved > hi as isize {
                        continue;
                    }
                    cand[i] = moved as usize;
                    let score = eval(&cand)?;
                    if score < best {
                        best = score;
                        cuts = cand;
                        improved = true;
                    }
                }
            }
        }
    }

    // final assembly
    let mut stages = Vec::with_capacity(k);
    let mut single_sample_ms = 0.0;
    let mut bottleneck_ms = 0.0f64;
    for (d, &(lo, hi)) in spans(&cuts, n).iter().enumerate() {
        let members: Vec<NodeId> = (lo as NodeId..hi as NodeId).collect();
        let stage_graph = extract_subgraph(g, &members, &format!("{}-stage{d}", g.name))
            .map_err(|e| ProofError::Graph(e.to_string()))?;
        let report = profile_model(
            &stage_graph,
            &devices[d],
            flavor,
            cfg,
            MetricMode::Predicted,
        )?;
        let egress = if d + 1 < k {
            boundary_out_bytes(g, &members, cfg.precision)
        } else {
            0
        };
        let transfer_ms = if d + 1 < k {
            link.transfer_ms(egress)
        } else {
            0.0
        };
        single_sample_ms += report.total_latency_ms + transfer_ms;
        bottleneck_ms = bottleneck_ms.max(report.total_latency_ms + transfer_ms);
        stages.push(StageReport {
            device: devices[d].name.clone(),
            first_node: g.node(lo as NodeId).name.clone(),
            last_node: g.node((hi - 1) as NodeId).name.clone(),
            node_count: hi - lo,
            report,
            egress_bytes: egress,
            transfer_ms,
        });
    }
    Ok(PipelineReport {
        stages,
        single_sample_ms,
        bottleneck_ms,
        throughput_per_s: g.batch_size() as f64 / (bottleneck_ms / 1e3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn cfg() -> SessionConfig {
        SessionConfig::new(DType::F16)
    }

    #[test]
    fn balanced_cuts_partition_the_range() {
        let w = vec![1.0; 100];
        let cuts = balanced_cuts(&w, 4);
        assert_eq!(cuts.len(), 3);
        let sp = spans(&cuts, 100);
        assert_eq!(sp.first().unwrap().0, 0);
        assert_eq!(sp.last().unwrap().1, 100);
        for win in sp.windows(2) {
            assert_eq!(win[0].1, win[1].0);
        }
        // roughly equal quarters
        for (lo, hi) in sp {
            assert!((hi - lo) >= 20 && (hi - lo) <= 30);
        }
    }

    #[test]
    fn two_a100_pipeline_beats_the_bottleneck_of_one() {
        let g = ModelId::ResNet50.build(64);
        let dev = PlatformId::A100.spec();
        let single = profile_model(
            &g,
            &dev,
            BackendFlavor::TrtLike,
            &cfg(),
            MetricMode::Predicted,
        )
        .unwrap()
        .total_latency_ms;
        let pipe = profile_pipeline(
            &g,
            &[dev.clone(), dev.clone()],
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect::nvlink(),
        )
        .unwrap();
        assert_eq!(pipe.stages.len(), 2);
        // steady-state interval below single-device latency (pipelining wins)
        assert!(
            pipe.bottleneck_ms < single,
            "{} vs {single}",
            pipe.bottleneck_ms
        );
        assert!(pipe.speedup_over(single) > 1.3);
        // single-sample latency pays the transfers on top
        assert!(pipe.single_sample_ms >= pipe.bottleneck_ms);
        // stage flops sum to the model's flops
        let sum: u64 = pipe.stages.iter().map(|s| s.report.total_flops).sum();
        let whole = profile_model(
            &g,
            &dev,
            BackendFlavor::TrtLike,
            &cfg(),
            MetricMode::Predicted,
        )
        .unwrap()
        .total_flops;
        let ratio = sum as f64 / whole as f64;
        assert!((0.95..1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn slow_interconnect_hurts_throughput() {
        let g = ModelId::ResNet50.build(64);
        let dev = PlatformId::A100.spec();
        let fast = profile_pipeline(
            &g,
            &[dev.clone(), dev.clone()],
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect::nvlink(),
        )
        .unwrap();
        let slow = profile_pipeline(
            &g,
            &[dev.clone(), dev.clone()],
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect {
                bandwidth_gbs: 1.0,
                latency_us: 100.0,
            },
        )
        .unwrap();
        assert!(slow.throughput_per_s < fast.throughput_per_s);
    }

    #[test]
    fn heterogeneous_pipeline_assigns_stages_in_order() {
        let g = ModelId::MobileNetV2x10.build(16);
        let pipe = profile_pipeline(
            &g,
            &[PlatformId::A100.spec(), PlatformId::Rtx4090.spec()],
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect::pcie4(),
        )
        .unwrap();
        assert_eq!(pipe.stages[0].device, PlatformId::A100.spec().name);
        assert_eq!(pipe.stages[1].device, PlatformId::Rtx4090.spec().name);
        assert!(pipe.stages[0].egress_bytes > 0);
        assert_eq!(pipe.stages[1].egress_bytes, 0);
    }

    #[test]
    fn one_stage_cut_vector_is_empty_and_spans_cover_everything() {
        let w = vec![3.0; 17];
        let cuts = balanced_cuts(&w, 1);
        assert!(cuts.is_empty(), "k=1 needs no cuts");
        assert_eq!(spans(&cuts, 17), vec![(0, 17)]);
        // k == n degenerates to one node per stage
        let w = vec![1.0, 1.0, 1.0];
        let cuts = balanced_cuts(&w, 3);
        assert_eq!(cuts.len(), 2);
        assert_eq!(spans(&cuts, 3).len(), 3);
        for (lo, hi) in spans(&cuts, 3) {
            assert!(hi > lo, "no empty stage");
        }
    }

    #[test]
    fn more_devices_than_graph_nodes_clamps_to_node_count() {
        // a 2-node graph offered 4 devices must produce 2 stages, not 4
        let mut b = proof_ir::GraphBuilder::new("tiny-pipeline");
        let x = b.input("x", &[1, 3, 8, 8], DType::F32);
        let y = b.conv("conv1", x, 16, 3, 1, 1, 1, true);
        let y = b.relu("relu1", y);
        b.output(y);
        let g = b.finish();
        assert_eq!(g.node_count(), 2);
        let dev = PlatformId::A100.spec();
        let pipe = profile_pipeline(
            &g,
            &[dev.clone(), dev.clone(), dev.clone(), dev.clone()],
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect::pcie4(),
        )
        .unwrap();
        assert_eq!(pipe.stages.len(), 2);
        assert_eq!(pipe.stages[0].node_count, 1);
        assert_eq!(pipe.stages[1].node_count, 1);
        assert_eq!(pipe.stages[1].transfer_ms, 0.0, "last stage ships nothing");
        assert!(pipe.throughput_per_s > 0.0);
    }

    #[test]
    fn local_search_never_worsens_the_simulated_bottleneck() {
        // recompute the initial balanced partition exactly as
        // profile_pipeline does, simulate its bottleneck, and check the
        // searched result is no worse
        let g = ModelId::ResNet50.build(32);
        let devices = [PlatformId::A100.spec(), PlatformId::Rtx4090.spec()];
        let link = Interconnect::pcie4();
        let session = cfg();
        let n = g.nodes.len();
        let k = devices.len().min(n);
        let analysis = AnalyzeRepr::new(&g, session.precision);
        let weights: Vec<f64> = (0..n as NodeId)
            .map(|id| {
                let c = analysis.node_cost(id);
                c.flops as f64 / 1e9 + c.memory_bytes() as f64 / 1e8
            })
            .collect();
        let initial = balanced_cuts(&weights, k);
        let mut initial_bottleneck = 0.0f64;
        for (d, &(lo, hi)) in spans(&initial, n).iter().enumerate() {
            let members: Vec<NodeId> = (lo as NodeId..hi as NodeId).collect();
            let stage = extract_subgraph(&g, &members, "probe").unwrap();
            let r = profile_model(
                &stage,
                &devices[d],
                BackendFlavor::TrtLike,
                &session,
                MetricMode::Predicted,
            )
            .unwrap();
            let egress = boundary_out_bytes(&g, &members, session.precision);
            let t = r.total_latency_ms
                + if d + 1 < k {
                    link.transfer_ms(egress)
                } else {
                    0.0
                };
            initial_bottleneck = initial_bottleneck.max(t);
        }
        let pipe = profile_pipeline(&g, &devices, BackendFlavor::TrtLike, &session, link).unwrap();
        assert!(
            pipe.bottleneck_ms <= initial_bottleneck * (1.0 + 1e-9),
            "search worsened the bottleneck: {} > {initial_bottleneck}",
            pipe.bottleneck_ms
        );
    }

    #[test]
    fn single_device_pipeline_degenerates_gracefully() {
        let g = ModelId::ShuffleNetV2x05.build(4);
        let dev = PlatformId::A100.spec();
        let pipe = profile_pipeline(
            &g,
            std::slice::from_ref(&dev),
            BackendFlavor::TrtLike,
            &cfg(),
            Interconnect::pcie4(),
        )
        .unwrap();
        assert_eq!(pipe.stages.len(), 1);
        assert_eq!(pipe.stages[0].transfer_ms, 0.0);
        let single = profile_model(
            &g,
            &dev,
            BackendFlavor::TrtLike,
            &cfg(),
            MetricMode::Predicted,
        )
        .unwrap()
        .total_latency_ms;
        assert!((pipe.bottleneck_ms - single).abs() / single < 0.05);
    }
}
