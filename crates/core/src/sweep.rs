//! Batch-size sweeps: latency/throughput curves across batch sizes, used to
//! find "the batch size \[that\] reached maximum throughput" (how the paper
//! picked bs=2048 for Table 5) and the latency knee for latency-sensitive
//! deployment.

use crate::pipeline::{prepare_stages, run_metric_stages, ProofError};
use crate::profile::MetricMode;
use proof_hw::Platform;
use proof_ir::Graph;
use proof_runtime::{BackendFlavor, SessionConfig};
use serde::{Deserialize, Serialize};

/// One batch-size measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    pub batch: u64,
    pub latency_ms: f64,
    pub throughput_per_s: f64,
    pub achieved_gflops: f64,
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSweep {
    pub model: String,
    pub platform: String,
    pub points: Vec<SweepPoint>,
}

impl BatchSweep {
    /// The point with the highest throughput, `None` for an empty sweep
    /// (this used to `expect` and take the whole worker thread down).
    pub fn max_throughput(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.throughput_per_s.total_cmp(&b.throughput_per_s))
    }

    /// The smallest batch reaching `fraction` of the peak throughput — the
    /// knee of the curve (beyond it, batching only buys latency). `None`
    /// for an empty sweep.
    pub fn knee(&self, fraction: f64) -> Option<&SweepPoint> {
        let peak = self.max_throughput()?;
        let target = peak.throughput_per_s * fraction;
        Some(
            self.points
                .iter()
                .find(|p| p.throughput_per_s >= target)
                .unwrap_or(peak),
        )
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::from("batch,latency_ms,throughput_per_s,achieved_gflops\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{:.1},{:.1}\n",
                p.batch, p.latency_ms, p.throughput_per_s, p.achieved_gflops
            ));
        }
        out
    }
}

/// Sweep `batches` (ascending), building the model per batch via `build`.
/// Points run in parallel (rayon); each point runs the staged pipeline, so
/// the compile/profile/map prefix is paid once per batch even if callers
/// later want the Measured counterpart of a point.
pub fn sweep_batches(
    build: impl Fn(u64) -> Graph + Sync,
    platform: &Platform,
    flavor: BackendFlavor,
    cfg: &SessionConfig,
    batches: &[u64],
) -> Result<BatchSweep, ProofError> {
    use rayon::prelude::*;
    // reject up front: an empty sweep has no peak/knee and used to panic
    // the first caller that asked for one
    let Some(&first) = batches.first() else {
        return Err(ProofError::InvalidSpec(
            "batch sweep needs at least one batch size".to_string(),
        ));
    };
    let points: Result<Vec<SweepPoint>, ProofError> = batches
        .par_iter()
        .map(|&batch| {
            let g = build(batch);
            let prep = prepare_stages(&g, platform, flavor, cfg)?;
            let r = run_metric_stages(&prep, MetricMode::Predicted)?;
            Ok(SweepPoint {
                batch,
                latency_ms: r.total_latency_ms,
                throughput_per_s: r.throughput_per_s(),
                achieved_gflops: r.achieved_gflops(),
            })
        })
        .collect();
    let g1 = build(first);
    Ok(BatchSweep {
        model: g1.name.clone(),
        platform: platform.name.clone(),
        points: points?,
    })
}

/// The default power-of-two sweep grid up to `max`.
pub fn pow2_grid(max: u64) -> Vec<u64> {
    let mut v = vec![1u64];
    while *v.last().unwrap() < max {
        v.push((v.last().unwrap() * 2).min(max));
    }
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;

    fn sweep(model: ModelId, max: u64) -> BatchSweep {
        sweep_batches(
            |b| model.build(b),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            &pow2_grid(max),
        )
        .unwrap()
    }

    #[test]
    fn pow2_grid_is_sorted_dedup_capped() {
        assert_eq!(pow2_grid(8), vec![1, 2, 4, 8]);
        assert_eq!(pow2_grid(12), vec![1, 2, 4, 8, 12]);
        assert_eq!(pow2_grid(1), vec![1]);
    }

    #[test]
    fn throughput_rises_then_saturates() {
        let s = sweep(ModelId::ShuffleNetV2x10, 512);
        // monotone-ish early growth
        assert!(s.points[3].throughput_per_s > 2.0 * s.points[0].throughput_per_s);
        // latency is monotone in batch
        for w in s.points.windows(2) {
            assert!(w[1].latency_ms >= w[0].latency_ms * 0.99);
        }
        // knee at 90% comes at or before the max-throughput batch
        assert!(s.knee(0.9).unwrap().batch <= s.max_throughput().unwrap().batch);
    }

    #[test]
    fn empty_sweep_is_an_error_not_a_panic() {
        let err = sweep_batches(
            |b| ModelId::MobileNetV2x05.build(b),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, ProofError::InvalidSpec(_)), "{err}");
        // and an empty BatchSweep (e.g. deserialized) degrades to None
        let empty = BatchSweep {
            model: "m".into(),
            platform: "p".into(),
            points: Vec::new(),
        };
        assert!(empty.max_throughput().is_none());
        assert!(empty.knee(0.9).is_none());
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let s = sweep(ModelId::MobileNetV2x05, 8);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), s.points.len() + 1);
    }
}
