//! The *Analyze Representation* (paper §3.2.2): the model plus one operator
//! define per node, with predicted FLOP/memory for each.

use crate::cost::{op_cost_with, CostEstimate, CostOptions, FlopTable};
use proof_ir::{DType, Graph, NodeId, OpCategory};
use std::collections::BTreeMap;

/// PRoof's internal representation of the (unoptimized) model: every ONNX
/// node paired with its predicted cost at a given execution precision.
#[derive(Debug, Clone)]
pub struct AnalyzeRepr<'g> {
    graph: &'g Graph,
    precision: DType,
    table: FlopTable,
    costs: Vec<CostEstimate>,
}

impl<'g> AnalyzeRepr<'g> {
    /// Analyze `graph` as executed at `precision` (the runtime session's
    /// compute dtype — fp16/int8 models halve/quarter traffic, not FLOP).
    pub fn new(graph: &'g Graph, precision: DType) -> Self {
        Self::with_table(graph, precision, FlopTable::default())
    }

    pub fn with_table(graph: &'g Graph, precision: DType, table: FlopTable) -> Self {
        Self::with_config(graph, precision, table, CostOptions::default())
    }

    /// Full-control constructor (rule toggles are used by the ablations).
    pub fn with_config(
        graph: &'g Graph,
        precision: DType,
        table: FlopTable,
        opts: CostOptions,
    ) -> Self {
        let costs = (0..graph.nodes.len() as NodeId)
            .map(|id| op_cost_with(graph, id, precision, &table, opts))
            .collect();
        AnalyzeRepr {
            graph,
            precision,
            table,
            costs,
        }
    }

    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    pub fn precision(&self) -> DType {
        self.precision
    }

    pub fn flop_table(&self) -> &FlopTable {
        &self.table
    }

    /// Predicted cost of one node.
    pub fn node_cost(&self, id: NodeId) -> &CostEstimate {
        &self.costs[id as usize]
    }

    /// Whole-model totals (end-to-end FLOP and Eq.-1 memory).
    pub fn total(&self) -> CostEstimate {
        self.costs.iter().copied().sum()
    }

    /// Model GFLOP — the Table 3 inventory number.
    pub fn gflops(&self) -> f64 {
        self.total().flops as f64 / 1e9
    }

    /// FLOP/memory broken down by operator category (drives the summary
    /// breakdowns in the data viewer).
    pub fn per_category(&self) -> BTreeMap<&'static str, CostEstimate> {
        let mut m: BTreeMap<&'static str, CostEstimate> = BTreeMap::new();
        for (i, n) in self.graph.nodes.iter().enumerate() {
            m.entry(category_name(n.op.category()))
                .or_default()
                .accumulate(&self.costs[i]);
        }
        m
    }
}

pub(crate) fn category_name(c: OpCategory) -> &'static str {
    match c {
        OpCategory::Contraction => "contraction",
        OpCategory::Normalization => "normalization",
        OpCategory::Elementwise => "elementwise",
        OpCategory::Reduction => "reduction",
        OpCategory::Pooling => "pooling",
        OpCategory::DataMovement => "data-movement",
        OpCategory::Metadata => "metadata",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::GraphBuilder;

    fn conv_relu_graph(batch: u64) -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[batch, 3, 32, 32], DType::F32);
        let c = b.conv("conv", x, 16, 3, 1, 1, 1, true);
        let r = b.relu("relu", c);
        b.output(r);
        b.finish()
    }

    #[test]
    fn totals_are_node_sums() {
        let g = conv_relu_graph(1);
        let a = AnalyzeRepr::new(&g, DType::F32);
        let total = a.total();
        let manual = *a.node_cost(0) + *a.node_cost(1);
        assert_eq!(total, manual);
        assert!(total.flops > 0);
        assert!(a.gflops() > 0.0);
    }

    #[test]
    fn eq1_batch_linearity_of_model_totals() {
        let g1 = conv_relu_graph(1);
        let g8 = conv_relu_graph(8);
        let a1 = AnalyzeRepr::new(&g1, DType::F32).total();
        let a8 = AnalyzeRepr::new(&g8, DType::F32).total();
        assert_eq!(a8.flops, 8 * a1.flops);
        assert_eq!(a8.input_bytes, 8 * a1.input_bytes);
        assert_eq!(a8.output_bytes, 8 * a1.output_bytes);
        assert_eq!(a8.weight_bytes, a1.weight_bytes);
    }

    #[test]
    fn per_category_partitions_totals() {
        let g = conv_relu_graph(2);
        let a = AnalyzeRepr::new(&g, DType::F16);
        let cats = a.per_category();
        let sum: CostEstimate = cats.values().copied().sum();
        assert_eq!(sum, a.total());
        assert!(cats.contains_key("contraction"));
        assert!(cats.contains_key("elementwise"));
    }
}
