//! Roofline assembly: ceilings, points, and layer categorization
//! (the colour coding of the paper's Figures 5, 6 and 8).

use proof_hw::Platform;
use proof_ir::{DType, Graph, NodeId, OpKind};
use serde::{Deserialize, Serialize};

/// Layer categories used for roofline colouring. The order is fixed — it is
/// also the categorical colour-slot order in the SVG viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerCategory {
    Transpose,
    DataCopy,
    DepthwiseConv,
    MatMul,
    NormReduce,
    OtherConv,
    PointwiseConv,
    Other,
}

impl LayerCategory {
    pub const ALL: [LayerCategory; 8] = [
        LayerCategory::Transpose,
        LayerCategory::DataCopy,
        LayerCategory::DepthwiseConv,
        LayerCategory::MatMul,
        LayerCategory::NormReduce,
        LayerCategory::OtherConv,
        LayerCategory::PointwiseConv,
        LayerCategory::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            LayerCategory::Transpose => "transpose",
            LayerCategory::DataCopy => "data copy",
            LayerCategory::DepthwiseConv => "depth-wise conv",
            LayerCategory::MatMul => "matmul",
            LayerCategory::NormReduce => "norm / reduce",
            LayerCategory::OtherConv => "conv",
            LayerCategory::PointwiseConv => "point-wise conv",
            LayerCategory::Other => "other",
        }
    }
}

/// Categorize a backend layer by its member nodes (most significant op wins).
pub fn categorize(g: &Graph, members: &[NodeId]) -> LayerCategory {
    let mut cat = LayerCategory::Other;
    let mut rank = 0u8;
    for &m in members {
        let node = g.node(m);
        let (c, r) = match node.op {
            OpKind::Conv => {
                let groups = node.attrs.int_or("group", 1);
                let k = node
                    .attrs
                    .ints("kernel_shape")
                    .map(|ks| ks.iter().product::<i64>())
                    .unwrap_or(1);
                if groups > 4 {
                    (LayerCategory::DepthwiseConv, 10)
                } else if k == 1 {
                    (LayerCategory::PointwiseConv, 9)
                } else {
                    (LayerCategory::OtherConv, 9)
                }
            }
            OpKind::MatMul | OpKind::Gemm => (LayerCategory::MatMul, 8),
            OpKind::Transpose => (LayerCategory::Transpose, 6),
            OpKind::Concat
            | OpKind::Split
            | OpKind::Slice
            | OpKind::Gather
            | OpKind::Pad
            | OpKind::Resize
            | OpKind::Expand
            | OpKind::Tile => (LayerCategory::DataCopy, 5),
            OpKind::BatchNormalization
            | OpKind::LayerNormalization
            | OpKind::GroupNormalization
            | OpKind::Softmax
            | OpKind::ReduceMean
            | OpKind::ReduceSum
            | OpKind::ReduceMax => (LayerCategory::NormReduce, 4),
            op if op.is_elementwise() => (LayerCategory::Other, 1),
            _ => (LayerCategory::Other, 0),
        };
        if r > rank {
            rank = r;
            cat = c;
        }
    }
    cat
}

/// The chart ceilings: compute peak and memory bandwidth(s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineCeiling {
    /// Peak performance line (GFLOP/s).
    pub peak_gflops: f64,
    /// Main memory-bandwidth diagonal (GB/s).
    pub mem_bw_gbs: f64,
    /// Extra bandwidth diagonals (label, GB/s) — Figure 8's what-if lines.
    pub extra_bw_lines: Vec<(String, f64)>,
}

impl RooflineCeiling {
    /// Theoretical ceilings of a platform at `precision`.
    pub fn theoretical(platform: &Platform, precision: DType) -> Self {
        RooflineCeiling {
            peak_gflops: platform.peak_flops(precision, true) / 1e9,
            mem_bw_gbs: platform.achievable_bw() / 1e9,
            extra_bw_lines: Vec::new(),
        }
    }

    pub fn with_extra_bw(mut self, label: &str, gbs: f64) -> Self {
        self.extra_bw_lines.push((label.to_string(), gbs));
        self
    }

    /// The ridge point: intensity where compute and memory rooflines meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / self.mem_bw_gbs
    }

    /// Attainable GFLOP/s at a given arithmetic intensity.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (self.mem_bw_gbs * intensity).min(self.peak_gflops)
    }
}

/// One point on a roofline chart (a layer, or a whole model end-to-end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    pub label: String,
    pub category: LayerCategory,
    pub flops: u64,
    pub bytes: u64,
    pub latency_us: f64,
    /// Fraction of the run this point accounts for (opacity channel).
    pub latency_share: f64,
}

impl RooflinePoint {
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    pub fn achieved_gflops(&self) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            self.flops as f64 / (self.latency_us * 1e-6) / 1e9
        }
    }

    pub fn achieved_bw_gbs(&self) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (self.latency_us * 1e-6) / 1e9
        }
    }

    /// Whether the point sits under the memory slope (memory-bound region).
    pub fn memory_bound(&self, ceiling: &RooflineCeiling) -> bool {
        self.intensity() < ceiling.ridge_intensity()
    }
}

/// A complete roofline chart: ceilings + points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineChart {
    pub title: String,
    pub ceiling: RooflineCeiling,
    pub points: Vec<RooflinePoint>,
}

impl RooflineChart {
    pub fn new(title: impl Into<String>, ceiling: RooflineCeiling) -> Self {
        RooflineChart {
            title: title.into(),
            ceiling,
            points: Vec::new(),
        }
    }

    /// Normalize latency shares (call after pushing all points).
    pub fn finalize(&mut self) {
        let total: f64 = self.points.iter().map(|p| p.latency_us).sum();
        if total > 0.0 {
            for p in &mut self.points {
                p.latency_share = p.latency_us / total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_hw::PlatformId;
    use proof_ir::GraphBuilder;

    #[test]
    fn ridge_and_attainable() {
        let c = RooflineCeiling {
            peak_gflops: 1000.0,
            mem_bw_gbs: 100.0,
            extra_bw_lines: vec![],
        };
        assert!((c.ridge_intensity() - 10.0).abs() < 1e-12);
        assert!((c.attainable_gflops(5.0) - 500.0).abs() < 1e-12);
        assert!((c.attainable_gflops(50.0) - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn theoretical_ceiling_from_platform() {
        let p = PlatformId::A100.spec();
        let c = RooflineCeiling::theoretical(&p, DType::F16);
        assert!((c.peak_gflops - 312e3).abs() < 5e3);
        assert!(c.mem_bw_gbs > 1000.0 && c.mem_bw_gbs < 1555.0);
    }

    #[test]
    fn point_metrics() {
        let p = RooflinePoint {
            label: "l".into(),
            category: LayerCategory::MatMul,
            flops: 2_000_000_000,
            bytes: 100_000_000,
            latency_us: 1000.0,
            latency_share: 0.0,
        };
        assert!((p.intensity() - 20.0).abs() < 1e-9);
        assert!((p.achieved_gflops() - 2000.0).abs() < 1e-6);
        assert!((p.achieved_bw_gbs() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn categorize_prefers_most_significant_member() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 8, 8], DType::F32);
        let c = b.conv("pw", x, 8, 1, 1, 0, 1, false);
        let r = b.relu("relu", c);
        let dw = b.conv("dw", r, 8, 3, 1, 1, 8, false);
        b.output(dw);
        let g = b.finish();
        assert_eq!(categorize(&g, &[0, 1]), LayerCategory::PointwiseConv);
        assert_eq!(categorize(&g, &[2]), LayerCategory::DepthwiseConv);
        assert_eq!(categorize(&g, &[0, 1, 2]), LayerCategory::DepthwiseConv);
    }

    #[test]
    fn finalize_normalizes_shares() {
        let ceiling = RooflineCeiling {
            peak_gflops: 1.0,
            mem_bw_gbs: 1.0,
            extra_bw_lines: vec![],
        };
        let mut chart = RooflineChart::new("t", ceiling);
        for (i, lat) in [1.0, 3.0].iter().enumerate() {
            chart.points.push(RooflinePoint {
                label: format!("p{i}"),
                category: LayerCategory::Other,
                flops: 1,
                bytes: 1,
                latency_us: *lat,
                latency_share: 0.0,
            });
        }
        chart.finalize();
        assert!((chart.points[0].latency_share - 0.25).abs() < 1e-12);
        assert!((chart.points[1].latency_share - 0.75).abs() < 1e-12);
    }
}
