//! Lower-bound latency analysis (a Benanza-style view on top of PRoof's
//! data): for every backend layer, the roofline gives an *ideal* latency —
//! `max(FLOP / peak, bytes / achievable BW)` — that a perfectly-tuned
//! kernel could not beat. Comparing actual layer latency against it
//! quantifies per-layer headroom and ranks where kernel tuning (or model
//! redesign) can still pay.

use crate::profile::ProfileReport;
use crate::roofline::LayerCategory;
use serde::Serialize;

/// Headroom of one backend layer.
#[derive(Debug, Clone, Serialize)]
pub struct LayerHeadroom {
    pub name: String,
    pub category: LayerCategory,
    pub actual_us: f64,
    /// Roofline-ideal latency, µs.
    pub ideal_us: f64,
    /// `actual / ideal` (≥ 1; large = far from the roofline).
    pub slowdown: f64,
    /// Whether the ideal time is memory-bound.
    pub memory_bound: bool,
}

/// Whole-model lower-bound summary.
#[derive(Debug, Clone, Serialize)]
pub struct HeadroomReport {
    pub layers: Vec<LayerHeadroom>,
    pub actual_ms: f64,
    /// Sum of per-layer ideals: the model's roofline lower bound.
    pub ideal_ms: f64,
}

impl HeadroomReport {
    /// Overall attainable speedup if every kernel hit its roofline.
    pub fn potential_speedup(&self) -> f64 {
        if self.ideal_ms <= 0.0 {
            1.0
        } else {
            self.actual_ms / self.ideal_ms
        }
    }

    /// The `n` layers losing the most absolute time vs their bound.
    pub fn worst_layers(&self, n: usize) -> Vec<&LayerHeadroom> {
        let mut v: Vec<&LayerHeadroom> = self.layers.iter().collect();
        v.sort_by(|a, b| (b.actual_us - b.ideal_us).total_cmp(&(a.actual_us - a.ideal_us)));
        v.truncate(n);
        v
    }
}

/// Compute the headroom analysis from a profile report.
pub fn analyze_headroom(report: &ProfileReport) -> HeadroomReport {
    let peak_gflops = report.ceiling.peak_gflops;
    let bw_gbs = report.ceiling.mem_bw_gbs;
    let mut layers = Vec::with_capacity(report.layers.len());
    let mut ideal_total_us = 0.0;
    for l in &report.layers {
        let compute_us = l.flops as f64 / (peak_gflops * 1e9) * 1e6;
        let memory_us = l.memory_bytes as f64 / (bw_gbs * 1e9) * 1e6;
        let ideal_us = compute_us.max(memory_us);
        ideal_total_us += ideal_us;
        layers.push(LayerHeadroom {
            name: l.name.clone(),
            category: l.category,
            actual_us: l.latency_us,
            ideal_us,
            slowdown: if ideal_us > 0.0 {
                l.latency_us / ideal_us
            } else {
                f64::INFINITY
            },
            memory_bound: memory_us >= compute_us,
        });
    }
    HeadroomReport {
        layers,
        actual_ms: report.total_latency_ms,
        ideal_ms: ideal_total_us / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_model, MetricMode};
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{BackendFlavor, SessionConfig};

    fn report(model: ModelId) -> ProfileReport {
        profile_model(
            &model.build(32),
            &PlatformId::A100.spec(),
            BackendFlavor::TrtLike,
            &SessionConfig::new(DType::F16),
            MetricMode::Predicted,
        )
        .unwrap()
    }

    #[test]
    fn ideal_never_exceeds_actual() {
        let hr = analyze_headroom(&report(ModelId::ResNet50));
        for l in &hr.layers {
            assert!(
                l.actual_us >= l.ideal_us * 0.999,
                "{}: {} < {}",
                l.name,
                l.actual_us,
                l.ideal_us
            );
        }
        assert!(hr.potential_speedup() >= 1.0);
    }

    #[test]
    fn depthwise_heavy_models_show_more_headroom() {
        let dense = analyze_headroom(&report(ModelId::ResNet50));
        let dw = analyze_headroom(&report(ModelId::MobileNetV2x10));
        assert!(
            dw.potential_speedup() > dense.potential_speedup(),
            "{} vs {}",
            dw.potential_speedup(),
            dense.potential_speedup()
        );
    }

    #[test]
    fn worst_layers_are_sorted_by_absolute_loss() {
        let hr = analyze_headroom(&report(ModelId::ShuffleNetV2x10));
        let w = hr.worst_layers(5);
        assert_eq!(w.len(), 5);
        for pair in w.windows(2) {
            assert!(pair[0].actual_us - pair[0].ideal_us >= pair[1].actual_us - pair[1].ideal_us);
        }
    }

    #[test]
    fn memory_bound_flag_matches_the_ridge() {
        let r = report(ModelId::ShuffleNetV2x10);
        let hr = analyze_headroom(&r);
        for (l, h) in r.layers.iter().zip(&hr.layers) {
            let memory_bound_by_intensity = l.intensity() < r.ceiling.ridge_intensity();
            assert_eq!(h.memory_bound, memory_bound_by_intensity, "{}", l.name);
        }
    }
}
