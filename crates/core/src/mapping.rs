//! Layer mapping: backend layers ⇄ original model layers (paper §3.3).
//!
//! Each backend flavour exposes different (and differently incomplete)
//! information, so each gets its own strategy — all built on the universal
//! [`OptimizedRepr`] interfaces:
//!
//! - **ORT-like** profilers name the fused nodes outright → direct
//!   `set_fused_op`,
//! - **TRT-like** profilers emit `"a + b + c"` strings for ordinary fused
//!   layers (resolved by name, with `get_subgraph_ops_by_io` recovering the
//!   elided middle of `"a + ... + z"` names), and **opaque Myelin regions**
//!   exposing only io tensor names → resolved through aliases and
//!   `get_subgraph_ops_by_io`,
//! - **OV-like** profilers reveal only the primary node name → membership
//!   is *re-derived* from the computational graph and data dependencies
//!   ("guess the missing information", §3.2.3), bounded by the set of other
//!   layers' primaries,
//! - runtime-inserted reorder layers map to no model node; they register a
//!   tensor alias so later opaque-io lookups still resolve.

use crate::fused::{GroupId, OptimizedRepr};
use proof_ir::{NodeId, OpKind, TensorId, TensorKind};
use proof_runtime::{BackendFlavor, LayerHint, LayerProfile};
use std::collections::HashSet;

/// One backend layer after mapping.
#[derive(Debug, Clone)]
pub struct MappedLayer {
    pub backend_name: String,
    pub avg_latency_us: f64,
    /// The analysis-side group (None for runtime-inserted reorder layers).
    pub group: Option<GroupId>,
    pub is_reorder: bool,
    /// Index of the source entry in the backend profile. Unresolved profile
    /// entries leave gaps, so positions in [`Mapping::layers`] cannot be
    /// used to correlate back to the profile — this index can.
    pub profile_index: usize,
}

/// Outcome of the mapping step.
pub struct Mapping<'g> {
    pub repr: OptimizedRepr<'g>,
    pub layers: Vec<MappedLayer>,
    /// Backend layers whose members could not be resolved (should be empty;
    /// kept for diagnostics, as the paper's mapping handles "limited
    /// information from the runtimes").
    pub unresolved: Vec<String>,
}

impl Mapping<'_> {
    /// Fraction of original nodes attached to some profiled layer.
    pub fn coverage(&self) -> f64 {
        let assigned: HashSet<GroupId> = self.layers.iter().filter_map(|l| l.group).collect();
        let total = self.repr.graph().nodes.len();
        if total == 0 {
            return 1.0;
        }
        let covered = self
            .repr
            .node_assignments()
            .iter()
            .filter(|g| assigned.contains(g))
            .count();
        covered as f64 / total as f64
    }
}

/// Map a backend profile onto the model.
pub fn map_layers<'g>(
    mut repr: OptimizedRepr<'g>,
    profile: &[LayerProfile],
    flavor: BackendFlavor,
) -> Mapping<'g> {
    let mut layers = Vec::with_capacity(profile.len());
    let mut unresolved = Vec::new();

    // OV-like strategy needs the full primary set up front to bound its
    // graph-walking (every other layer's primary is a fusion boundary).
    let primary_set: HashSet<NodeId> = if flavor == BackendFlavor::OvLike {
        profile
            .iter()
            .filter_map(|l| match &l.hint {
                LayerHint::PrimaryOp { node_name, .. } => repr.graph().node_by_name(node_name),
                _ => None,
            })
            .collect()
    } else {
        HashSet::new()
    };

    for (pi, lp) in profile.iter().enumerate() {
        let mapped = match &lp.hint {
            LayerHint::Reorder {
                input_tensor,
                output_tensor,
            } => match repr.resolve_tensor(input_tensor) {
                Some(t) => {
                    repr.add_reorder_layer(&lp.name, t, Some(output_tensor));
                    Some(MappedLayer {
                        backend_name: lp.name.clone(),
                        avg_latency_us: lp.avg_latency_us,
                        group: None,
                        is_reorder: true,
                        profile_index: pi,
                    })
                }
                None => None,
            },
            LayerHint::NodeNames(names) => {
                map_named_members(&mut repr, &lp.name, names).map(|g| MappedLayer {
                    backend_name: lp.name.clone(),
                    avg_latency_us: lp.avg_latency_us,
                    group: Some(g),
                    is_reorder: false,
                    profile_index: pi,
                })
            }
            LayerHint::FusedNameString(s) => {
                let parts: Vec<&str> = s.split(" + ").collect();
                let gid = if parts.contains(&"...") {
                    // elided middle: recover via io-bounded subgraph search
                    map_elided(&mut repr, &lp.name, &parts)
                } else {
                    let names: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                    map_named_members(&mut repr, &lp.name, &names)
                };
                gid.map(|g| MappedLayer {
                    backend_name: lp.name.clone(),
                    avg_latency_us: lp.avg_latency_us,
                    group: Some(g),
                    is_reorder: false,
                    profile_index: pi,
                })
            }
            LayerHint::OpaqueIo { inputs, outputs } => {
                map_opaque_io(&mut repr, &lp.name, inputs, outputs).map(|g| MappedLayer {
                    backend_name: lp.name.clone(),
                    avg_latency_us: lp.avg_latency_us,
                    group: Some(g),
                    is_reorder: false,
                    profile_index: pi,
                })
            }
            LayerHint::PrimaryOp { node_name, .. } => {
                map_primary_heuristic(&mut repr, &lp.name, node_name, &primary_set).map(|g| {
                    MappedLayer {
                        backend_name: lp.name.clone(),
                        avg_latency_us: lp.avg_latency_us,
                        group: Some(g),
                        is_reorder: false,
                        profile_index: pi,
                    }
                })
            }
        };
        match mapped {
            Some(m) => layers.push(m),
            None => unresolved.push(lp.name.clone()),
        }
    }

    absorb_leftover_noops(&mut repr, &layers);
    Mapping {
        repr,
        layers,
        unresolved,
    }
}

/// Fuse an explicit member-name list.
fn map_named_members(repr: &mut OptimizedRepr, layer: &str, names: &[String]) -> Option<GroupId> {
    let ids: Vec<NodeId> = names
        .iter()
        .filter_map(|n| repr.graph().node_by_name(n))
        .collect();
    if ids.is_empty() {
        return None;
    }
    if ids.len() == 1 {
        return Some(repr.group_of(ids[0]));
    }
    repr.set_fused_op(layer, &ids).ok()
}

/// Recover an `"a + ... + z"` layer: the subgraph between a's inputs and
/// z's outputs.
fn map_elided(repr: &mut OptimizedRepr, layer: &str, parts: &[&str]) -> Option<GroupId> {
    let first = repr.graph().node_by_name(parts.first()?)?;
    let last = repr.graph().node_by_name(parts.last()?)?;
    let g = repr.graph();
    let inputs: Vec<TensorId> = g
        .node(first)
        .inputs
        .iter()
        .copied()
        .filter(|&t| g.tensor(t).kind != TensorKind::Weight)
        .collect();
    let outputs = g.node(last).outputs.clone();
    let members = repr.get_subgraph_ops_by_io(&inputs, &outputs).ok()?;
    repr.set_fused_op(layer, &members).ok()
}

/// Resolve an opaque region by its io tensor names (through aliases).
fn map_opaque_io(
    repr: &mut OptimizedRepr,
    layer: &str,
    inputs: &[String],
    outputs: &[String],
) -> Option<GroupId> {
    let ins: Vec<TensorId> = inputs
        .iter()
        .filter_map(|n| repr.resolve_tensor(n))
        .collect();
    let outs: Vec<TensorId> = outputs
        .iter()
        .filter_map(|n| repr.resolve_tensor(n))
        .collect();
    if outs.is_empty() {
        return None;
    }
    let members = repr.get_subgraph_ops_by_io(&ins, &outs).ok()?;
    repr.set_fused_op(layer, &members).ok()
}

/// OV-like: only the primary node is known. Re-derive the fused members by
/// walking sole-consumer chains of elementwise/no-op nodes forward from the
/// primary — stopping at any other layer's primary — mirroring the
/// backend's epilogue fusion rules.
fn map_primary_heuristic(
    repr: &mut OptimizedRepr,
    layer: &str,
    node_name: &str,
    primaries: &HashSet<NodeId>,
) -> Option<GroupId> {
    let g = repr.graph();
    let root = g.node_by_name(node_name)?;
    if !matches!(
        g.node(root).op,
        OpKind::Conv | OpKind::Gemm | OpKind::MatMul
    ) {
        return Some(repr.group_of(root));
    }
    let consumers = g.consumers();
    let mut members = vec![root];
    let mut cur = g.node(root).output();
    // a node that another layer's mapping already fused is off-limits —
    // this is how two convs sharing a residual Add agree on its owner
    let taken = |repr: &OptimizedRepr, n: NodeId| repr.group(repr.group_of(n)).fused;
    while let Some(cs) = consumers.get(&cur) {
        // SiLU diamond: two consumers {Sigmoid, Mul(cur, σ)}
        if cs.len() == 2 {
            let silu = cs.iter().copied().find_map(|s| {
                let sn = g.node(s);
                if sn.op != OpKind::Sigmoid || primaries.contains(&s) || taken(repr, s) {
                    return None;
                }
                let souts = consumers.get(&sn.output())?;
                if souts.len() != 1 {
                    return None;
                }
                let m = souts[0];
                (cs.contains(&m)
                    && !primaries.contains(&m)
                    && !taken(repr, m)
                    && g.node(m).op == OpKind::Mul
                    && g.node(m).inputs.contains(&cur))
                .then_some((s, m))
            });
            if let Some((s, m)) = silu {
                members.push(s);
                members.push(m);
                cur = g.node(m).output();
                continue;
            }
        }
        if cs.len() != 1 {
            break;
        }
        let next = cs[0];
        if primaries.contains(&next) || taken(repr, next) || members.len() >= 12 {
            break;
        }
        let nd = g.node(next);
        let ok = nd.op.is_noop_at_inference()
            || nd.op.is_unary_elementwise()
            || matches!(nd.op, OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div);
        if !ok {
            break;
        }
        members.push(next);
        cur = nd.output();
    }
    if members.len() == 1 {
        Some(repr.group_of(root))
    } else {
        // if a racefully-shared node slipped in anyway, keep the bare root
        repr.set_fused_op(layer, &members)
            .ok()
            .or_else(|| Some(repr.group_of(root)))
    }
}

/// Attach any node still sitting in an unreported singleton group (an
/// eliminated view op) to the group of its producer — or, for graph-input
/// views, its consumer — so every original node stays mapped.
fn absorb_leftover_noops(repr: &mut OptimizedRepr, layers: &[MappedLayer]) {
    let reported: HashSet<GroupId> = layers.iter().filter_map(|l| l.group).collect();
    let g = repr.graph();
    let producers = g.producers();
    let consumers = g.consumers();
    let noops: Vec<NodeId> = g
        .iter_nodes()
        .filter(|(id, n)| n.op.is_noop_at_inference() && !reported.contains(&repr.group_of(*id)))
        .map(|(id, _)| id)
        .collect();
    for id in noops {
        let node = g.node(id);
        // prefer the producer's group, fall back to the first consumer's
        let target = node
            .inputs
            .iter()
            .filter_map(|t| producers.get(t))
            .map(|&p| repr.group_of(p))
            .find(|gid| reported.contains(gid))
            .or_else(|| {
                node.outputs
                    .iter()
                    .filter_map(|t| consumers.get(t))
                    .flatten()
                    .map(|&c| repr.group_of(c))
                    .find(|gid| reported.contains(gid))
            });
        if let Some(gid) = target {
            let _ = repr.absorb_into(id, gid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalyzeRepr;
    use proof_hw::PlatformId;
    use proof_ir::DType;
    use proof_models::ModelId;
    use proof_runtime::{compile, CompiledModel, SessionConfig};

    fn run(model: ModelId, batch: u64, flavor: BackendFlavor) -> (proof_ir::Graph, CompiledModel) {
        let g = model.build(batch);
        let m = compile(
            &g,
            flavor,
            &PlatformId::A100.spec(),
            &SessionConfig::new(DType::F16),
        )
        .unwrap();
        (g, m)
    }

    /// The mapping must reproduce the runtime's ground-truth fusion.
    fn assert_matches_truth(g: &proof_ir::Graph, m: &CompiledModel, flavor: BackendFlavor) {
        let analysis = AnalyzeRepr::new(g, DType::F16);
        let mapping = map_layers(OptimizedRepr::new(analysis), &m.builtin_profile(), flavor);
        assert!(
            mapping.unresolved.is_empty(),
            "unresolved: {:?}",
            mapping.unresolved
        );

        // truth: non-noop member sets per profiled layer
        let truth: Vec<HashSet<NodeId>> = m
            .layers
            .iter()
            .filter(|l| !l.kernels.is_empty() && !l.is_reorder)
            .map(|l| l.truth_members().iter().copied().collect())
            .collect();
        let derived: Vec<HashSet<NodeId>> = mapping
            .layers
            .iter()
            .filter(|l| !l.is_reorder)
            .map(|l| {
                mapping
                    .repr
                    .group(l.group.expect("mapped"))
                    .members
                    .iter()
                    .copied()
                    .collect()
            })
            .collect();
        assert_eq!(truth.len(), derived.len());
        for (t, d) in truth.iter().zip(&derived) {
            // derived sets may include absorbed no-op views the runtime
            // eliminated; every real (non-noop) node must agree exactly
            let t_real: HashSet<_> = t
                .iter()
                .filter(|&&n| !g.node(n).op.is_noop_at_inference())
                .collect();
            let d_real: HashSet<_> = d
                .iter()
                .filter(|&&n| !g.node(n).op.is_noop_at_inference())
                .collect();
            assert_eq!(t_real, d_real, "layer membership diverged");
        }
    }

    #[test]
    fn ort_mapping_matches_truth_on_resnet() {
        let (g, m) = run(ModelId::ResNet50, 2, BackendFlavor::OrtLike);
        assert_matches_truth(&g, &m, BackendFlavor::OrtLike);
    }

    #[test]
    fn trt_mapping_matches_truth_on_vit_with_myelin() {
        let (g, m) = run(ModelId::ViTTiny, 2, BackendFlavor::TrtLike);
        assert_matches_truth(&g, &m, BackendFlavor::TrtLike);
    }

    #[test]
    fn trt_mapping_matches_truth_on_shufflenet() {
        let (g, m) = run(ModelId::ShuffleNetV2x10, 2, BackendFlavor::TrtLike);
        assert_matches_truth(&g, &m, BackendFlavor::TrtLike);
    }

    #[test]
    fn ov_primary_heuristic_matches_truth_on_mobilenet() {
        let (g, m) = run(ModelId::MobileNetV2x10, 2, BackendFlavor::OvLike);
        assert_matches_truth(&g, &m, BackendFlavor::OvLike);
    }

    #[test]
    fn ov_primary_heuristic_matches_truth_on_efficientnet() {
        let (g, m) = run(ModelId::EfficientNetB0, 2, BackendFlavor::OvLike);
        assert_matches_truth(&g, &m, BackendFlavor::OvLike);
    }

    #[test]
    fn coverage_is_total_after_absorption() {
        for flavor in [
            BackendFlavor::TrtLike,
            BackendFlavor::OrtLike,
            BackendFlavor::OvLike,
        ] {
            let (g, m) = run(ModelId::ResNet50, 1, flavor);
            let analysis = AnalyzeRepr::new(&g, DType::F16);
            let mapping = map_layers(OptimizedRepr::new(analysis), &m.builtin_profile(), flavor);
            assert!(
                mapping.coverage() > 0.99,
                "{flavor:?}: coverage {}",
                mapping.coverage()
            );
        }
    }

    #[test]
    fn reorder_layers_map_to_no_model_node_but_register_aliases() {
        let (g, m) = run(ModelId::ResNet50, 1, BackendFlavor::OrtLike);
        let analysis = AnalyzeRepr::new(&g, DType::F16);
        let mapping = map_layers(
            OptimizedRepr::new(analysis),
            &m.builtin_profile(),
            BackendFlavor::OrtLike,
        );
        let reorders: Vec<_> = mapping.layers.iter().filter(|l| l.is_reorder).collect();
        assert!(!reorders.is_empty());
        assert!(reorders.iter().all(|l| l.group.is_none()));
        assert_eq!(mapping.repr.reorder_layers().len(), reorders.len());
        assert!(mapping.repr.resolve_tensor("input_r").is_some());
    }

    #[test]
    fn fused_latency_total_matches_profile_total() {
        let (g, m) = run(ModelId::SwinTiny, 2, BackendFlavor::TrtLike);
        let profile = m.builtin_profile();
        let analysis = AnalyzeRepr::new(&g, DType::F16);
        let mapping = map_layers(
            OptimizedRepr::new(analysis),
            &profile,
            BackendFlavor::TrtLike,
        );
        let sum_profile: f64 = profile.iter().map(|l| l.avg_latency_us).sum();
        let sum_mapped: f64 = mapping.layers.iter().map(|l| l.avg_latency_us).sum();
        assert!((sum_profile - sum_mapped).abs() < 1e-6);
    }
}
