//! Activation-memory planning: liveness analysis over the execution order
//! gives the peak DRAM working set (weights + simultaneously-live
//! activations) — the number that decides whether a (model, batch,
//! precision) combination fits a device at all, complementing the
//! bandwidth-oriented roofline view.

use proof_ir::{DType, Graph, NodeId, TensorId, TensorKind};
use serde::Serialize;
use std::collections::HashMap;

/// Result of the memory plan.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryPlan {
    /// Resident parameter bytes (constant for the whole run).
    pub weight_bytes: u64,
    /// Peak bytes of simultaneously-live activations.
    pub peak_activation_bytes: u64,
    /// Node at which the activation peak occurs.
    pub peak_node: String,
    /// Live activation bytes after each node executes (execution order).
    pub timeline: Vec<u64>,
}

impl MemoryPlan {
    /// Total peak working set.
    pub fn peak_bytes(&self) -> u64 {
        self.weight_bytes + self.peak_activation_bytes
    }
}

/// Compute the memory plan for a graph executed in node order at
/// `precision`. Graph inputs are live from the start; graph outputs stay
/// live to the end; every other activation dies after its last consumer.
pub fn plan_memory(g: &Graph, precision: DType) -> MemoryPlan {
    let bytes = |t: TensorId| g.tensor(t).size_bytes_at(precision);
    let weight_bytes: u64 = g
        .tensors
        .iter()
        .filter(|t| t.kind == TensorKind::Weight)
        .map(|t| t.size_bytes_at(precision))
        .sum();

    // last consumer per tensor (graph outputs never die)
    let mut last_use: HashMap<TensorId, NodeId> = HashMap::new();
    for (id, n) in g.iter_nodes() {
        for &t in &n.inputs {
            if g.tensor(t).kind != TensorKind::Weight {
                last_use.insert(t, id);
            }
        }
    }
    for &out in &g.outputs {
        last_use.insert(out, u32::MAX);
    }

    let mut live: u64 = g.inputs.iter().map(|&t| bytes(t)).sum();
    let (mut peak, mut peak_node) = (live, "(inputs)".to_string());
    let mut timeline = Vec::with_capacity(g.nodes.len());
    for (id, n) in g.iter_nodes() {
        for &t in &n.outputs {
            live += bytes(t);
        }
        if live > peak {
            peak = live;
            peak_node = n.name.clone();
        }
        // free tensors whose last consumer just ran
        for &t in &n.inputs {
            if g.tensor(t).kind == TensorKind::Weight {
                continue;
            }
            if last_use.get(&t) == Some(&id) {
                live = live.saturating_sub(bytes(t));
            }
        }
        timeline.push(live);
    }
    MemoryPlan {
        weight_bytes,
        peak_activation_bytes: peak,
        peak_node,
        timeline,
    }
}

/// Largest batch size whose peak working set fits `budget_bytes`, found by
/// binary search over `build` (activations scale ~linearly with batch,
/// weights don't — Eq. 1 again).
pub fn max_batch_within(
    budget_bytes: u64,
    precision: DType,
    max_batch: u64,
    build: impl Fn(u64) -> Graph,
) -> Option<u64> {
    let fits = |b: u64| plan_memory(&build(b), precision).peak_bytes() <= budget_bytes;
    if !fits(1) {
        return None;
    }
    let (mut lo, mut hi) = (1u64, max_batch);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proof_ir::GraphBuilder;
    use proof_models::ModelId;

    #[test]
    fn chain_frees_intermediates() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[1, 1024], DType::F32); // 4 KiB
        let a = b.relu("a", x);
        let c = b.relu("b", a);
        let d = b.relu("c", c);
        b.output(d);
        let g = b.finish();
        let plan = plan_memory(&g, DType::F32);
        // at any point at most two 4 KiB tensors are live
        assert_eq!(plan.peak_activation_bytes, 2 * 4096);
        assert_eq!(plan.weight_bytes, 0);
        // after the last node only the output remains
        assert_eq!(*plan.timeline.last().unwrap(), 4096);
    }

    #[test]
    fn residual_keeps_skip_alive() {
        let mut b = GraphBuilder::new("res");
        let x = b.input("x", &[1, 1024], DType::F32);
        let a = b.relu("a", x);
        let c = b.relu("b", a);
        let s = b.add("add", a, c); // `a` must stay live across `b`
        b.output(s);
        let g = b.finish();
        let plan = plan_memory(&g, DType::F32);
        assert!(plan.peak_activation_bytes >= 3 * 4096);
    }

    #[test]
    fn fp16_halves_activation_peak() {
        let g = ModelId::ResNet50.build(8);
        let p32 = plan_memory(&g, DType::F32);
        let p16 = plan_memory(&g, DType::F16);
        let ratio = p32.peak_activation_bytes as f64 / p16.peak_activation_bytes as f64;
        assert!((ratio - 2.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn resnet50_peak_is_early_and_plausible() {
        let g = ModelId::ResNet50.build(1);
        let plan = plan_memory(&g, DType::F32);
        // weights ≈ 102 MB fp32; activations peak in the high-res stem
        assert!((plan.weight_bytes as f64 / 1e6 - 102.0).abs() < 5.0);
        let act_mb = plan.peak_activation_bytes as f64 / 1e6;
        assert!((3.0..40.0).contains(&act_mb), "{act_mb} MB");
        assert!(plan.peak_node.contains("conv1") || plan.peak_node.contains("layer1"));
    }

    #[test]
    fn max_batch_search_brackets_the_budget() {
        let budget = 2u64 << 30; // 2 GiB
        let best = max_batch_within(budget, DType::F16, 4096, |b| ModelId::ResNet50.build(b))
            .expect("batch 1 fits");
        assert!(best >= 1);
        let fits = plan_memory(&ModelId::ResNet50.build(best), DType::F16).peak_bytes();
        assert!(fits <= budget);
        let over = plan_memory(&ModelId::ResNet50.build(best + 1), DType::F16).peak_bytes();
        assert!(over > budget);
    }

    #[test]
    fn tiny_budget_fits_nothing() {
        assert_eq!(
            max_batch_within(1 << 20, DType::F16, 16, |b| ModelId::ResNet50.build(b)),
            None
        );
    }
}
